//! Determinism regression: the tuner is a pure function of its spec and
//! seed. Two in-process runs of the same spec must pick the identical best
//! configuration, walk the identical rung trace and emit byte-identical
//! records.

use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_lab::tune::{Objective, TuneOutcome, TuneSpec, Tuner};
use neura_lab::{Artifact, Runner, SweepGrid};
use neura_sparse::gen::GraphGenerator;

fn run_once() -> (TuneOutcome, String) {
    let grid = SweepGrid::new()
        .datasets(["cora"])
        .mmh_tiles([1, 2, 4, 8])
        .router_buffers([8, 16])
        .frequencies_ghz([1.0, 1.25]);
    let spec = TuneSpec::new("det", ChipConfig::tile_16().with_seed(42), grid, Objective::Speedup)
        .with_budget(24);
    let tuner = Tuner::new(spec);
    let a = GraphGenerator::power_law(96, 600, 2.1, 7).generate().to_csr();
    let outcome = tuner.run(&Runner::new(4), |point, _shrink| {
        let mut chip = Accelerator::new(point.config.clone());
        chip.run_spgemm(&a, &a).expect("simulation drains").report
    });
    let mut artifact = Artifact::new("tune", 1);
    artifact.extend(outcome.records().iter().cloned());
    let bytes = artifact.to_bytes();
    (outcome, bytes)
}

#[test]
fn same_spec_and_seed_reproduce_best_config_and_rung_trace() {
    let (first, first_bytes) = run_once();
    let (second, second_bytes) = run_once();

    assert_eq!(first.best.id, second.best.id, "best configuration is reproducible");
    assert_eq!(first.best.config, second.best.config);
    assert_eq!(first.best_score.to_bits(), second.best_score.to_bits());
    assert_eq!(first.baseline_score.to_bits(), second.baseline_score.to_bits());

    assert_eq!(first.rungs.len(), second.rungs.len(), "same rung count");
    for (a, b) in first.rungs.iter().zip(&second.rungs) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.shrink, b.shrink);
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.survivors, b.survivors, "rung {} survivors", a.index);
        assert_eq!(a.best_index, b.best_index);
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    }

    assert_eq!(first_bytes, second_bytes, "artifact bytes are reproducible");
}
