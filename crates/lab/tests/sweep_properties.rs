//! Property tests for sweep enumeration: the cartesian product must be
//! exhaustive (every axis combination appears exactly once) and free of
//! duplicate run IDs, for arbitrary subsets of every axis.

use std::collections::HashSet;

use neura_chip::config::{ChipConfig, EvictionPolicy, TileSize};
use neura_chip::mapping::MappingKind;
use neura_lab::spec::eviction_name;
use neura_lab::{ExperimentSpec, SweepGrid};
use proptest::prelude::*;

const ALL_DATASETS: [&str; 4] = ["cora", "facebook", "wiki-Vote", "ca-CondMat"];
const ALL_EVICTIONS: [EvictionPolicy; 2] = [EvictionPolicy::Rolling, EvictionPolicy::Barrier];
const ALL_MMH: [u8; 4] = [1, 2, 4, 8];
const ALL_HASHLINES: [usize; 4] = [256, 1024, 2048, 8192];

/// Picks the first `n` entries of an axis (0 = axis not swept).
fn prefix<T: Clone>(values: &[T], n: usize) -> Vec<T> {
    values[..n].to_vec()
}

/// A strategy over grids built from arbitrary prefixes of every axis.
fn arb_grid() -> impl Strategy<Value = SweepGrid> {
    (0usize..=4, 0usize..=3, 0usize..=4, 0usize..=2, 0usize..=4, 0usize..=4).prop_map(
        |(nd, nt, nm, ne, nh, nl)| {
            SweepGrid::new()
                .datasets(prefix(&ALL_DATASETS, nd))
                .tile_sizes(prefix(&TileSize::ALL, nt))
                .mappings(prefix(&MappingKind::ALL, nm))
                .evictions(prefix(&ALL_EVICTIONS, ne))
                .mmh_tiles(prefix(&ALL_MMH, nh))
                .hashlines(prefix(&ALL_HASHLINES, nl))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point count equals the product of non-empty axis lengths, and every
    /// run ID is unique.
    #[test]
    fn enumeration_is_exhaustive_and_duplicate_free(grid in arb_grid()) {
        let spec = ExperimentSpec::new("prop", ChipConfig::tile_16(), grid.clone());
        let points = spec.points();
        prop_assert_eq!(points.len(), grid.len());

        let ids: HashSet<&str> = points.iter().map(|p| p.id.as_str()).collect();
        prop_assert_eq!(ids.len(), points.len());

        // Every declared combination appears: project each point back onto
        // the swept axes and compare the projected set against the product.
        let mut combos = HashSet::new();
        for p in &points {
            combos.insert((
                p.dataset.clone(),
                p.config.tile_size.name(),
                p.config.mapping.name(),
                eviction_name(p.config.eviction),
                p.config.mmh_tile,
                p.config.mem.hashlines,
            ));
        }
        prop_assert_eq!(combos.len(), points.len());
        for (want, p) in points.iter().enumerate() {
            prop_assert_eq!(p.index, want);
        }
    }

    /// Swept axis values are faithfully applied to the resolved config.
    #[test]
    fn swept_values_reach_the_config(n in 1usize..=4) {
        let grid = SweepGrid::new().mmh_tiles(prefix(&ALL_MMH, n));
        let spec = ExperimentSpec::new("prop", ChipConfig::tile_16(), grid);
        let tiles: Vec<u8> = spec.points().iter().map(|p| p.config.mmh_tile).collect();
        prop_assert_eq!(tiles, prefix(&ALL_MMH, n));
    }
}
