//! Property tests for the successive-halving tuner.
//!
//! Three invariants are pinned: (1) the search never invents
//! configurations — every survivor of every rung is a member of the
//! original grid; (2) rung sizes are strictly decreasing, so the ladder
//! always terminates; (3) the tuner artifact is byte-identical for any
//! worker count, the same contract the sweep binaries honour.

use std::collections::HashSet;

use neura_chip::accelerator::{Accelerator, ExecutionReport};
use neura_chip::config::{ChipConfig, EvictionPolicy, HbmPreset};
use neura_lab::tune::{Objective, TuneSpec, Tuner};
use neura_lab::{Artifact, Runner, SweepGrid, SweepPoint};
use neura_sparse::gen::GraphGenerator;
use neura_sparse::CsrMatrix;
use proptest::prelude::*;

/// A 16-point grid over four axes, including the paper defaults.
fn test_grid() -> SweepGrid {
    SweepGrid::new()
        .datasets(["cora"])
        .mmh_tiles([2, 4])
        .hashlines([256, 2048])
        .evictions([EvictionPolicy::Rolling, EvictionPolicy::Barrier])
        .hbm_presets([HbmPreset::Hbm2, HbmPreset::Hbm2DualStack])
}

/// Deterministic per-fidelity workloads: shrink 8 gets the smallest graph.
fn matrices_for(tuner: &Tuner) -> Vec<(usize, CsrMatrix)> {
    tuner
        .shrinks()
        .into_iter()
        .map(|shrink| {
            let nodes = (256 / shrink).max(32);
            (shrink, GraphGenerator::power_law(nodes, nodes * 6, 2.1, 7).generate().to_csr())
        })
        .collect()
}

fn simulate(matrices: &[(usize, CsrMatrix)], point: &SweepPoint, shrink: usize) -> ExecutionReport {
    let (_, a) = matrices.iter().find(|(s, _)| *s == shrink).expect("matrix per shrink");
    let mut chip = Accelerator::new(point.config.clone());
    chip.run_spgemm(a, a).expect("simulation drains").report
}

#[test]
fn survivors_are_grid_members_and_rungs_strictly_shrink() {
    let tuner =
        Tuner::new(TuneSpec::new("prop", ChipConfig::tile_16(), test_grid(), Objective::Cycles));
    let matrices = matrices_for(&tuner);
    let outcome = tuner.run(&Runner::new(4), |p, s| simulate(&matrices, p, s));

    let grid_ids: HashSet<&str> = tuner.points().iter().map(|p| p.id.as_str()).collect();
    for rung in &outcome.rungs {
        for &survivor in &rung.survivors {
            let id = tuner.points()[survivor].id.as_str();
            assert!(grid_ids.contains(id), "survivor {id} must be an original grid point");
        }
    }
    assert!(grid_ids.contains(outcome.winner.id.as_str()), "the winner is a grid member");

    let sizes: Vec<usize> = outcome.rungs.iter().map(|r| r.evaluated).collect();
    assert!(sizes.windows(2).all(|w| w[0] > w[1]), "rung sizes must strictly decrease: {sizes:?}");
    assert_eq!(*sizes.first().unwrap(), tuner.points().len(), "rung 0 evaluates the full grid");
    assert_eq!(outcome.rungs.last().unwrap().shrink, 1, "the final rung runs at full fidelity");

    // The acceptance bound: never worse than the paper default.
    assert!(outcome.best_score <= outcome.baseline_score);
    assert!(outcome.improvement_vs_default() >= 1.0);
}

#[test]
fn tuner_artifact_is_byte_identical_across_thread_counts() {
    let artifact_with = |threads: usize| -> String {
        let tuner = Tuner::new(TuneSpec::new(
            "threads",
            ChipConfig::tile_16(),
            test_grid(),
            Objective::EnergyDelay,
        ));
        let matrices = matrices_for(&tuner);
        let outcome = tuner.run(&Runner::new(threads), |p, s| simulate(&matrices, p, s));
        let mut artifact = Artifact::new("tune", 1);
        artifact.extend(outcome.records().iter().cloned());
        artifact.to_bytes()
    };
    let two = artifact_with(2);
    let eight = artifact_with(8);
    assert!(!two.is_empty());
    assert_eq!(two, eight, "tuner artifact bytes must not depend on the thread count");

    // And the winner is recoverable from the artifact: a best_config record
    // exists with the objective score attached.
    let parsed = Artifact::from_json(&neura_lab::parse_json(&two).unwrap()).unwrap();
    let best = parsed
        .records
        .iter()
        .find(|r| r.id.ends_with("/best_config"))
        .expect("best_config record present");
    assert!(best.metric_value("objective_score").is_some());
    assert!(best.metric_value("improvement_vs_default").unwrap() >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The rung plan halves to a single survivor within budget, with
    /// strictly decreasing sizes and full fidelity on the last rung, for
    /// arbitrary grid shapes and budgets.
    #[test]
    fn plans_shrink_strictly_and_respect_budgets(
        n_mmh in 1usize..=4,
        n_hash in 1usize..=4,
        n_cores in 1usize..=3,
        budget in 1usize..=200,
    ) {
        const MMH: [u8; 4] = [1, 2, 4, 8];
        const HASH: [usize; 4] = [256, 1024, 2048, 4096];
        const CORES: [usize; 3] = [2, 4, 8];
        let grid = SweepGrid::new()
            .mmh_tiles(MMH[..n_mmh].to_vec())
            .hashlines(HASH[..n_hash].to_vec())
            .cores_per_tile(CORES[..n_cores].to_vec());
        let tuner = Tuner::new(
            TuneSpec::new("plan", ChipConfig::tile_16(), grid.clone(), Objective::Cycles)
                .with_budget(budget),
        );
        let plan = tuner.plan();

        prop_assert_eq!(plan[0].size, grid.len());
        prop_assert!(plan.windows(2).all(|w| w[0].size > w[1].size));
        // An untruncated ladder (one final survivor) ends at full fidelity;
        // a budget-truncated one keeps its cheap shrink instead.
        let last = plan.last().unwrap();
        prop_assert!(if last.size == 1 { last.shrink == 1 } else { last.shrink > 1 });
        prop_assert!(plan.iter().all(|r| r.shrink.is_power_of_two() && r.shrink <= 8));
        prop_assert!(plan.windows(2).all(|w| w[0].shrink >= w[1].shrink),
            "fidelity never decreases along the ladder");
        let total: usize = plan.iter().map(|r| r.size).sum();
        prop_assert!(plan.len() == 1 || total <= budget,
            "a multi-rung plan fits the budget (total {}, budget {})", total, budget);
    }
}
