//! The artifact contract: executing the same spec on different thread
//! counts must produce *byte-identical* JSON. The runner collects results
//! in spec order and every point's seed is derived from its run ID, so
//! nothing about scheduling may leak into the output.

use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_chip::mapping::MappingKind;
use neura_lab::{Artifact, ExperimentSpec, RunRecord, Runner, SweepGrid};
use neura_sparse::gen::GraphGenerator;
use neura_sparse::CsrMatrix;

fn run_with(threads: usize, a: &CsrMatrix) -> String {
    let spec = ExperimentSpec::new(
        "det",
        ChipConfig::tile_16(),
        SweepGrid::new()
            .mappings(MappingKind::ALL)
            .evictions([EvictionPolicy::Rolling, EvictionPolicy::Barrier]),
    );
    let mut artifact = Artifact::new("det", 1);
    let results = Runner::new(threads).run_spec(&spec, |point| {
        let mut chip = Accelerator::new(point.config.clone());
        let run = chip.run_spgemm(a, a).expect("simulation drains");
        (run.report.total_cycles, run.report.gops, run.product.nnz())
    });
    for (point, (cycles, gops, nnz)) in results {
        let mut record = RunRecord::new(&point.id)
            .metric("total_cycles", cycles as f64)
            .unit_metric("gops", gops, "GOP/s")
            .metric("output_nnz", nnz as f64);
        record.params = point.params();
        artifact.push(record);
    }
    artifact.to_bytes()
}

#[test]
fn two_and_eight_thread_runs_emit_identical_bytes() {
    let a = GraphGenerator::power_law(64, 420, 2.1, 7).generate().to_csr();
    let two = run_with(2, &a);
    let eight = run_with(8, &a);
    assert!(!two.is_empty());
    assert_eq!(two, eight, "artifact bytes must not depend on the thread count");

    // And the bytes round-trip through the parser into 8 records.
    let parsed = Artifact::from_json(&neura_lab::parse_json(&two).unwrap()).unwrap();
    assert_eq!(parsed.records.len(), 8);
    assert!(parsed.records.iter().all(|r| !r.metrics.is_empty()));
}
