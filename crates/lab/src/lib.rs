//! `neura_lab` — the experiment layer of the NeuraChip reproduction.
//!
//! Every paper figure/table binary used to be a bespoke serial loop that
//! printed a fixed-width table and threw its numbers away. This crate turns
//! those binaries into *experiments*: declarative sweeps, parallel
//! execution, machine-readable results and regression checks against the
//! paper's published numbers. Data flows through four modules in order:
//!
//! 1. **[`spec`]** — declare the experiment. An [`ExperimentSpec`] names a
//!    base [`ChipConfig`](neura_chip::config::ChipConfig) and a
//!    [`SweepGrid`] of axes to vary (dataset, tile size, compute mapping,
//!    eviction policy, MMH tile height, HashPad size).
//!    [`ExperimentSpec::points`] enumerates the cartesian product in a
//!    stable order with a stable run ID and derived seed per point.
//! 2. **[`runner`]** — execute it. [`Runner`] fans the points out over a
//!    scoped-thread work-stealing pool (a shared atomic cursor over the
//!    point list; `std` only) and collects results *in spec order*, so
//!    output is byte-identical regardless of the thread count.
//! 3. **[`report`]** — record what happened. Each point produces a
//!    [`RunRecord`] of parameters and [`Metric`]s; an [`Artifact`] bundles a
//!    binary's records and serialises them through the crate's own
//!    deterministic JSON emitter (the vendored `serde` is a no-op stub) to
//!    `target/artifacts/<bin>.json`. A mini JSON parser round-trips
//!    artifacts for tests and downstream tooling.
//! 4. **[`golden`]** — check it. Tolerance-checked comparison of emitted
//!    metrics against checked-in expected values for the paper's headline
//!    numbers (Table 5 throughput, Figure 16/17 speedup means, Table 1
//!    bloat ordering, Figure 14/15 histogram means), strict at paper scale
//!    and relaxed to presence checks under [`SCALE_MULT_ENV`] smoke
//!    shrinking.
//!
//! On top of the sweep machinery sit two more modules: **[`tune`]** — a
//! successive-halving auto-tuner that *searches* the `ChipConfig` space
//! instead of replaying published design points: coarse grid in, per-rung
//! halving at increasing fidelity, and a `best_config` artifact that is
//! never worse than the paper default on the chosen objective — and
//! **[`trend`]**, which diffs two artifacts metric-by-metric so regressions
//! between runs show up as numbers (the `trend` binary adds a
//! `--fail-above` threshold on top).
//!
//! Binaries tie the stages together with an [`ArtifactSession`], which owns
//! the `--json [path]` command-line contract:
//!
//! ```no_run
//! use neura_lab::{ArtifactSession, RunRecord};
//!
//! let mut session = ArtifactSession::from_args("demo", neura_lab::scale_multiplier());
//! session.push(RunRecord::new("demo/point").metric("total_cycles", 1234.0));
//! session.finish(); // writes target/artifacts/demo.json when --json was given
//! ```

#![warn(missing_docs)]

pub mod golden;
pub mod report;
pub mod runner;
pub mod spec;
pub mod trend;
pub mod tune;

pub use report::{
    fmt, parse_json, print_table, profile_records, Artifact, JsonValue, Metric, RunRecord,
    PROFILE_SCHEMA, SCHEMA, TIMELINE_SCHEMA,
};
pub use runner::Runner;
pub use spec::{ExperimentSpec, SweepGrid, SweepPoint};
pub use trend::{MetricDelta, TrendReport};
pub use tune::{Evaluation, Objective, RungContext, TuneOutcome, TuneSpec, Tuner};

use std::path::PathBuf;

/// Environment variable multiplying every down-scaling factor used by the
/// figure/table binaries.
///
/// Setting e.g. `NEURA_BENCH_SCALE_MULT=16` shrinks each workload a further
/// 16× (graphs never shrink below 32 nodes), turning every binary into a
/// seconds-long smoke run. CI uses this to prove the binaries execute end to
/// end without paying full simulation cost; leave it unset for paper-scale
/// results. Golden checks relax to presence-only assertions whenever the
/// multiplier is above 1 (see [`golden::Mode::from_scale_mult`]).
pub const SCALE_MULT_ENV: &str = "NEURA_BENCH_SCALE_MULT";

/// The extra down-scaling multiplier from [`SCALE_MULT_ENV`] (1 if unset).
///
/// # Panics
///
/// Panics when the variable is set but not a positive integer: a typo here
/// would otherwise silently run the full paper-scale simulation, which is
/// exactly what the caller was trying to avoid.
pub fn scale_multiplier() -> usize {
    match std::env::var(SCALE_MULT_ENV) {
        Err(_) => 1,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(mult) if mult >= 1 => mult,
            _ => panic!("{SCALE_MULT_ENV}={raw:?} is not a positive integer"),
        },
    }
}

/// A binary's artifact under construction plus the `--json` destination
/// parsed from its command line.
///
/// Accepted arguments (shared by all 11 artifact binaries):
///
/// - `--json` — emit the artifact to `target/artifacts/<bin>.json`
/// - `--json <path>` — emit the artifact to an explicit path
/// - `--help` / `-h` — print usage and exit
#[derive(Debug)]
pub struct ArtifactSession {
    artifact: Artifact,
    json_path: Option<PathBuf>,
}

impl ArtifactSession {
    /// Parses `std::env::args()` and opens a session for `bin`.
    ///
    /// Exits the process with code 2 (and a usage message on stderr) on an
    /// unrecognised argument, and with code 0 on `--help`.
    pub fn from_args(bin: &str, scale_mult: usize) -> Self {
        Self::from_arg_list(bin, scale_mult, std::env::args().skip(1))
    }

    /// [`Self::from_args`] with an explicit argument list (testable core).
    pub fn from_arg_list(
        bin: &str,
        scale_mult: usize,
        args: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut json_path = None;
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => {
                    json_path = Some(match args.peek() {
                        Some(next) if !next.starts_with("--") => {
                            PathBuf::from(args.next().expect("peeked"))
                        }
                        _ => Artifact::default_path(bin),
                    });
                }
                "--help" | "-h" => {
                    println!("{}", Self::usage(bin));
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unrecognised argument {other:?}\n{}", Self::usage(bin));
                    std::process::exit(2);
                }
            }
        }
        ArtifactSession { artifact: Artifact::new(bin, scale_mult), json_path }
    }

    fn usage(bin: &str) -> String {
        format!(
            "usage: {bin} [--json [PATH]]\n\
             \n\
             --json [PATH]  write a machine-readable artifact ({SCHEMA}) to PATH\n\
             \x20              (default: {default})",
            SCHEMA = report::SCHEMA,
            default = Artifact::default_path(bin).display(),
        )
    }

    /// Where the artifact will be written, if `--json` was given.
    pub fn json_path(&self) -> Option<&std::path::Path> {
        self.json_path.as_deref()
    }

    /// Appends one record.
    pub fn push(&mut self, record: RunRecord) {
        self.artifact.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = RunRecord>) {
        self.artifact.extend(records);
    }

    /// Sets one document-level meta value (measurement context such as
    /// wall-clock time — carried in the artifact but never gated, see
    /// [`Artifact::set_meta`]).
    pub fn set_meta(&mut self, key: impl Into<String>, value: f64) {
        self.artifact.set_meta(key, value);
    }

    /// Read access to the artifact built so far.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Writes the artifact (when `--json` was requested) and returns it, so
    /// the caller can hand it to [`golden::check`].
    ///
    /// Exits with code 1 if the file cannot be written — a silently dropped
    /// artifact would defeat the whole point of the subsystem.
    pub fn finish(self) -> Artifact {
        if let Some(path) = &self.json_path {
            if let Err(e) = self.artifact.write(path) {
                eprintln!("failed to write artifact {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("\nwrote {} ({} records)", path.display(), self.artifact.records.len());
        }
        self.artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_means_no_json_emission() {
        let session = ArtifactSession::from_arg_list("demo", 1, strings(&[]));
        assert_eq!(session.json_path(), None);
        assert_eq!(session.artifact().bin, "demo");
    }

    #[test]
    fn bare_json_flag_uses_the_default_path() {
        let session = ArtifactSession::from_arg_list("demo", 1, strings(&["--json"]));
        assert_eq!(session.json_path(), Some(Artifact::default_path("demo").as_path()));
    }

    #[test]
    fn json_flag_accepts_an_explicit_path() {
        let session =
            ArtifactSession::from_arg_list("demo", 4, strings(&["--json", "/tmp/out.json"]));
        assert_eq!(session.json_path(), Some(std::path::Path::new("/tmp/out.json")));
        assert_eq!(session.artifact().scale_mult, 4);
    }

    #[test]
    fn finish_round_trips_through_the_parser() {
        let dir = std::env::temp_dir().join(format!("neura_lab_session_{}", std::process::id()));
        let path = dir.join("demo.json");
        let mut session =
            ArtifactSession::from_arg_list("demo", 1, strings(&["--json", path.to_str().unwrap()]));
        session.push(RunRecord::new("demo/a").metric("m", 1.5));
        let artifact = session.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Artifact::from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(parsed, artifact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_multiplier_defaults_to_one() {
        // The test environment does not set the variable.
        if std::env::var(SCALE_MULT_ENV).is_err() {
            assert_eq!(scale_multiplier(), 1);
        }
    }
}
