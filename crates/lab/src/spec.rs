//! Declarative experiment descriptions: a cartesian sweep over the
//! [`ChipConfig`] design space and the datasets it runs on.
//!
//! A [`SweepGrid`] names the axes being varied (compute mapping, eviction
//! policy, MMH tile height, HashPad size, tile size, dataset, plus the
//! scaling axes: core/mem counts per tile, router buffering, memory-queue
//! depth, clock frequency and HBM timing preset); an [`ExperimentSpec`]
//! pairs a grid with a base configuration and a name.
//! [`ExperimentSpec::points`] enumerates the full cartesian product in a
//! stable, documented order, assigning each point a stable human-readable
//! run ID and a seed derived from that ID — so the same spec always produces
//! the same points with the same seeds, regardless of how (or on how many
//! threads) it is executed.

use neura_chip::config::{ChipConfig, EvictionPolicy, HbmPreset, TileSize};
use neura_chip::mapping::MappingKind;

/// The axes of a cartesian sweep. An empty axis means "hold the base
/// configuration's value" and contributes exactly one (default) setting to
/// the product, so the point count is always the product of
/// `max(1, axis.len())` over all axes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    /// Dataset names (resolved by the caller, typically through
    /// `DatasetCatalog::by_name`). Empty = a single dataset-less point.
    pub datasets: Vec<String>,
    /// Tile sizes to sweep (`ChipConfig::for_tile_size`).
    pub tile_sizes: Vec<TileSize>,
    /// Compute mappings to sweep.
    pub mappings: Vec<MappingKind>,
    /// Eviction policies to sweep.
    pub evictions: Vec<EvictionPolicy>,
    /// MMH tile heights to sweep (must each be 1, 2, 4 or 8).
    pub mmh_tiles: Vec<u8>,
    /// HashPad sizes (hash-lines per NeuraMem) to sweep.
    pub hashlines: Vec<usize>,
    /// NeuraCore counts per tile to sweep.
    pub cores_per_tile: Vec<usize>,
    /// NeuraMem counts per tile to sweep.
    pub mems_per_tile: Vec<usize>,
    /// Router packet-buffer capacities to sweep.
    pub router_buffers: Vec<usize>,
    /// Memory-controller queue capacities to sweep.
    pub mem_queue_capacities: Vec<usize>,
    /// Clock frequencies (GHz) to sweep.
    pub frequencies_ghz: Vec<f64>,
    /// HBM timing presets to sweep.
    pub hbm_presets: Vec<HbmPreset>,
}

impl SweepGrid {
    /// An empty grid: one point, entirely defined by the base configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dataset axis (builder style).
    pub fn datasets<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.datasets = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the tile-size axis (builder style).
    pub fn tile_sizes(mut self, sizes: impl IntoIterator<Item = TileSize>) -> Self {
        self.tile_sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the compute-mapping axis (builder style).
    pub fn mappings(mut self, mappings: impl IntoIterator<Item = MappingKind>) -> Self {
        self.mappings = mappings.into_iter().collect();
        self
    }

    /// Sets the eviction-policy axis (builder style).
    pub fn evictions(mut self, evictions: impl IntoIterator<Item = EvictionPolicy>) -> Self {
        self.evictions = evictions.into_iter().collect();
        self
    }

    /// Sets the MMH tile-height axis (builder style).
    pub fn mmh_tiles(mut self, tiles: impl IntoIterator<Item = u8>) -> Self {
        self.mmh_tiles = tiles.into_iter().collect();
        self
    }

    /// Sets the HashPad-size axis (builder style).
    pub fn hashlines(mut self, hashlines: impl IntoIterator<Item = usize>) -> Self {
        self.hashlines = hashlines.into_iter().collect();
        self
    }

    /// Sets the NeuraCores-per-tile axis (builder style).
    pub fn cores_per_tile(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores_per_tile = cores.into_iter().collect();
        self
    }

    /// Sets the NeuraMems-per-tile axis (builder style).
    pub fn mems_per_tile(mut self, mems: impl IntoIterator<Item = usize>) -> Self {
        self.mems_per_tile = mems.into_iter().collect();
        self
    }

    /// Sets the router packet-buffer axis (builder style).
    pub fn router_buffers(mut self, slots: impl IntoIterator<Item = usize>) -> Self {
        self.router_buffers = slots.into_iter().collect();
        self
    }

    /// Sets the memory-controller queue-capacity axis (builder style).
    pub fn mem_queue_capacities(mut self, slots: impl IntoIterator<Item = usize>) -> Self {
        self.mem_queue_capacities = slots.into_iter().collect();
        self
    }

    /// Sets the clock-frequency axis in GHz (builder style).
    pub fn frequencies_ghz(mut self, ghz: impl IntoIterator<Item = f64>) -> Self {
        self.frequencies_ghz = ghz.into_iter().collect();
        self
    }

    /// Sets the HBM timing-preset axis (builder style).
    pub fn hbm_presets(mut self, presets: impl IntoIterator<Item = HbmPreset>) -> Self {
        self.hbm_presets = presets.into_iter().collect();
        self
    }

    /// Number of points the grid enumerates (product of non-empty axis
    /// lengths).
    pub fn len(&self) -> usize {
        [
            self.datasets.len(),
            self.tile_sizes.len(),
            self.mappings.len(),
            self.evictions.len(),
            self.mmh_tiles.len(),
            self.hashlines.len(),
            self.cores_per_tile.len(),
            self.mems_per_tile.len(),
            self.router_buffers.len(),
            self.mem_queue_capacities.len(),
            self.frequencies_ghz.len(),
            self.hbm_presets.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// Whether the grid enumerates exactly one all-default point.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }
}

/// One enumerated point of a sweep: the concrete configuration to run plus
/// its identity within the spec.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in the spec's enumeration order (0-based).
    pub index: usize,
    /// Stable run ID: `<spec>/<dataset>/<axis values that vary>`.
    pub id: String,
    /// Dataset name, when the grid has a dataset axis.
    pub dataset: Option<String>,
    /// The fully resolved configuration (including the derived seed).
    pub config: ChipConfig,
}

impl SweepPoint {
    /// The ordered `(key, value)` parameter list describing this point, as
    /// recorded in artifacts.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = Vec::new();
        if let Some(dataset) = &self.dataset {
            params.push(("dataset".to_string(), dataset.clone()));
        }
        params.push(("tile".to_string(), self.config.tile_size.name().to_string()));
        params.push(("mapping".to_string(), self.config.mapping.name().to_string()));
        params.push(("eviction".to_string(), eviction_name(self.config.eviction).to_string()));
        params.push(("mmh_tile".to_string(), self.config.mmh_tile.to_string()));
        params.push(("hashlines".to_string(), self.config.mem.hashlines.to_string()));
        params.push(("cores_per_tile".to_string(), self.config.cores_per_tile.to_string()));
        params.push(("mems_per_tile".to_string(), self.config.mems_per_tile.to_string()));
        params.push(("router_buffer".to_string(), self.config.router_buffer.to_string()));
        params.push(("mem_queue_capacity".to_string(), self.config.mem_queue_capacity.to_string()));
        params.push(("frequency_ghz".to_string(), format!("{:?}", self.config.frequency_ghz)));
        params.push(("hbm".to_string(), hbm_name(&self.config)));
        params.push(("seed".to_string(), self.config.seed.to_string()));
        params
    }
}

/// Name of a configuration's HBM timing: the preset name when the timing
/// matches one, `"custom"` otherwise.
fn hbm_name(config: &ChipConfig) -> String {
    HbmPreset::of(&config.hbm).map(|p| p.name().to_string()).unwrap_or_else(|| "custom".into())
}

/// Lower-case name of an eviction policy, used in run IDs and params.
pub fn eviction_name(policy: EvictionPolicy) -> &'static str {
    match policy {
        EvictionPolicy::Rolling => "rolling",
        EvictionPolicy::Barrier => "barrier",
    }
}

/// A named, declarative experiment: a base configuration plus the grid of
/// axes to sweep around it.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Spec name; the leading component of every run ID.
    pub name: String,
    /// Configuration used for every axis the grid leaves empty.
    pub base: ChipConfig,
    /// The sweep axes.
    pub grid: SweepGrid,
}

impl ExperimentSpec {
    /// Creates a spec with the given name, base configuration and grid.
    pub fn new(name: impl Into<String>, base: ChipConfig, grid: SweepGrid) -> Self {
        ExperimentSpec { name: name.into(), base, grid }
    }

    /// Enumerates every point of the cartesian product, in a stable order:
    /// dataset-major, then tile size, mapping, eviction, MMH tile, HashPad
    /// size, cores per tile, mems per tile, router buffer, memory-queue
    /// capacity, frequency and HBM preset (the last axis varies fastest).
    ///
    /// Run IDs name the spec, the dataset, and *only* the axes the grid
    /// actually sweeps (a one-point axis adds no ID segment), so IDs stay
    /// short and stable when a new axis is later swept with its old default.
    /// Each point's seed is derived by hashing the spec name and dataset
    /// with the base seed — deliberately *excluding* the swept config axes,
    /// so all arms of an A/B comparison (rolling vs barrier, MMH1 vs MMH8,
    /// …) run with the identical seed and differ only in the ablated axis,
    /// while different datasets (and different specs) still decorrelate.
    pub fn points(&self) -> Vec<SweepPoint> {
        let datasets: Vec<Option<&str>> = if self.grid.datasets.is_empty() {
            vec![None]
        } else {
            self.grid.datasets.iter().map(|d| Some(d.as_str())).collect()
        };
        // The eleven config axes, each lifted to "None = hold the base value".
        let tile_sizes: Vec<Option<TileSize>> = axis(&self.grid.tile_sizes);
        let mappings: Vec<Option<MappingKind>> = axis(&self.grid.mappings);
        let evictions: Vec<Option<EvictionPolicy>> = axis(&self.grid.evictions);
        let mmh_tiles: Vec<Option<u8>> = axis(&self.grid.mmh_tiles);
        let hashlines: Vec<Option<usize>> = axis(&self.grid.hashlines);
        let cores: Vec<Option<usize>> = axis(&self.grid.cores_per_tile);
        let mems: Vec<Option<usize>> = axis(&self.grid.mems_per_tile);
        let router_buffers: Vec<Option<usize>> = axis(&self.grid.router_buffers);
        let mem_queues: Vec<Option<usize>> = axis(&self.grid.mem_queue_capacities);
        let frequencies: Vec<Option<f64>> = axis(&self.grid.frequencies_ghz);
        let hbm_presets: Vec<Option<HbmPreset>> = axis(&self.grid.hbm_presets);

        // Mixed-radix decode over the config axes (slowest axis first, last
        // axis varies fastest) — twelve nested loops written as one.
        let radices = [
            tile_sizes.len(),
            mappings.len(),
            evictions.len(),
            mmh_tiles.len(),
            hashlines.len(),
            cores.len(),
            mems.len(),
            router_buffers.len(),
            mem_queues.len(),
            frequencies.len(),
            hbm_presets.len(),
        ];
        let combos: usize = radices.iter().product();

        let mut points = Vec::with_capacity(self.grid.len());
        for dataset in &datasets {
            let mut seed_scope = self.name.clone();
            if let Some(d) = dataset {
                seed_scope.push('/');
                seed_scope.push_str(d);
            }
            let seed = derive_seed(self.base.seed, &seed_scope);
            for lin in 0..combos {
                let mut idx = [0usize; 11];
                let mut rem = lin;
                for k in (0..radices.len()).rev() {
                    idx[k] = rem % radices[k];
                    rem /= radices[k];
                }
                let tile_size = tile_sizes[idx[0]];
                let mapping = mappings[idx[1]];
                let eviction = evictions[idx[2]];
                let mmh_tile = mmh_tiles[idx[3]];
                let lines = hashlines[idx[4]];
                let core_count = cores[idx[5]];
                let mem_count = mems[idx[6]];
                let router_buffer = router_buffers[idx[7]];
                let mem_queue = mem_queues[idx[8]];
                let frequency = frequencies[idx[9]];
                let hbm = hbm_presets[idx[10]];

                let mut config = match tile_size {
                    Some(t) => {
                        // Preserve non-structural base overrides when
                        // sweeping the tile size.
                        ChipConfig::for_tile_size(t)
                            .with_mapping(self.base.mapping)
                            .with_eviction(self.base.eviction)
                            .with_mmh_tile(self.base.mmh_tile)
                            .with_router_buffer(self.base.router_buffer)
                            .with_mem_queue_capacity(self.base.mem_queue_capacity)
                            .with_frequency_ghz(self.base.frequency_ghz)
                            .with_seed(self.base.seed)
                    }
                    None => self.base.clone(),
                };
                if tile_size.is_some() {
                    config.hbm = self.base.hbm;
                }
                if let Some(m) = mapping {
                    config.mapping = m;
                }
                if let Some(e) = eviction {
                    config.eviction = e;
                }
                if let Some(t) = mmh_tile {
                    config = config.with_mmh_tile(t);
                }
                if let Some(h) = lines {
                    config.mem.hashlines = h;
                }
                if let Some(c) = core_count {
                    config = config.with_cores_per_tile(c);
                }
                if let Some(m) = mem_count {
                    config = config.with_mems_per_tile(m);
                }
                if let Some(rb) = router_buffer {
                    config = config.with_router_buffer(rb);
                }
                if let Some(mq) = mem_queue {
                    config = config.with_mem_queue_capacity(mq);
                }
                if let Some(f) = frequency {
                    config = config.with_frequency_ghz(f);
                }
                if let Some(p) = hbm {
                    config = config.with_hbm_preset(p);
                }

                let mut id = self.name.clone();
                if let Some(d) = dataset {
                    id.push('/');
                    id.push_str(d);
                }
                if tile_size.is_some() {
                    id.push('/');
                    id.push_str(config.tile_size.name());
                }
                if mapping.is_some() {
                    id.push('/');
                    id.push_str(config.mapping.name());
                }
                if eviction.is_some() {
                    id.push('/');
                    id.push_str(eviction_name(config.eviction));
                }
                if mmh_tile.is_some() {
                    id.push_str(&format!("/mmh{}", config.mmh_tile));
                }
                if lines.is_some() {
                    id.push_str(&format!("/hl{}", config.mem.hashlines));
                }
                if core_count.is_some() {
                    id.push_str(&format!("/c{}", config.cores_per_tile));
                }
                if mem_count.is_some() {
                    id.push_str(&format!("/m{}", config.mems_per_tile));
                }
                if router_buffer.is_some() {
                    id.push_str(&format!("/rb{}", config.router_buffer));
                }
                if mem_queue.is_some() {
                    id.push_str(&format!("/mq{}", config.mem_queue_capacity));
                }
                if frequency.is_some() {
                    id.push_str(&format!("/f{:?}", config.frequency_ghz));
                }
                if let Some(p) = hbm {
                    id.push('/');
                    id.push_str(p.name());
                }

                config.seed = seed;
                points.push(SweepPoint {
                    index: points.len(),
                    id,
                    dataset: dataset.map(str::to_string),
                    config,
                });
            }
        }
        points
    }
}

fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

/// Derives a sweep seed: FNV-1a over a scope string (spec name + dataset),
/// mixed with the base seed through a SplitMix64 finaliser. Pure function
/// of `(base, id)`.
pub fn derive_seed(base: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_one_default_point() {
        let spec = ExperimentSpec::new("t", ChipConfig::tile_16(), SweepGrid::new());
        let points = spec.points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].id, "t");
        assert_eq!(points[0].dataset, None);
        assert_eq!(points[0].config.tile_size, TileSize::Tile16);
    }

    #[test]
    fn ids_name_only_swept_axes() {
        let spec = ExperimentSpec::new(
            "ablation",
            ChipConfig::tile_16(),
            SweepGrid::new().datasets(["cora"]).mappings(MappingKind::ALL),
        );
        let ids: Vec<String> = spec.points().into_iter().map(|p| p.id).collect();
        assert_eq!(
            ids,
            vec![
                "ablation/cora/ring",
                "ablation/cora/modular",
                "ablation/cora/random-table",
                "ablation/cora/drhm",
            ]
        );
    }

    #[test]
    fn tile_size_axis_preserves_base_overrides() {
        let base = ChipConfig::tile_16().with_mapping(MappingKind::Ring).with_mmh_tile(8);
        let spec = ExperimentSpec::new("t", base, SweepGrid::new().tile_sizes(TileSize::ALL));
        for point in spec.points() {
            assert_eq!(point.config.mapping, MappingKind::Ring);
            assert_eq!(point.config.mmh_tile, 8);
        }
    }

    #[test]
    fn seeds_are_stable_and_shared_across_comparison_arms() {
        let spec = ExperimentSpec::new(
            "s",
            ChipConfig::tile_16(),
            SweepGrid::new().mmh_tiles([1, 2, 4, 8]),
        );
        let a = spec.points();
        let b = spec.points();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.config.seed, pb.config.seed, "seeds are stable across enumerations");
        }
        // All arms of an ablation share one seed, so only the swept axis
        // differs between the compared runs.
        assert!(a.iter().all(|p| p.config.seed == a[0].config.seed));
    }

    #[test]
    fn seeds_decorrelate_across_datasets_and_specs() {
        let grid = SweepGrid::new().datasets(["cora", "facebook"]);
        let points = ExperimentSpec::new("s", ChipConfig::tile_16(), grid.clone()).points();
        assert_ne!(points[0].config.seed, points[1].config.seed);
        let other = ExperimentSpec::new("t", ChipConfig::tile_16(), grid).points();
        assert_ne!(points[0].config.seed, other[0].config.seed);
    }

    #[test]
    fn extended_axes_reach_the_config_and_the_id() {
        let spec = ExperimentSpec::new(
            "scale",
            ChipConfig::tile_16(),
            SweepGrid::new()
                .cores_per_tile([4, 8])
                .mems_per_tile([4])
                .router_buffers([8, 16])
                .mem_queue_capacities([64])
                .frequencies_ghz([1.0, 1.5])
                .hbm_presets([HbmPreset::Hbm2, HbmPreset::Hbm2DualStack]),
        );
        let points = spec.points();
        assert_eq!(points.len(), 16);
        assert_eq!(points[0].id, "scale/c4/m4/rb8/mq64/f1.0/hbm2");
        assert_eq!(points[15].id, "scale/c8/m4/rb16/mq64/f1.5/hbm2-dual");
        let last = &points[15].config;
        assert_eq!(last.cores_per_tile, 8);
        assert_eq!(last.router_buffer, 16);
        assert!((last.frequency_ghz - 1.5).abs() < 1e-12);
        assert_eq!(last.hbm, HbmPreset::Hbm2DualStack.timing());
    }

    #[test]
    fn tile_size_axis_preserves_non_structural_scaling_overrides() {
        let base = ChipConfig::tile_16()
            .with_router_buffer(32)
            .with_mem_queue_capacity(128)
            .with_frequency_ghz(1.25)
            .with_hbm_preset(HbmPreset::Hbm2DualStack);
        let spec = ExperimentSpec::new("t", base, SweepGrid::new().tile_sizes(TileSize::ALL));
        for point in spec.points() {
            assert_eq!(point.config.router_buffer, 32);
            assert_eq!(point.config.mem_queue_capacity, 128);
            assert!((point.config.frequency_ghz - 1.25).abs() < 1e-12);
            assert_eq!(point.config.hbm, HbmPreset::Hbm2DualStack.timing());
        }
    }

    #[test]
    fn params_name_the_extended_axes() {
        let point = &ExperimentSpec::new(
            "s",
            ChipConfig::tile_16(),
            SweepGrid::new().hbm_presets([HbmPreset::Ddr4]),
        )
        .points()[0];
        let params = point.params();
        assert!(params.contains(&("cores_per_tile".into(), "4".into())));
        assert!(params.contains(&("frequency_ghz".into(), "1.0".into())));
        assert!(params.contains(&("hbm".into(), "ddr4".into())));
    }

    #[test]
    fn params_describe_the_resolved_config() {
        let spec = ExperimentSpec::new(
            "s",
            ChipConfig::tile_16(),
            SweepGrid::new().datasets(["cora"]).hashlines([256]),
        );
        let point = &spec.points()[0];
        let params = point.params();
        assert!(params.contains(&("dataset".into(), "cora".into())));
        assert!(params.contains(&("hashlines".into(), "256".into())));
        assert!(params.contains(&("tile".into(), "Tile-16".into())));
    }
}
