//! Declarative experiment descriptions: a cartesian sweep over the
//! [`ChipConfig`] design space and the datasets it runs on.
//!
//! A [`SweepGrid`] names the axes being varied (compute mapping, eviction
//! policy, MMH tile height, HashPad size, tile size, dataset); an
//! [`ExperimentSpec`] pairs a grid with a base configuration and a name.
//! [`ExperimentSpec::points`] enumerates the full cartesian product in a
//! stable, documented order, assigning each point a stable human-readable
//! run ID and a seed derived from that ID — so the same spec always produces
//! the same points with the same seeds, regardless of how (or on how many
//! threads) it is executed.

use neura_chip::config::{ChipConfig, EvictionPolicy, TileSize};
use neura_chip::mapping::MappingKind;

/// The axes of a cartesian sweep. An empty axis means "hold the base
/// configuration's value" and contributes exactly one (default) setting to
/// the product, so the point count is always the product of
/// `max(1, axis.len())` over all axes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    /// Dataset names (resolved by the caller, typically through
    /// `DatasetCatalog::by_name`). Empty = a single dataset-less point.
    pub datasets: Vec<String>,
    /// Tile sizes to sweep (`ChipConfig::for_tile_size`).
    pub tile_sizes: Vec<TileSize>,
    /// Compute mappings to sweep.
    pub mappings: Vec<MappingKind>,
    /// Eviction policies to sweep.
    pub evictions: Vec<EvictionPolicy>,
    /// MMH tile heights to sweep (must each be 1, 2, 4 or 8).
    pub mmh_tiles: Vec<u8>,
    /// HashPad sizes (hash-lines per NeuraMem) to sweep.
    pub hashlines: Vec<usize>,
}

impl SweepGrid {
    /// An empty grid: one point, entirely defined by the base configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dataset axis (builder style).
    pub fn datasets<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.datasets = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the tile-size axis (builder style).
    pub fn tile_sizes(mut self, sizes: impl IntoIterator<Item = TileSize>) -> Self {
        self.tile_sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the compute-mapping axis (builder style).
    pub fn mappings(mut self, mappings: impl IntoIterator<Item = MappingKind>) -> Self {
        self.mappings = mappings.into_iter().collect();
        self
    }

    /// Sets the eviction-policy axis (builder style).
    pub fn evictions(mut self, evictions: impl IntoIterator<Item = EvictionPolicy>) -> Self {
        self.evictions = evictions.into_iter().collect();
        self
    }

    /// Sets the MMH tile-height axis (builder style).
    pub fn mmh_tiles(mut self, tiles: impl IntoIterator<Item = u8>) -> Self {
        self.mmh_tiles = tiles.into_iter().collect();
        self
    }

    /// Sets the HashPad-size axis (builder style).
    pub fn hashlines(mut self, hashlines: impl IntoIterator<Item = usize>) -> Self {
        self.hashlines = hashlines.into_iter().collect();
        self
    }

    /// Number of points the grid enumerates (product of non-empty axis
    /// lengths).
    pub fn len(&self) -> usize {
        [
            self.datasets.len(),
            self.tile_sizes.len(),
            self.mappings.len(),
            self.evictions.len(),
            self.mmh_tiles.len(),
            self.hashlines.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// Whether the grid enumerates exactly one all-default point.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }
}

/// One enumerated point of a sweep: the concrete configuration to run plus
/// its identity within the spec.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in the spec's enumeration order (0-based).
    pub index: usize,
    /// Stable run ID: `<spec>/<dataset>/<axis values that vary>`.
    pub id: String,
    /// Dataset name, when the grid has a dataset axis.
    pub dataset: Option<String>,
    /// The fully resolved configuration (including the derived seed).
    pub config: ChipConfig,
}

impl SweepPoint {
    /// The ordered `(key, value)` parameter list describing this point, as
    /// recorded in artifacts.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = Vec::new();
        if let Some(dataset) = &self.dataset {
            params.push(("dataset".to_string(), dataset.clone()));
        }
        params.push(("tile".to_string(), self.config.tile_size.name().to_string()));
        params.push(("mapping".to_string(), self.config.mapping.name().to_string()));
        params.push(("eviction".to_string(), eviction_name(self.config.eviction).to_string()));
        params.push(("mmh_tile".to_string(), self.config.mmh_tile.to_string()));
        params.push(("hashlines".to_string(), self.config.mem.hashlines.to_string()));
        params.push(("seed".to_string(), self.config.seed.to_string()));
        params
    }
}

/// Lower-case name of an eviction policy, used in run IDs and params.
pub fn eviction_name(policy: EvictionPolicy) -> &'static str {
    match policy {
        EvictionPolicy::Rolling => "rolling",
        EvictionPolicy::Barrier => "barrier",
    }
}

/// A named, declarative experiment: a base configuration plus the grid of
/// axes to sweep around it.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Spec name; the leading component of every run ID.
    pub name: String,
    /// Configuration used for every axis the grid leaves empty.
    pub base: ChipConfig,
    /// The sweep axes.
    pub grid: SweepGrid,
}

impl ExperimentSpec {
    /// Creates a spec with the given name, base configuration and grid.
    pub fn new(name: impl Into<String>, base: ChipConfig, grid: SweepGrid) -> Self {
        ExperimentSpec { name: name.into(), base, grid }
    }

    /// Enumerates every point of the cartesian product, in a stable order:
    /// dataset-major, then tile size, mapping, eviction, MMH tile and
    /// HashPad size (the last axis varies fastest).
    ///
    /// Run IDs name the spec, the dataset, and *only* the axes the grid
    /// actually sweeps (a one-point axis adds no ID segment), so IDs stay
    /// short and stable when a new axis is later swept with its old default.
    /// Each point's seed is derived by hashing the spec name and dataset
    /// with the base seed — deliberately *excluding* the swept config axes,
    /// so all arms of an A/B comparison (rolling vs barrier, MMH1 vs MMH8,
    /// …) run with the identical seed and differ only in the ablated axis,
    /// while different datasets (and different specs) still decorrelate.
    pub fn points(&self) -> Vec<SweepPoint> {
        let datasets: Vec<Option<&str>> = if self.grid.datasets.is_empty() {
            vec![None]
        } else {
            self.grid.datasets.iter().map(|d| Some(d.as_str())).collect()
        };
        let tile_sizes: Vec<Option<TileSize>> = axis(&self.grid.tile_sizes);
        let mappings: Vec<Option<MappingKind>> = axis(&self.grid.mappings);
        let evictions: Vec<Option<EvictionPolicy>> = axis(&self.grid.evictions);
        let mmh_tiles: Vec<Option<u8>> = axis(&self.grid.mmh_tiles);
        let hashlines: Vec<Option<usize>> = axis(&self.grid.hashlines);

        let mut points = Vec::with_capacity(self.grid.len());
        for dataset in &datasets {
            let mut seed_scope = self.name.clone();
            if let Some(d) = dataset {
                seed_scope.push('/');
                seed_scope.push_str(d);
            }
            let seed = derive_seed(self.base.seed, &seed_scope);
            for &tile_size in &tile_sizes {
                for &mapping in &mappings {
                    for &eviction in &evictions {
                        for &mmh_tile in &mmh_tiles {
                            for &lines in &hashlines {
                                let mut config = match tile_size {
                                    Some(t) => {
                                        // Preserve non-structural base overrides
                                        // when sweeping the tile size.
                                        ChipConfig::for_tile_size(t)
                                            .with_mapping(self.base.mapping)
                                            .with_eviction(self.base.eviction)
                                            .with_mmh_tile(self.base.mmh_tile)
                                            .with_seed(self.base.seed)
                                    }
                                    None => self.base.clone(),
                                };
                                if let Some(m) = mapping {
                                    config.mapping = m;
                                }
                                if let Some(e) = eviction {
                                    config.eviction = e;
                                }
                                if let Some(t) = mmh_tile {
                                    config = config.with_mmh_tile(t);
                                }
                                if let Some(h) = lines {
                                    config.mem.hashlines = h;
                                }

                                let mut id = self.name.clone();
                                if let Some(d) = dataset {
                                    id.push('/');
                                    id.push_str(d);
                                }
                                if tile_size.is_some() {
                                    id.push('/');
                                    id.push_str(config.tile_size.name());
                                }
                                if mapping.is_some() {
                                    id.push('/');
                                    id.push_str(config.mapping.name());
                                }
                                if eviction.is_some() {
                                    id.push('/');
                                    id.push_str(eviction_name(config.eviction));
                                }
                                if mmh_tile.is_some() {
                                    id.push_str(&format!("/mmh{}", config.mmh_tile));
                                }
                                if lines.is_some() {
                                    id.push_str(&format!("/hl{}", config.mem.hashlines));
                                }

                                config.seed = seed;
                                points.push(SweepPoint {
                                    index: points.len(),
                                    id,
                                    dataset: dataset.map(str::to_string),
                                    config,
                                });
                            }
                        }
                    }
                }
            }
        }
        points
    }
}

fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

/// Derives a sweep seed: FNV-1a over a scope string (spec name + dataset),
/// mixed with the base seed through a SplitMix64 finaliser. Pure function
/// of `(base, id)`.
pub fn derive_seed(base: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_one_default_point() {
        let spec = ExperimentSpec::new("t", ChipConfig::tile_16(), SweepGrid::new());
        let points = spec.points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].id, "t");
        assert_eq!(points[0].dataset, None);
        assert_eq!(points[0].config.tile_size, TileSize::Tile16);
    }

    #[test]
    fn ids_name_only_swept_axes() {
        let spec = ExperimentSpec::new(
            "ablation",
            ChipConfig::tile_16(),
            SweepGrid::new().datasets(["cora"]).mappings(MappingKind::ALL),
        );
        let ids: Vec<String> = spec.points().into_iter().map(|p| p.id).collect();
        assert_eq!(
            ids,
            vec![
                "ablation/cora/ring",
                "ablation/cora/modular",
                "ablation/cora/random-table",
                "ablation/cora/drhm",
            ]
        );
    }

    #[test]
    fn tile_size_axis_preserves_base_overrides() {
        let base = ChipConfig::tile_16().with_mapping(MappingKind::Ring).with_mmh_tile(8);
        let spec = ExperimentSpec::new("t", base, SweepGrid::new().tile_sizes(TileSize::ALL));
        for point in spec.points() {
            assert_eq!(point.config.mapping, MappingKind::Ring);
            assert_eq!(point.config.mmh_tile, 8);
        }
    }

    #[test]
    fn seeds_are_stable_and_shared_across_comparison_arms() {
        let spec = ExperimentSpec::new(
            "s",
            ChipConfig::tile_16(),
            SweepGrid::new().mmh_tiles([1, 2, 4, 8]),
        );
        let a = spec.points();
        let b = spec.points();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.config.seed, pb.config.seed, "seeds are stable across enumerations");
        }
        // All arms of an ablation share one seed, so only the swept axis
        // differs between the compared runs.
        assert!(a.iter().all(|p| p.config.seed == a[0].config.seed));
    }

    #[test]
    fn seeds_decorrelate_across_datasets_and_specs() {
        let grid = SweepGrid::new().datasets(["cora", "facebook"]);
        let points = ExperimentSpec::new("s", ChipConfig::tile_16(), grid.clone()).points();
        assert_ne!(points[0].config.seed, points[1].config.seed);
        let other = ExperimentSpec::new("t", ChipConfig::tile_16(), grid).points();
        assert_ne!(points[0].config.seed, other[0].config.seed);
    }

    #[test]
    fn params_describe_the_resolved_config() {
        let spec = ExperimentSpec::new(
            "s",
            ChipConfig::tile_16(),
            SweepGrid::new().datasets(["cora"]).hashlines([256]),
        );
        let point = &spec.points()[0];
        let params = point.params();
        assert!(params.contains(&("dataset".into(), "cora".into())));
        assert!(params.contains(&("hashlines".into(), "256".into())));
        assert!(params.contains(&("tile".into(), "Tile-16".into())));
    }
}
