//! Typed run results and the machine-readable artifact format.
//!
//! The vendored `serde` stub is a no-op, so this module owns the whole JSON
//! story: a small document model ([`JsonValue`]) with deterministic
//! formatting, a recursive-descent parser used by the tests and the smoke
//! harness to round-trip what the binaries emit, and the typed
//! [`Artifact`]/[`RunRecord`]/[`Metric`] layer the binaries actually build.
//!
//! Determinism matters here: the acceptance bar for the parallel runner is
//! that a 2-thread and an 8-thread run of the same spec produce *byte
//! identical* JSON, so object keys keep insertion order and floats are
//! formatted with Rust's shortest round-trip representation rather than
//! anything locale- or platform-dependent.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version tag embedded in every artifact so downstream tooling can detect
/// schema changes. Bump when the shape of the emitted JSON changes.
pub const SCHEMA: &str = "neura_lab.artifact/v1";

/// Schema tag for windowed timeline artifacts (the telemetry layer's
/// time-series view of one run). The document *shape* is identical to
/// [`SCHEMA`] — records with params and metrics — but the record IDs
/// follow the `{scope}/timeline` + `{scope}/window/NNN` convention and
/// the file lands beside the run artifact (e.g. `timeline.json` next to
/// `serve.json`), so tooling uses the tag to tell the two apart.
pub const TIMELINE_SCHEMA: &str = "neura_lab.timeline/v1";

/// Schema tag for chip-profile artifacts (the cycle simulator's windowed
/// stall attribution, emitted by `profile` and `serve --profile`). Same
/// document shape as [`SCHEMA`]; record IDs follow the `{scope}/profile` +
/// `{scope}/window/NNN` + `{scope}/hops` + `{scope}/channel/NN`
/// convention produced by [`profile_records`].
pub const PROFILE_SCHEMA: &str = "neura_lab.profile/v1";

/// Directory (relative to the working directory) where artifacts land when
/// `--json` is given without an explicit path.
pub const ARTIFACT_DIR: &str = "target/artifacts";

// ---------------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------------

/// A JSON document. Objects preserve insertion order so that emission is
/// deterministic and diffs between runs are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite floats serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite double-precision number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the document with two-space indentation and a trailing
    /// newline — the exact bytes written to artifact files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) if pairs.is_empty() => out.push_str("{}"),
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a float deterministically: Rust's shortest round-trip form, which
/// is valid JSON for every finite value (`1.0`, `0.25`, `1e300`). Non-finite
/// values have no JSON spelling and become `null`.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        let _ = write!(out, "{n:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSON parser (used by tests and the smoke harness to round-trip artifacts)
// ---------------------------------------------------------------------------

/// Error produced by [`parse_json`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document. Supports the full emitted surface (and standard
/// JSON generally, including `\uXXXX` escapes with surrogate pairs); rejects
/// trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected literal {text:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let Some(byte) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uDC00..\uDFFF.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            _ => return Err(self.error("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonParseError { offset: start, message: format!("bad number {text:?}") })
    }
}

// ---------------------------------------------------------------------------
// Typed result layer
// ---------------------------------------------------------------------------

/// One named measurement produced by a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, e.g. `"total_cycles"` or `"speedup"`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Optional unit, e.g. `"cycles"`, `"x"`, `"GOP/s"`.
    pub unit: Option<String>,
}

/// The result of one experiment point: a stable ID, the parameters that
/// produced it, and the metrics it measured.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Stable identifier, unique within an artifact
    /// (e.g. `"fig16/speedup/ca-CondMat"`).
    pub id: String,
    /// Ordered parameter list describing the point.
    pub params: Vec<(String, String)>,
    /// Ordered metric list.
    pub metrics: Vec<Metric>,
}

impl RunRecord {
    /// Creates an empty record with the given ID.
    pub fn new(id: impl Into<String>) -> Self {
        RunRecord { id: id.into(), params: Vec::new(), metrics: Vec::new() }
    }

    /// Appends a parameter (builder style).
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Appends a unit-less metric (builder style).
    pub fn metric(self, name: impl Into<String>, value: f64) -> Self {
        self.metric_with_unit(name, value, None)
    }

    /// Appends a metric with a unit (builder style).
    pub fn unit_metric(self, name: impl Into<String>, value: f64, unit: &str) -> Self {
        self.metric_with_unit(name, value, Some(unit.to_string()))
    }

    fn metric_with_unit(
        mut self,
        name: impl Into<String>,
        value: f64,
        unit: Option<String>,
    ) -> Self {
        self.metrics.push(Metric { name: name.into(), value, unit });
        self
    }

    /// Looks up a metric value by name.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Appends the standard metric set of a cycle-level
    /// [`ExecutionReport`](neura_chip::accelerator::ExecutionReport), so
    /// every simulating binary emits the same schema for the same
    /// quantities.
    pub fn with_execution(self, report: &neura_chip::accelerator::ExecutionReport) -> Self {
        let (mem_max_over_mean, mem_cv) =
            neura_sparse::stats::imbalance(&report.mem_work_histogram);
        self.unit_metric("total_cycles", report.total_cycles as f64, "cycles")
            .metric("mmh_instructions", report.mmh_instructions as f64)
            .metric("hacc_instructions", report.hacc_instructions as f64)
            .unit_metric("cpi", report.cpi, "cycles/instr")
            .unit_metric("ipc", report.ipc, "instr/cycle")
            .unit_metric("gops", report.gops, "GOP/s")
            .metric("core_utilization", report.core_utilization)
            .unit_metric("avg_hacc_latency", report.hacc_latency_histogram.mean(), "cycles")
            .metric("peak_hashpad_occupancy", report.peak_hashpad_occupancy as f64)
            .unit_metric("hashpad_full_stalls", report.hashpad_full_stalls as f64, "cycles")
            .metric("hash_collisions", report.hash_collisions as f64)
            .metric("evictions", report.evictions as f64)
            .metric("mem_work_max_over_mean", mem_max_over_mean)
            .metric("mem_work_cv", mem_cv)
            .unit_metric("dram_bytes_read", report.dram_bytes_read as f64, "bytes")
            .unit_metric("dram_bytes_written", report.dram_bytes_written as f64, "bytes")
            .metric("noc_packets", report.noc_packets as f64)
            .unit_metric("execution_seconds", report.execution_seconds, "s")
            .unit_metric("core_busy_cycles", report.core_busy_cycles as f64, "core-cycles")
            .unit_metric("core_stall_cycles", report.core_stall_cycles as f64, "core-cycles")
            .unit_metric("core_idle_cycles", report.core_idle_cycles as f64, "core-cycles")
            .metric("avg_in_flight_mem", report.avg_in_flight_mem)
            .metric("peak_in_flight_mem", report.peak_in_flight_mem as f64)
            .unit_metric("mean_dram_latency", report.mean_dram_latency, "cycles")
            .unit_metric("noc_mean_latency", report.noc_mean_latency, "cycles")
            .metric("noc_mean_hops", report.noc_mean_hops)
    }
}

/// Flattens a chip [`Profile`](neura_chip::profile::Profile) into the
/// records of a [`PROFILE_SCHEMA`] artifact: one `{scope}/profile`
/// summary (whose `worst_window_stall_frac` is the trend headline), one
/// `{scope}/window/NNN` record per timeline window, a `{scope}/hops`
/// record carrying the exact hop distribution, and one
/// `{scope}/channel/NN` record per HBM channel.
pub fn profile_records(scope: &str, profile: &neura_chip::profile::Profile) -> Vec<RunRecord> {
    use neura_chip::profile::StallCause;
    let (worst_window, worst_frac) = profile.worst_window().unwrap_or((0, 0.0));
    let hop_tails = profile.hops.percentiles(&[50.0, 99.0]);
    let dram_tails = profile.dram_latency.percentiles(&[50.0, 99.0]);
    let mut summary = RunRecord::new(format!("{scope}/profile"))
        .unit_metric("window_cycles", profile.window_cycles as f64, "cycles")
        .metric("windows", profile.windows.len() as f64)
        .unit_metric("total_cycles", profile.total_cycles as f64, "cycles")
        .metric("cores", profile.cores as f64)
        .metric("mems", profile.mems as f64)
        .metric("channels", profile.channels as f64)
        .unit_metric("busy_cycles", profile.busy as f64, "core-cycles")
        .unit_metric("stall_cycles", profile.stall as f64, "core-cycles")
        .unit_metric("idle_cycles", profile.idle as f64, "core-cycles")
        .unit_metric("epilogue_idle_cycles", profile.epilogue_idle as f64, "core-cycles")
        .metric("stall_frac", profile.stall_frac())
        .metric("worst_window", worst_window as f64)
        .metric("worst_window_stall_frac", worst_frac);
    for cause in StallCause::ALL {
        summary = summary.unit_metric(
            format!("stall_{}", cause.name()),
            profile.stall_by_cause(cause) as f64,
            "core-cycles",
        );
    }
    summary = summary
        .metric("mmh_retired", profile.mmh_retired as f64)
        .metric("hacc_retired", profile.hacc_retired as f64)
        .metric("noc_delivered", profile.noc_delivered() as f64)
        .unit_metric("hops_total", profile.hops_total() as f64, "hops")
        .unit_metric("hop_p50", hop_tails[0], "hops")
        .unit_metric("hop_p99", hop_tails[1], "hops")
        .metric("dram_requests", profile.dram_latency.count() as f64)
        .unit_metric("dram_latency_p50", dram_tails[0], "cycles")
        .unit_metric("dram_latency_p99", dram_tails[1], "cycles")
        .metric("hbm_in_flight_peak", profile.hbm_in_flight_peak as f64);
    let mut records = vec![summary];
    for (w, window) in profile.windows.iter().enumerate() {
        let mut record = RunRecord::new(format!("{scope}/window/{w:03}"))
            .unit_metric("start_cycle", window.start_cycle as f64, "cycles")
            .unit_metric("cycles", window.cycles as f64, "cycles")
            .unit_metric("busy", window.busy as f64, "core-cycles")
            .unit_metric("stall", window.stall as f64, "core-cycles")
            .unit_metric("idle", window.idle as f64, "core-cycles")
            .metric("stall_frac", window.stall_frac());
        for cause in StallCause::ALL {
            record = record.unit_metric(
                format!("stall_{}", cause.name()),
                window.stall_by_cause(cause) as f64,
                "core-cycles",
            );
        }
        records.push(
            record
                .metric("mmh_retired", window.mmh_retired as f64)
                .metric("hacc_retired", window.hacc_retired as f64)
                .metric("pad_occupancy_peak", window.pad_occupancy_peak as f64)
                .unit_metric("pad_full_stalls", window.pad_full_stalls as f64, "cycles")
                .metric("noc_in_flight_peak", window.noc_in_flight_peak as f64)
                .metric("hbm_in_flight_peak", window.hbm_in_flight_peak as f64)
                .metric("hbm_queue_peak", window.hbm_queue_peak as f64),
        );
    }
    let mut hops = RunRecord::new(format!("{scope}/hops"));
    for (h, &count) in profile.hop_counts.iter().enumerate() {
        hops = hops.metric(format!("hops_{h:02}"), count as f64);
    }
    records.push(hops);
    for (c, &peak) in profile.channel_queue_peaks.iter().enumerate() {
        records.push(
            RunRecord::new(format!("{scope}/channel/{c:02}")).metric("queue_peak", peak as f64),
        );
    }
    records
}

/// A full artifact: every record one binary emitted in one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The document's schema tag ([`SCHEMA`] for run artifacts,
    /// [`TIMELINE_SCHEMA`] for windowed timelines).
    pub schema: String,
    /// Name of the emitting binary (`"fig16"`, `"table5"`, …).
    pub bin: String,
    /// The [`crate::scale_multiplier`] the run used (1 = paper scale).
    pub scale_mult: usize,
    /// Document-level metadata in insertion order — measurement context
    /// (wall-clock, parallelism) that is *not* gated: `trend` diffs only
    /// [`Self::records`], so meta may vary run to run (wall-clock time
    /// does) without breaking byte-identity gates on the records.
    pub meta: Vec<(String, f64)>,
    /// All records, in emission order.
    pub records: Vec<RunRecord>,
}

impl Artifact {
    /// Creates an empty artifact for a binary at the given scale multiplier.
    pub fn new(bin: impl Into<String>, scale_mult: usize) -> Self {
        Artifact {
            schema: SCHEMA.into(),
            bin: bin.into(),
            scale_mult,
            meta: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Sets (or replaces) one document-level meta value.
    pub fn set_meta(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// Reads one document-level meta value.
    pub fn meta_value(&self, key: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Retags the artifact with a different schema (builder style) — used
    /// for [`TIMELINE_SCHEMA`] documents, which share the record shape.
    pub fn with_schema(mut self, schema: &str) -> Self {
        self.schema = schema.into();
        self
    }

    /// Appends one record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = RunRecord>) {
        self.records.extend(records);
    }

    /// Finds a record by its stable ID.
    pub fn record(&self, id: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Converts to the JSON document model.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema".into(), JsonValue::String(self.schema.clone())),
            ("bin".into(), JsonValue::String(self.bin.clone())),
            ("scale_mult".into(), JsonValue::Number(self.scale_mult as f64)),
        ];
        if !self.meta.is_empty() {
            fields.push((
                "meta".into(),
                JsonValue::Object(
                    self.meta.iter().map(|(k, v)| (k.clone(), JsonValue::Number(*v))).collect(),
                ),
            ));
        }
        fields.push((
            "records".into(),
            JsonValue::Array(
                self.records
                    .iter()
                    .map(|r| {
                        let mut fields = vec![
                            ("id".into(), JsonValue::String(r.id.clone())),
                            (
                                "params".into(),
                                JsonValue::Object(
                                    r.params
                                        .iter()
                                        .map(|(k, v)| (k.clone(), JsonValue::String(v.clone())))
                                        .collect(),
                                ),
                            ),
                        ];
                        fields.push((
                            "metrics".into(),
                            JsonValue::Array(
                                r.metrics
                                    .iter()
                                    .map(|m| {
                                        let mut pairs = vec![
                                            ("name".into(), JsonValue::String(m.name.clone())),
                                            ("value".into(), JsonValue::Number(m.value)),
                                        ];
                                        if let Some(unit) = &m.unit {
                                            pairs.push((
                                                "unit".into(),
                                                JsonValue::String(unit.clone()),
                                            ));
                                        }
                                        JsonValue::Object(pairs)
                                    })
                                    .collect(),
                            ),
                        ));
                        JsonValue::Object(fields)
                    })
                    .collect(),
            ),
        ));
        JsonValue::Object(fields)
    }

    /// Rebuilds an artifact from its JSON form (inverse of [`Self::to_json`]).
    ///
    /// Used by tests and the smoke harness; unknown fields are ignored so the
    /// schema can grow additively.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
        if schema != SCHEMA && schema != TIMELINE_SCHEMA && schema != PROFILE_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?}, {TIMELINE_SCHEMA:?} or {PROFILE_SCHEMA:?})"
            ));
        }
        let bin = doc.get("bin").and_then(JsonValue::as_str).ok_or("missing \"bin\"")?.to_string();
        let scale_mult =
            doc.get("scale_mult").and_then(JsonValue::as_f64).ok_or("missing \"scale_mult\"")?
                as usize;
        let mut meta = Vec::new();
        if let Some(JsonValue::Object(pairs)) = doc.get("meta") {
            for (key, value) in pairs {
                let value = value.as_f64().ok_or("non-numeric meta value")?;
                meta.push((key.clone(), value));
            }
        }
        let mut records = Vec::new();
        for raw in doc.get("records").and_then(JsonValue::as_array).ok_or("missing \"records\"")? {
            let mut record = RunRecord::new(
                raw.get("id").and_then(JsonValue::as_str).ok_or("record missing \"id\"")?,
            );
            if let Some(JsonValue::Object(pairs)) = raw.get("params") {
                for (key, value) in pairs {
                    let value = value.as_str().ok_or("non-string param value")?;
                    record.params.push((key.clone(), value.to_string()));
                }
            }
            for metric in raw
                .get("metrics")
                .and_then(JsonValue::as_array)
                .ok_or("record missing \"metrics\"")?
            {
                record.metrics.push(Metric {
                    name: metric
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("metric missing \"name\"")?
                        .to_string(),
                    value: metric
                        .get("value")
                        .and_then(JsonValue::as_f64)
                        .ok_or("metric missing \"value\"")?,
                    unit: metric.get("unit").and_then(JsonValue::as_str).map(str::to_string),
                });
            }
            records.push(record);
        }
        Ok(Artifact { schema: schema.to_string(), bin, scale_mult, meta, records })
    }

    /// The serialised bytes of this artifact (what [`Self::write`] puts on
    /// disk).
    pub fn to_bytes(&self) -> String {
        self.to_json().to_pretty()
    }

    /// The default on-disk location for a binary's artifact:
    /// `target/artifacts/<bin>.json` relative to the working directory.
    pub fn default_path(bin: &str) -> PathBuf {
        Path::new(ARTIFACT_DIR).join(format!("{bin}.json"))
    }

    /// Writes the artifact to `path`, creating parent directories as needed.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_bytes())
    }
}

// ---------------------------------------------------------------------------
// Human-readable table rendering (moved here from `neura_bench` so the two
// output formats live side by side)
// ---------------------------------------------------------------------------

/// Prints a fixed-width table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with the given number of decimals (table cells).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        let value = JsonValue::String("a\"b\\c\nd\te\r\u{1}ü".into());
        let text = value.to_pretty();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\r\\u0001ü\"\n");
        assert_eq!(parse_json(text.trim()).unwrap(), value);
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        for n in [0.0, -0.0, 1.0, 0.1, 2.5e-9, 1e300, f64::MAX, 123456789.125] {
            let mut out = String::new();
            write_number(&mut out, n);
            let parsed = parse_json(&out).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), n.to_bits(), "{n} round-trips");
        }
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        let mut out = String::new();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parser_handles_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse_json(r#""é""#).unwrap(), JsonValue::String("é".into()));
        assert_eq!(parse_json(r#""😀""#).unwrap(), JsonValue::String("😀".into()));
        assert!(parse_json(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1, 2,]").is_err());
    }

    #[test]
    fn nested_record_round_trips() {
        let mut artifact = Artifact::new("demo", 4);
        artifact.push(
            RunRecord::new("demo/a")
                .param("dataset", "cora")
                .param("mapping", "drhm")
                .metric("total_cycles", 1234.0)
                .unit_metric("gops", 3.25, "GOP/s"),
        );
        artifact.push(RunRecord::new("demo/empty"));
        let text = artifact.to_bytes();
        let parsed = Artifact::from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(parsed, artifact);
        assert_eq!(parsed.record("demo/a").unwrap().metric_value("gops"), Some(3.25));
    }

    #[test]
    fn default_path_is_under_target_artifacts() {
        assert_eq!(Artifact::default_path("fig16"), Path::new("target/artifacts/fig16.json"));
    }

    #[test]
    fn print_table_tolerates_ragged_rows() {
        // Exercised for coverage: rows wider than the header must not panic.
        print_table("t", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
