//! Sweep-driven auto-tuning of [`ChipConfig`](neura_chip::config::ChipConfig)
//! by successive halving over [`SweepGrid`](crate::spec::SweepGrid)
//! refinements.
//!
//! The paper publishes a handful of hand-picked design points (Tables 2/3)
//! and ablates one axis at a time; this module *searches* the joint space
//! instead. A [`TuneSpec`] names a base configuration, a coarse grid over
//! any subset of the twelve sweep axes, an [`Objective`] and an evaluation
//! budget. [`Tuner::run`] then executes classic successive halving:
//!
//! 1. **Rung 0** evaluates every grid point at the cheapest fidelity (the
//!    workload shrunk by the rung's `shrink` factor).
//! 2. The top `keep` fraction by objective score survive; the survivor set
//!    is the refined grid for the next rung.
//! 3. Later rungs re-evaluate only the survivors at increasing fidelity:
//!    the full ladder ends at full fidelity and fidelity doubles towards
//!    it (rungs more than three doublings from the end share the cheapest
//!    8× shrink). The search stops when the refinement is exhausted (one
//!    survivor) or the budget is spent — a budget-truncated ladder keeps
//!    its cheap shrink factors, so a smaller budget always means a
//!    cheaper run.
//!
//! The winner is finally compared against the paper-default base
//! configuration *at the same fidelity*; the reported best configuration is
//! whichever scores better, so a tuner run can never recommend something
//! worse than the published design point.
//!
//! Everything is deterministic: points are enumerated by
//! [`ExperimentSpec::points`](crate::spec::ExperimentSpec::points) (stable
//! IDs and derived seeds), rungs execute on the ordered [`Runner`]
//! (results collected in spec order for any thread count), and survivor
//! selection breaks score ties by point index — so the tuner artifact is
//! byte-identical for any `NEURA_LAB_THREADS`.

mod halving;
mod objective;

pub use halving::{Evaluation, RungContext, RungPlan, RungTrace, TuneOutcome, TuneSpec, Tuner};
pub use objective::Objective;
