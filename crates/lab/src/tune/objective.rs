//! Tuning objectives: how one simulated run is condensed to a single score.
//!
//! Scores are *lower-is-better* across all objectives so the halving loop
//! never needs to know which direction an objective optimises. Speedup over
//! the paper default is therefore scored as raw execution time (minimising
//! time maximises speedup); the human-facing speedup factor is derived in
//! the outcome's `best_config` record as `baseline_score / best_score`.

use neura_chip::accelerator::ExecutionReport;
use neura_chip::config::ChipConfig;
use neura_chip::power::PowerModel;

/// The quantity a [`Tuner`](crate::tune::Tuner) minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Total simulated cycles (frequency-independent).
    Cycles,
    /// Energy–delay product: average chip power × execution time², in J·s.
    /// Penalises configurations that buy speed with disproportionate
    /// silicon (the power model scales with core/mem/router counts and
    /// HashPad capacity).
    EnergyDelay,
    /// Execution time, reported as speedup over the paper-default
    /// configuration (`baseline_seconds / best_seconds`).
    Speedup,
    /// p99 serving latency under a reference request stream (seconds).
    /// Scores a candidate by what actually matters in production — the
    /// tail under load, queueing included — instead of single-kernel
    /// cycles. This objective is scored by a serving simulation, not by a
    /// single [`ExecutionReport`], so it runs through
    /// [`Tuner::run_scored`](crate::tune::Tuner::run_scored) (the `tune`
    /// binary wires `neura_serve` in); [`Objective::score`] panics for it.
    ServeP99,
}

impl Objective {
    /// All objectives, in documentation order.
    pub const ALL: [Objective; 4] =
        [Objective::Cycles, Objective::EnergyDelay, Objective::Speedup, Objective::ServeP99];

    /// Stable name used by the `--objective` flag and in artifact params.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::EnergyDelay => "energy-delay",
            Objective::Speedup => "speedup",
            Objective::ServeP99 => "serve-p99",
        }
    }

    /// Unit of the score this objective produces.
    pub fn unit(&self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::EnergyDelay => "J*s",
            Objective::Speedup => "s",
            Objective::ServeP99 => "s",
        }
    }

    /// Parses a flag value (`"cycles"`, `"energy-delay"`/`"edp"`,
    /// `"speedup"`, `"serve-p99"`/`"p99"`).
    pub fn parse(name: &str) -> Option<Objective> {
        match name {
            "cycles" => Some(Objective::Cycles),
            "energy-delay" | "edp" => Some(Objective::EnergyDelay),
            "speedup" => Some(Objective::Speedup),
            "serve-p99" | "p99" => Some(Objective::ServeP99),
            _ => None,
        }
    }

    /// Whether [`Self::score`] can condense an [`ExecutionReport`] into
    /// this objective's score. False for [`Objective::ServeP99`], which
    /// needs a serving simulation and a caller-supplied score.
    pub fn scores_reports(&self) -> bool {
        !matches!(self, Objective::ServeP99)
    }

    /// Scores one run; lower is better for every objective. Non-finite
    /// inputs score `+inf` so they can never win a rung.
    ///
    /// # Panics
    ///
    /// Panics for [`Objective::ServeP99`]: a single kernel report carries
    /// no tail latency. Use
    /// [`Tuner::run_scored`](crate::tune::Tuner::run_scored) with a
    /// serving evaluator instead.
    pub fn score(&self, config: &ChipConfig, report: &ExecutionReport) -> f64 {
        let score = match self {
            Objective::Cycles => report.total_cycles as f64,
            Objective::EnergyDelay => {
                let power = PowerModel::calibrated().breakdown(config).total_power_w();
                power * report.execution_seconds * report.execution_seconds
            }
            Objective::Speedup => report.execution_seconds,
            Objective::ServeP99 => panic!(
                "the serve-p99 objective is scored by a serving simulation; \
                 run the tuner through Tuner::run_scored"
            ),
        };
        if score.is_finite() {
            score
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for objective in Objective::ALL {
            assert_eq!(Objective::parse(objective.name()), Some(objective));
        }
        assert_eq!(Objective::parse("edp"), Some(Objective::EnergyDelay));
        assert_eq!(Objective::parse("p99"), Some(Objective::ServeP99));
        assert_eq!(Objective::parse("bogus"), None);
    }

    #[test]
    fn only_serve_p99_needs_an_external_scorer() {
        for objective in Objective::ALL {
            assert_eq!(objective.scores_reports(), objective != Objective::ServeP99);
        }
    }

    #[test]
    #[should_panic(expected = "serving simulation")]
    fn serve_p99_rejects_report_scoring() {
        let report = fake_report(10, 1.0);
        Objective::ServeP99.score(&ChipConfig::tile_16(), &report);
    }

    #[test]
    fn energy_delay_penalises_bigger_chips_at_equal_time() {
        let mut report = fake_report(1_000, 1e-6);
        let small = ChipConfig::tile_16();
        let big = ChipConfig::tile_16().with_cores_per_tile(16).with_mems_per_tile(16);
        let objective = Objective::EnergyDelay;
        assert!(objective.score(&big, &report) > objective.score(&small, &report));
        // ... while cycles ignores the configuration entirely.
        report.total_cycles = 999;
        assert_eq!(Objective::Cycles.score(&big, &report), 999.0);
    }

    #[test]
    fn non_finite_scores_become_infinity() {
        let report = fake_report(10, f64::NAN);
        assert_eq!(Objective::Speedup.score(&ChipConfig::tile_16(), &report), f64::INFINITY);
    }

    /// A report with only the fields the objectives read filled in.
    fn fake_report(cycles: u64, seconds: f64) -> ExecutionReport {
        let mut chip = neura_chip::accelerator::Accelerator::new(tiny_config());
        let a = neura_sparse::gen::GraphGenerator::power_law(32, 64, 2.0, 1).generate().to_csr();
        let mut report = chip.run_spgemm(&a, &a).expect("tiny sim drains").report;
        report.total_cycles = cycles;
        report.execution_seconds = seconds;
        report
    }

    fn tiny_config() -> ChipConfig {
        ChipConfig::tile_4()
    }
}
