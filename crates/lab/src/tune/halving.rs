//! The successive-halving engine and its machine-readable outcome.

use neura_chip::accelerator::ExecutionReport;
use neura_chip::config::ChipConfig;

use crate::report::{Metric, RunRecord};
use crate::runner::Runner;
use crate::spec::{ExperimentSpec, SweepGrid, SweepPoint};
use crate::tune::Objective;

/// One scored evaluation of a grid point at one fidelity — the unit the
/// halving ladder ranks. Report-backed objectives build it from an
/// [`ExecutionReport`]; externally-scored objectives (serve-p99) build it
/// from whatever simulation produced the score, attaching any extra
/// metrics worth recording.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The objective score; lower is better. Non-finite scores are
    /// sanitised to `+inf` so they can never win a rung.
    pub score: f64,
    /// The cycle-level report, when one backs the score (adds the standard
    /// execution metric set to the per-evaluation record).
    pub report: Option<ExecutionReport>,
    /// Extra metrics appended to the per-evaluation record.
    pub metrics: Vec<Metric>,
}

impl Evaluation {
    /// An externally-scored evaluation with no backing report.
    pub fn scored(score: f64) -> Self {
        Evaluation { score, report: None, metrics: Vec::new() }
    }

    /// Appends an extra metric (builder style).
    pub fn with_metric(mut self, name: impl Into<String>, value: f64, unit: &str) -> Self {
        self.metrics.push(Metric { name: name.into(), value, unit: Some(unit.to_string()) });
        self
    }
}

/// Where in the halving ladder one evaluation sits — handed to
/// [`Tuner::run_tiered`] scorers so two-tier cost models can pick a
/// fidelity *tier* per rung: analytic screening on the cheap rungs, the
/// cycle-accurate oracle on the final rung (and on the baseline
/// comparison, which is always scored as final so the
/// `improvement_vs_default ≥ 1` guarantee compares like against like).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungContext {
    /// Rung number (0 = full grid).
    pub index: usize,
    /// Workload-shrink factor of this rung (1 = full fidelity).
    pub shrink: usize,
    /// Whether this is the last *executed* rung (or the baseline run) —
    /// the evaluation that decides the reported best configuration.
    pub is_final: bool,
}

/// Largest workload-shrink factor an early rung may use. Deeper ladders
/// reuse this cheapest fidelity rather than shrinking further (tiny graphs
/// stop discriminating between configurations well before 1/8 scale).
const MAX_SHRINK: usize = 8;

/// A declarative tuning problem: what to search, over which grid, for which
/// objective, within which budget.
#[derive(Debug, Clone)]
pub struct TuneSpec {
    /// Tuner name; the leading component of every run ID.
    pub name: String,
    /// The paper-default (baseline) configuration. Axes the grid leaves
    /// empty hold this configuration's values.
    pub base: ChipConfig,
    /// The coarse grid to search. At most one dataset (the tuner optimises
    /// one workload at a time; run one tuner per dataset for a suite).
    pub grid: SweepGrid,
    /// The quantity to minimise.
    pub objective: Objective,
    /// Maximum total evaluations across all rungs. Rung 0 (the full grid)
    /// always runs; later rungs are dropped once the budget is exhausted.
    pub budget: usize,
    /// Fraction of each rung that survives into the next (exclusive 0..1).
    pub keep: f64,
}

impl TuneSpec {
    /// Creates a spec with an unlimited budget and the canonical halving
    /// fraction (`keep = 0.5`).
    pub fn new(
        name: impl Into<String>,
        base: ChipConfig,
        grid: SweepGrid,
        objective: Objective,
    ) -> Self {
        TuneSpec { name: name.into(), base, grid, objective, budget: usize::MAX, keep: 0.5 }
    }

    /// Caps the total evaluation count (builder style).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the survivor fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep < 1`.
    pub fn with_keep(mut self, keep: f64) -> Self {
        assert!(keep > 0.0 && keep < 1.0, "keep fraction must be in (0, 1)");
        self.keep = keep;
        self
    }
}

/// One planned rung: how many candidates it evaluates and at what fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungPlan {
    /// Rung number (0 = full grid, cheapest fidelity).
    pub index: usize,
    /// Number of candidates this rung evaluates.
    pub size: usize,
    /// Extra workload-shrink factor (1 = full fidelity). The full halving
    /// ladder ends at shrink 1 and doubles backwards, with rungs beyond
    /// [`MAX_SHRINK`] doublings from the end sharing the cheapest shrink;
    /// a budget-truncated ladder keeps the shrinks the full ladder
    /// assigned, so its last executed rung may be > 1.
    pub shrink: usize,
}

/// What actually happened in one executed rung.
#[derive(Debug, Clone)]
pub struct RungTrace {
    /// Rung number.
    pub index: usize,
    /// Shrink factor the rung ran at.
    pub shrink: usize,
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Indices (into [`Tuner::points`]) of the survivors, best score first.
    pub survivors: Vec<usize>,
    /// Index of the rung's best point.
    pub best_index: usize,
    /// The rung's best score.
    pub best_score: f64,
}

/// The result of a tuner run: the grid winner, the baseline comparison and
/// the full per-rung provenance, plus the artifact records describing all
/// of it.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The objective the run minimised.
    pub objective: Objective,
    /// Best grid point at the final rung's fidelity.
    pub winner: SweepPoint,
    /// The winner's score at full (final-rung) fidelity.
    pub winner_score: f64,
    /// The paper-default configuration, evaluated at the same fidelity.
    pub baseline: SweepPoint,
    /// The baseline's score.
    pub baseline_score: f64,
    /// Whichever of winner/baseline scores better — by construction never
    /// worse than the paper default on the objective.
    pub best: SweepPoint,
    /// The best configuration's score.
    pub best_score: f64,
    /// Executed rungs, in order.
    pub rungs: Vec<RungTrace>,
    /// Total evaluations spent (including the baseline run).
    pub evaluations: usize,
    records: Vec<RunRecord>,
}

impl TuneOutcome {
    /// The artifact records describing this run: one per evaluation, one
    /// summary per rung, one for the baseline and one `best_config` record.
    /// Deterministically ordered, so artifacts built from them are
    /// byte-identical across thread counts.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// How much better the best configuration is than the paper default on
    /// the objective (`baseline_score / best_score`, ≥ 1). For the
    /// [`Objective::Speedup`] objective this *is* the speedup factor.
    pub fn improvement_vs_default(&self) -> f64 {
        improvement(self.baseline_score, self.best_score)
    }
}

/// Improvement factor of a best score over the baseline (both
/// lower-is-better). The single definition behind both the
/// `improvement_vs_default` artifact metric and
/// [`TuneOutcome::improvement_vs_default`].
fn improvement(baseline_score: f64, best_score: f64) -> f64 {
    if best_score > 0.0 {
        baseline_score / best_score
    } else {
        1.0
    }
}

/// Builds the per-evaluation artifact record: the standard execution
/// metric set when a report backs the score, any extra metrics, then the
/// objective score; `extra_params` follow the point's own parameters.
fn evaluation_record(
    id: String,
    evaluation: &Evaluation,
    score: f64,
    objective: Objective,
    params: Vec<(String, String)>,
    extra_params: &[(String, String)],
) -> RunRecord {
    let mut record = RunRecord::new(id);
    if let Some(report) = &evaluation.report {
        record = record.with_execution(report);
    }
    record.metrics.extend(evaluation.metrics.iter().cloned());
    let mut record = record.unit_metric("objective_score", score, objective.unit());
    record.params = params;
    record.params.extend(extra_params.iter().cloned());
    record
}

/// The successive-halving tuner: an enumerated grid plus a rung plan.
#[derive(Debug, Clone)]
pub struct Tuner {
    spec: TuneSpec,
    points: Vec<SweepPoint>,
    plan: Vec<RungPlan>,
}

impl Tuner {
    /// Enumerates the grid and plans the rung ladder.
    ///
    /// # Panics
    ///
    /// Panics when the grid sweeps more than one dataset (the baseline
    /// comparison would be ambiguous; run one tuner per dataset).
    pub fn new(spec: TuneSpec) -> Self {
        assert!(
            spec.grid.datasets.len() <= 1,
            "a tuner optimises one dataset at a time (grid sweeps {})",
            spec.grid.datasets.len()
        );
        let experiment =
            ExperimentSpec::new(spec.name.clone(), spec.base.clone(), spec.grid.clone());
        let points = experiment.points();
        let plan = plan_rungs(points.len(), spec.keep, spec.budget);
        Tuner { spec, points, plan }
    }

    /// The spec this tuner was built from.
    pub fn spec(&self) -> &TuneSpec {
        &self.spec
    }

    /// Every point of the original grid, in enumeration order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The planned rung ladder (sizes strictly decreasing; the final rung
    /// has shrink 1 unless the budget truncated the ladder early).
    pub fn plan(&self) -> &[RungPlan] {
        &self.plan
    }

    /// The distinct shrink factors the plan uses, ascending — callers can
    /// pre-generate one workload per fidelity before running.
    pub fn shrinks(&self) -> Vec<usize> {
        let mut shrinks: Vec<usize> = self.plan.iter().map(|r| r.shrink).collect();
        shrinks.sort_unstable();
        shrinks.dedup();
        shrinks
    }

    /// Runs the halving ladder over a report-backed objective. `eval`
    /// simulates one point at the given shrink factor and must be
    /// deterministic in `(point, shrink)`.
    ///
    /// # Panics
    ///
    /// Panics for objectives that cannot score a single report
    /// ([`Objective::ServeP99`]) — wire those through
    /// [`Self::run_scored`].
    pub fn run<F>(&self, runner: &Runner, eval: F) -> TuneOutcome
    where
        F: Fn(&SweepPoint, usize) -> ExecutionReport + Sync,
    {
        let objective = self.spec.objective;
        assert!(
            objective.scores_reports(),
            "objective {:?} needs an external scorer; use Tuner::run_scored",
            objective.name()
        );
        self.run_scored(runner, |point, shrink| {
            let report = eval(point, shrink);
            let score = objective.score(&point.config, &report);
            Evaluation { score, report: Some(report), metrics: Vec::new() }
        })
    }

    /// Runs the halving ladder over caller-scored evaluations — the
    /// general form behind [`Self::run`], and the entry point for
    /// objectives whose score comes from a larger simulation than one
    /// kernel run (the serve-p99 objective scores a serving replay).
    /// `eval` must be deterministic in `(point, shrink)`.
    pub fn run_scored<F>(&self, runner: &Runner, eval: F) -> TuneOutcome
    where
        F: Fn(&SweepPoint, usize) -> Evaluation + Sync,
    {
        self.run_tiered(runner, |point, ctx| eval(point, ctx.shrink))
    }

    /// Runs the halving ladder with full rung context — the entry point
    /// for *tiered* scorers that change how a point is priced per rung
    /// (e.g. the hybrid cost model: analytic estimates on screening rungs,
    /// the cycle oracle on the final rung). The baseline comparison is
    /// evaluated with `is_final = true` at the final rung's shrink, so a
    /// tiered scorer always judges the winner and the paper default with
    /// the same (most expensive) tier. `eval` must be deterministic in
    /// `(point, context)`.
    pub fn run_tiered<F>(&self, runner: &Runner, eval: F) -> TuneOutcome
    where
        F: Fn(&SweepPoint, RungContext) -> Evaluation + Sync,
    {
        let objective = self.spec.objective;
        let scope = self.scope();
        let mut candidates: Vec<usize> = (0..self.points.len()).collect();
        let mut records = Vec::new();
        let mut rungs: Vec<RungTrace> = Vec::new();
        let mut evaluations = 0usize;

        for (step, plan) in self.plan.iter().enumerate() {
            let context = RungContext {
                index: plan.index,
                shrink: plan.shrink,
                is_final: step + 1 == self.plan.len(),
            };
            let selected: Vec<&SweepPoint> = candidates.iter().map(|&i| &self.points[i]).collect();
            let results = runner.run(&selected, |_, point| eval(point, context));
            evaluations += selected.len();

            // Record each evaluation, then rank: ascending score, point
            // index breaking ties so the ranking is a pure function of the
            // scores.
            let mut ranked: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
            for (&index, evaluation) in candidates.iter().zip(&results) {
                let point = &self.points[index];
                let score =
                    if evaluation.score.is_finite() { evaluation.score } else { f64::INFINITY };
                ranked.push((index, score));
                records.push(evaluation_record(
                    format!("{}/rung{}", point.id, plan.index),
                    evaluation,
                    score,
                    objective,
                    point.params(),
                    &[
                        ("rung".into(), plan.index.to_string()),
                        ("shrink".into(), plan.shrink.to_string()),
                    ],
                ));
            }
            ranked.sort_by(|a, b| {
                a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });

            let next_size = self.plan.get(step + 1).map(|p| p.size).unwrap_or(1);
            let survivors: Vec<usize> =
                ranked.iter().take(next_size.min(ranked.len())).map(|&(i, _)| i).collect();
            let (best_index, best_score) = ranked[0];

            let mut summary = RunRecord::new(format!("{scope}/rung{}/summary", plan.index))
                .metric("evaluated", selected.len() as f64)
                .metric("survivors", survivors.len() as f64)
                .metric("shrink", plan.shrink as f64)
                .unit_metric("best_score", best_score, objective.unit());
            summary.params.push(("best".into(), self.points[best_index].id.clone()));
            summary.params.push(("objective".into(), objective.name().into()));
            records.push(summary);

            rungs.push(RungTrace {
                index: plan.index,
                shrink: plan.shrink,
                evaluated: selected.len(),
                survivors: survivors.clone(),
                best_index,
                best_score,
            });
            candidates = survivors;
        }

        let last = rungs.last().expect("at least one rung always runs");
        let final_shrink = last.shrink;
        let winner = self.points[last.best_index].clone();
        let winner_score = last.best_score;

        // Compare the winner against the paper default at the same fidelity.
        let baseline = self.baseline_point(&scope);
        let baseline_context =
            RungContext { index: last.index, shrink: final_shrink, is_final: true };
        let baseline_eval = eval(&baseline, baseline_context);
        let baseline_score =
            if baseline_eval.score.is_finite() { baseline_eval.score } else { f64::INFINITY };
        evaluations += 1;
        records.push(evaluation_record(
            format!("{scope}/baseline"),
            &baseline_eval,
            baseline_score,
            objective,
            baseline.params(),
            &[("shrink".into(), final_shrink.to_string())],
        ));

        let (best, best_score) = if winner_score <= baseline_score {
            (winner.clone(), winner_score)
        } else {
            (baseline.clone(), baseline_score)
        };

        let mut best_record = RunRecord::new(format!("{scope}/best_config"))
            .unit_metric("objective_score", best_score, objective.unit())
            .unit_metric("baseline_score", baseline_score, objective.unit())
            .metric("improvement_vs_default", improvement(baseline_score, best_score))
            .metric("evaluations", evaluations as f64)
            .metric("rungs", rungs.len() as f64)
            .metric("grid_points", self.points.len() as f64);
        best_record.params = best.params();
        best_record.params.push(("best".into(), best.id.clone()));
        best_record.params.push(("objective".into(), objective.name().into()));
        records.push(best_record);

        TuneOutcome {
            objective,
            winner,
            winner_score,
            baseline,
            baseline_score,
            best,
            best_score,
            rungs,
            evaluations,
            records,
        }
    }

    /// The run-ID scope: the tuner name plus the dataset, when one is set.
    fn scope(&self) -> String {
        let mut scope = self.spec.name.clone();
        if let Some(dataset) = self.spec.grid.datasets.first() {
            scope.push('/');
            scope.push_str(dataset);
        }
        scope
    }

    /// The paper-default configuration as a pseudo-point, carrying the same
    /// derived seed as every grid point so the comparison is seed-fair.
    fn baseline_point(&self, scope: &str) -> SweepPoint {
        let mut config = self.spec.base.clone();
        config.seed = self.points[0].config.seed;
        SweepPoint {
            index: self.points.len(),
            id: format!("{scope}/baseline"),
            dataset: self.spec.grid.datasets.first().cloned(),
            config,
        }
    }
}

/// Plans the rung ladder: sizes shrink by `keep` per rung down to one
/// survivor; fidelity doubles towards the end of that full ladder (its
/// last rung runs at full scale, its earliest rungs share the
/// [`MAX_SHRINK`] clamp). The ladder is then truncated to `budget` total
/// evaluations — rung 0 always runs — and truncated rungs *keep* the
/// shrink the full ladder assigned them, so a small budget buys a cheap
/// low-fidelity search rather than silently degenerating to an expensive
/// full-fidelity exhaustive pass.
fn plan_rungs(grid_points: usize, keep: f64, budget: usize) -> Vec<RungPlan> {
    let mut sizes = vec![grid_points.max(1)];
    while *sizes.last().expect("non-empty") > 1 {
        let current = *sizes.last().expect("non-empty");
        let next = ((current as f64) * keep).ceil() as usize;
        sizes.push(next.clamp(1, current - 1));
    }

    // Shrinks are assigned over the *full* ladder before any truncation.
    let full = sizes.len();
    let shrink_at = |index: usize| 1usize << (full - 1 - index).min(MAX_SHRINK.ilog2() as usize);

    let mut kept = Vec::new();
    let mut spent = 0usize;
    for (index, &size) in sizes.iter().enumerate() {
        if index > 0 && spent.saturating_add(size) > budget {
            break;
        }
        kept.push(RungPlan { index, size, shrink: shrink_at(index) });
        spent += size;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_halves_to_one_and_ends_at_full_fidelity() {
        let plan = plan_rungs(16, 0.5, usize::MAX);
        let sizes: Vec<usize> = plan.iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![16, 8, 4, 2, 1]);
        let shrinks: Vec<usize> = plan.iter().map(|r| r.shrink).collect();
        assert_eq!(shrinks, vec![8, 8, 4, 2, 1]);
        assert!(plan.windows(2).all(|w| w[0].size > w[1].size));
    }

    #[test]
    fn plan_respects_the_budget_but_always_runs_rung_zero() {
        let plan = plan_rungs(16, 0.5, 25);
        let sizes: Vec<usize> = plan.iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![16, 8], "16 + 8 = 24 fits, + 4 would exceed 25");

        // Truncated ladders keep the full ladder's cheap shrink factors —
        // a smaller budget must never buy a more expensive run.
        assert_eq!(plan.last().unwrap().shrink, 8, "truncation does not promote fidelity");
        let tiny_budget = plan_rungs(16, 0.5, 3);
        assert_eq!(tiny_budget.len(), 1, "rung 0 runs even over budget");
        assert_eq!(tiny_budget[0].shrink, 8, "a budget-truncated rung 0 stays cheap");
    }

    #[test]
    fn plan_for_one_point_is_a_single_full_fidelity_rung() {
        assert_eq!(plan_rungs(1, 0.5, usize::MAX), vec![RungPlan { index: 0, size: 1, shrink: 1 }]);
    }

    #[test]
    fn steeper_keep_fractions_cull_harder() {
        let plan = plan_rungs(27, 1.0 / 3.0, usize::MAX);
        let sizes: Vec<usize> = plan.iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![27, 9, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "one dataset at a time")]
    fn multi_dataset_grids_are_rejected() {
        let grid = SweepGrid::new().datasets(["cora", "facebook"]);
        Tuner::new(TuneSpec::new("t", ChipConfig::tile_16(), grid, Objective::Cycles));
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn degenerate_keep_fraction_is_rejected() {
        TuneSpec::new("t", ChipConfig::tile_16(), SweepGrid::new(), Objective::Cycles)
            .with_keep(1.0);
    }
}
