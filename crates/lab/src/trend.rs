//! Trend tracking across artifact runs: per-metric deltas between two
//! artifacts, so performance regressions become numbers instead of
//! eyeballed tables.
//!
//! [`diff`] matches two [`Artifact`]s record-by-record (by stable run ID)
//! and metric-by-metric (by name), producing a [`TrendReport`] of absolute
//! and relative deltas plus the metrics present on only one side — a
//! renamed or dropped metric is itself a change worth flagging. The `trend`
//! binary in `neura_bench` wraps this over artifact files or whole
//! `target/artifacts/` directories with a `--fail-above <pct>` threshold.

use std::path::Path;

use crate::report::{parse_json, Artifact};

/// One metric measured in both artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Run-record ID the metric belongs to.
    pub record: String,
    /// Metric name.
    pub metric: String,
    /// Value in the "before" artifact.
    pub before: f64,
    /// Value in the "after" artifact.
    pub after: f64,
}

impl MetricDelta {
    /// Absolute change (`after − before`).
    pub fn abs_delta(&self) -> f64 {
        self.after - self.before
    }

    /// Relative change in percent. Bit-identical values report exactly
    /// zero; a change away from a zero baseline has no meaningful relative
    /// size and reports infinity, so thresholds always catch it.
    pub fn rel_pct(&self) -> f64 {
        if self.before.to_bits() == self.after.to_bits() || self.before == self.after {
            0.0
        } else if self.before == 0.0 {
            f64::INFINITY
        } else {
            (self.after - self.before) / self.before.abs() * 100.0
        }
    }

    /// Whether the metric changed at all.
    pub fn changed(&self) -> bool {
        self.before != self.after
    }
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrendReport {
    /// Metrics present in both artifacts, in "before" emission order.
    pub deltas: Vec<MetricDelta>,
    /// `record/metric` paths present only in the "before" artifact.
    pub only_in_before: Vec<String>,
    /// `record/metric` paths present only in the "after" artifact.
    pub only_in_after: Vec<String>,
    /// Structural mismatches worth surfacing (bin or scale differences).
    pub warnings: Vec<String>,
}

impl TrendReport {
    /// The deltas whose value actually changed.
    pub fn changed(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.changed()).collect()
    }

    /// Largest absolute relative change in percent (0 when nothing
    /// changed; infinite when a metric moved away from a zero baseline).
    pub fn max_abs_rel_pct(&self) -> f64 {
        self.deltas.iter().map(|d| d.rel_pct().abs()).fold(0.0, f64::max)
    }

    /// Whether the two artifacts carry identical metrics with identical
    /// values.
    pub fn is_identical(&self) -> bool {
        self.only_in_before.is_empty()
            && self.only_in_after.is_empty()
            && self.deltas.iter().all(|d| !d.changed())
    }

    /// Whether the comparison crosses a failure threshold: some relative
    /// delta exceeds `pct` percent in magnitude, or a metric exists on only
    /// one side (a vanished metric is a regression the threshold cannot
    /// measure, so it always counts).
    pub fn exceeds(&self, pct: f64) -> bool {
        !self.only_in_before.is_empty()
            || !self.only_in_after.is_empty()
            || self.max_abs_rel_pct() > pct
    }
}

/// Compares two artifacts metric-by-metric.
pub fn diff(before: &Artifact, after: &Artifact) -> TrendReport {
    let mut report = TrendReport::default();
    if before.schema != after.schema {
        report.warnings.push(format!(
            "comparing artifacts of different schemas ({:?} vs {:?})",
            before.schema, after.schema
        ));
    }
    if before.bin != after.bin {
        report.warnings.push(format!(
            "comparing artifacts of different binaries ({:?} vs {:?})",
            before.bin, after.bin
        ));
    }
    if before.scale_mult != after.scale_mult {
        report.warnings.push(format!(
            "comparing different scale multipliers ({} vs {}) — deltas mix fidelities",
            before.scale_mult, after.scale_mult
        ));
    }
    for record in &before.records {
        let counterpart = after.record(&record.id);
        for metric in &record.metrics {
            match counterpart.and_then(|r| r.metric_value(&metric.name)) {
                Some(value) => report.deltas.push(MetricDelta {
                    record: record.id.clone(),
                    metric: metric.name.clone(),
                    before: metric.value,
                    after: value,
                }),
                None => report.only_in_before.push(format!("{}/{}", record.id, metric.name)),
            }
        }
    }
    for record in &after.records {
        let counterpart = before.record(&record.id);
        for metric in &record.metrics {
            if counterpart.and_then(|r| r.metric_value(&metric.name)).is_none() {
                report.only_in_after.push(format!("{}/{}", record.id, metric.name));
            }
        }
    }
    report
}

/// The worst-window p99s a timeline artifact carries: one
/// `(scope, worst_window_p99_ms)` pair per `{scope}/timeline` summary
/// record, in emission order. Empty for plain run artifacts, so callers
/// can use it to print a timeline-specific headline only when there is
/// one.
pub fn worst_window_p99s(artifact: &Artifact) -> Vec<(String, f64)> {
    artifact
        .records
        .iter()
        .filter_map(|r| {
            let scope = r.id.strip_suffix("/timeline")?;
            r.metric_value("worst_window_p99_ms").map(|v| (scope.to_string(), v))
        })
        .collect()
}

/// The worst-window stall fractions a chip-profile artifact carries: one
/// `(scope, worst_window_stall_frac)` pair per `{scope}/profile` summary
/// record, in emission order. Empty for run and timeline artifacts, so
/// callers can print a profile-specific headline only when there is one.
pub fn worst_window_stall_fracs(artifact: &Artifact) -> Vec<(String, f64)> {
    artifact
        .records
        .iter()
        .filter_map(|r| {
            let scope = r.id.strip_suffix("/profile")?;
            r.metric_value("worst_window_stall_frac").map(|v| (scope.to_string(), v))
        })
        .collect()
}

/// Reads and parses one artifact file.
///
/// # Errors
///
/// Returns a description when the file cannot be read, is not JSON, or does
/// not carry the artifact schema.
pub fn load_artifact(path: &Path) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse_json(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    Artifact::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunRecord;

    fn artifact(cycles: f64, with_extra: bool) -> Artifact {
        let mut a = Artifact::new("demo", 1);
        let mut record =
            RunRecord::new("demo/a").metric("total_cycles", cycles).metric("gops", 3.25);
        if with_extra {
            record = record.metric("extra", 1.0);
        }
        a.push(record);
        a
    }

    #[test]
    fn self_diff_is_identical_and_zero() {
        let a = artifact(1000.0, false);
        let report = diff(&a, &a);
        assert!(report.is_identical());
        assert_eq!(report.max_abs_rel_pct(), 0.0);
        assert!(!report.exceeds(0.0));
        assert_eq!(report.deltas.len(), 2);
        assert!(report.changed().is_empty());
    }

    #[test]
    fn deltas_report_absolute_and_relative_change() {
        let report = diff(&artifact(1000.0, false), &artifact(1100.0, false));
        let d = &report.deltas[0];
        assert_eq!(d.metric, "total_cycles");
        assert!((d.abs_delta() - 100.0).abs() < 1e-12);
        assert!((d.rel_pct() - 10.0).abs() < 1e-12);
        assert!((report.max_abs_rel_pct() - 10.0).abs() < 1e-12);
        assert!(report.exceeds(5.0));
        assert!(!report.exceeds(15.0));
        assert_eq!(report.changed().len(), 1, "gops did not move");
    }

    #[test]
    fn missing_metrics_are_flagged_on_both_sides() {
        let report = diff(&artifact(1.0, true), &artifact(1.0, false));
        assert_eq!(report.only_in_before, vec!["demo/a/extra".to_string()]);
        assert!(report.only_in_after.is_empty());
        assert!(report.exceeds(1e9), "a vanished metric always fails a threshold");

        let report = diff(&artifact(1.0, false), &artifact(1.0, true));
        assert_eq!(report.only_in_after, vec!["demo/a/extra".to_string()]);
        assert!(!report.is_identical());
    }

    #[test]
    fn zero_baseline_changes_report_infinite_relative_delta() {
        let mut before = Artifact::new("demo", 1);
        before.push(RunRecord::new("demo/a").metric("m", 0.0));
        let mut after = Artifact::new("demo", 1);
        after.push(RunRecord::new("demo/a").metric("m", 2.0));
        let report = diff(&before, &after);
        assert!(report.deltas[0].rel_pct().is_infinite());
        assert!(report.exceeds(1e12));
    }

    #[test]
    fn bin_and_scale_mismatches_warn() {
        let before = artifact(1.0, false);
        let mut after = Artifact::new("other", 32);
        after.push(RunRecord::new("demo/a").metric("total_cycles", 1.0).metric("gops", 3.25));
        let report = diff(&before, &after);
        assert_eq!(report.warnings.len(), 2);
        assert!(report.is_identical(), "warnings do not make values differ");
    }

    #[test]
    fn schema_mismatches_warn_and_timeline_summaries_surface() {
        use crate::report::TIMELINE_SCHEMA;
        let mut timeline = Artifact::new("serve", 1).with_schema(TIMELINE_SCHEMA);
        timeline.push(RunRecord::new("flash/timeline").metric("windows", 50.0).unit_metric(
            "worst_window_p99_ms",
            420.0,
            "ms",
        ));
        timeline.push(RunRecord::new("flash/window/000").metric("served", 10.0));
        assert_eq!(worst_window_p99s(&timeline), vec![("flash".to_string(), 420.0)]);
        assert!(worst_window_p99s(&artifact(1.0, false)).is_empty());

        let report = diff(&artifact(1.0, false), &timeline);
        assert!(
            report.warnings.iter().any(|w| w.contains("different schemas")),
            "schema mismatch warns: {:?}",
            report.warnings
        );
        let round_trip = Artifact::from_json(&timeline.to_json()).unwrap();
        assert_eq!(round_trip, timeline, "timeline schema round-trips");
    }

    #[test]
    fn load_artifact_round_trips_and_reports_errors() {
        let dir = std::env::temp_dir().join(format!("neura_lab_trend_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.json");
        artifact(5.0, false).write(&path).unwrap();
        let loaded = load_artifact(&path).unwrap();
        assert_eq!(loaded, artifact(5.0, false));
        assert!(load_artifact(&dir.join("missing.json")).is_err());
        std::fs::write(dir.join("bad.json"), "not json").unwrap();
        assert!(load_artifact(&dir.join("bad.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
