//! A scoped-thread work-stealing executor for sweep points.
//!
//! Workers share a single atomic cursor over the item list and claim the
//! next index as soon as they finish their current one, so long-running
//! points (the cycle-level simulations) do not serialise behind short ones.
//! Results are written into a slot vector indexed by item position, which
//! makes the collected output *spec-ordered and deterministic regardless of
//! the thread count* — the property the artifact byte-identity tests pin
//! down. Uses only `std` (`thread::scope` + atomics), no external deps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::spec::{ExperimentSpec, SweepPoint};

/// Environment variable overriding the worker count used by
/// [`Runner::from_env`].
pub const THREADS_ENV: &str = "NEURA_LAB_THREADS";

/// The parallel executor. Holds only the worker count; each [`Runner::run`]
/// call spawns a fresh scoped pool.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Runner { threads: threads.max(1) }
    }

    /// Creates a runner sized from [`THREADS_ENV`] when set, otherwise from
    /// [`std::thread::available_parallelism`].
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but not a positive integer, for the
    /// same reason the scale-multiplier knob does: a typo must not silently
    /// pick a different parallelism than the caller intended.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Err(_) => {
                let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                Runner::new(threads)
            }
            Ok(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Runner::new(n),
                _ => panic!("{THREADS_ENV}={raw:?} is not a positive integer"),
            },
        }
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning the results in item
    /// order. `f` receives the item index alongside the item.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker closure (the scope joins all
    /// threads first, so no work is silently lost).
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let result = f(index, item);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }));
            }
            let mut panicked = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    panicked = Some(payload);
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index claimed exactly once")
            })
            .collect()
    }

    /// Runs every point of a spec through `f`, returning `(point, result)`
    /// pairs in the spec's enumeration order.
    pub fn run_spec<R, F>(&self, spec: &ExperimentSpec, f: F) -> Vec<(SweepPoint, R)>
    where
        R: Send,
        F: Fn(&SweepPoint) -> R + Sync,
    {
        let points = spec.points();
        let results = self.run(&points, |_, point| f(point));
        points.into_iter().zip(results).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepGrid;
    use neura_chip::config::ChipConfig;

    #[test]
    fn results_are_item_ordered_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = Runner::new(threads).run(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = Runner::new(4).run(&[] as &[u8], |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn run_spec_pairs_points_with_results_in_spec_order() {
        let spec = crate::spec::ExperimentSpec::new(
            "t",
            ChipConfig::tile_16(),
            SweepGrid::new().mmh_tiles([1, 2, 4, 8]),
        );
        let pairs = Runner::new(3).run_spec(&spec, |p| p.config.mmh_tile as u32);
        let tiles: Vec<u32> = pairs.iter().map(|(_, r)| *r).collect();
        assert_eq!(tiles, vec![1, 2, 4, 8]);
        for (i, (point, _)) in pairs.iter().enumerate() {
            assert_eq!(point.index, i);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Runner::new(2).run(&[1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
    }
}
