//! Golden-value regression checks against the paper's headline numbers.
//!
//! A [`Golden`] pins one artifact metric to an expected value with a
//! relative tolerance. The expected values are the *model's* outputs at
//! paper scale (pinned when the golden was recorded), with the paper's
//! published number carried alongside for context — the check answers "did
//! the reproduction regress", while the `paper` column keeps the published
//! target visible in every report.
//!
//! Checks run in one of two modes: [`Mode::Strict`] (paper scale — the
//! tolerance applies) and [`Mode::Smoke`] (any `NEURA_BENCH_SCALE_MULT`
//! shrink — the numbers are meaningless at smoke scale, so the check only
//! asserts the metric exists, is finite and is positive).

use crate::report::{fmt, print_table, Artifact};

/// One pinned expectation: `record`/`metric` inside an artifact must equal
/// `expected` within `rel_tol` (relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Golden {
    /// ID of the record holding the metric.
    pub record: &'static str,
    /// Metric name within the record.
    pub metric: &'static str,
    /// Pinned model output at paper scale.
    pub expected: f64,
    /// Relative tolerance (`0.02` = ±2 %).
    pub rel_tol: f64,
    /// The paper's published value, for context in reports.
    pub paper: Option<f64>,
}

/// How strictly golden values are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Paper scale: values must match `expected` within `rel_tol`.
    Strict,
    /// Scaled-down smoke runs: only presence / finiteness / positivity.
    Smoke,
}

impl Mode {
    /// Picks the mode from the effective scale multiplier: strict at paper
    /// scale (multiplier 1), smoke otherwise.
    pub fn from_scale_mult(mult: usize) -> Mode {
        if mult <= 1 {
            Mode::Strict
        } else {
            Mode::Smoke
        }
    }
}

/// The outcome of checking one [`Golden`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The expectation that was checked.
    pub golden: Golden,
    /// The value found in the artifact, if present.
    pub actual: Option<f64>,
    /// Whether the check passed in the mode it ran under.
    pub passed: bool,
}

impl Outcome {
    fn detail(&self, mode: Mode) -> String {
        match (self.actual, mode) {
            (None, _) => "metric missing".to_string(),
            (Some(a), Mode::Smoke) => {
                if self.passed {
                    format!("present ({})", fmt(a, 3))
                } else {
                    format!("not finite/positive ({a})")
                }
            }
            (Some(a), Mode::Strict) => {
                let rel = (a - self.golden.expected).abs() / self.golden.expected.abs();
                format!("Δ {:.2}% (tol {:.0}%)", rel * 100.0, self.golden.rel_tol * 100.0)
            }
        }
    }
}

/// Result of checking a golden table against an artifact.
#[derive(Debug, Clone)]
pub struct GoldenReport {
    /// The mode the checks ran under.
    pub mode: Mode,
    /// One outcome per golden, in table order.
    pub outcomes: Vec<Outcome>,
}

impl GoldenReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.passed).count()
    }

    /// Prints the per-metric pass/fail table.
    pub fn print(&self, title: &str) {
        let mode = match self.mode {
            Mode::Strict => "strict, paper scale",
            Mode::Smoke => "smoke, scaled run — presence only",
        };
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.golden.record.to_string(),
                    o.golden.metric.to_string(),
                    o.actual.map(|a| fmt(a, 3)).unwrap_or_else(|| "-".into()),
                    fmt(o.golden.expected, 3),
                    o.golden.paper.map(|p| fmt(p, 2)).unwrap_or_else(|| "-".into()),
                    if o.passed { "pass".into() } else { "FAIL".into() },
                    o.detail(self.mode),
                ]
            })
            .collect();
        print_table(
            &format!("{title} — golden checks ({mode})"),
            &["Record", "Metric", "Actual", "Expected", "Paper", "Status", "Detail"],
            &rows,
        );
    }

    /// Prints the table and terminates the process with exit code 1 when any
    /// check failed — the hook the artifact binaries call last.
    pub fn print_and_enforce(&self, title: &str) {
        self.print(title);
        if !self.passed() {
            eprintln!("{}: {} golden check(s) failed", title, self.failures());
            std::process::exit(1);
        }
    }
}

/// Checks every golden against the artifact.
pub fn check(artifact: &Artifact, goldens: &[Golden], mode: Mode) -> GoldenReport {
    let outcomes = goldens
        .iter()
        .map(|&golden| {
            let actual = artifact.record(golden.record).and_then(|r| r.metric_value(golden.metric));
            let passed = match (actual, mode) {
                (None, _) => false,
                (Some(a), Mode::Smoke) => a.is_finite() && a > 0.0,
                (Some(a), Mode::Strict) => {
                    a.is_finite()
                        && (a - golden.expected).abs() <= golden.rel_tol * golden.expected.abs()
                }
            };
            Outcome { golden, actual, passed }
        })
        .collect();
    GoldenReport { mode, outcomes }
}

/// Turns a display name into a stable slug used in record IDs and metric
/// names: lower-case, alphanumeric runs joined by single dashes
/// (`"Xeon E5 (MKL)"` → `"xeon-e5-mkl"`).
pub fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_dash && !out.is_empty() {
                out.push('-');
            }
            pending_dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_dash = true;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The checked-in golden tables for the paper's headline artifacts.
//
// `expected` pins the model's paper-scale output (recorded 2026-07-31);
// `paper` is the value published in conf_isca_ShivdikarAJJAJKK24. The ±2 %
// tolerance absorbs the 2-decimal rounding the values were recorded at while
// still catching any real change in the models.
// ---------------------------------------------------------------------------

const TOL: f64 = 0.02;

/// Figure 16 — geometric-mean SpGEMM speedup of Tile-16 over each platform.
pub fn fig16_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig16/geomean", "xeon-e5-mkl", 16.93, Some(22.1)),
        gm("fig16/geomean", "nvidia-h100-cusparse", 12.05, Some(17.1)),
        gm("fig16/geomean", "nvidia-h100-cusp", 9.39, Some(13.3)),
        gm("fig16/geomean", "amd-mi100-hipsparse", 11.80, Some(16.7)),
        gm("fig16/geomean", "outerspace", 6.86, Some(6.6)),
        gm("fig16/geomean", "sparch", 2.26, Some(2.4)),
        gm("fig16/geomean", "gamma", 1.29, Some(1.5)),
    ];
    G
}

/// Figure 17 — average GCN-layer speedup of Tile-16 over each GNN platform.
#[allow(clippy::approx_constant)] // 3.14 is the measured HyGCN speedup, not π
pub fn fig17_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig17/average", "engn", 1.85, Some(1.29)),
        gm("fig17/average", "grow", 2.83, Some(1.58)),
        gm("fig17/average", "hygcn", 3.14, Some(1.69)),
        gm("fig17/average", "flowgnn", 1.66, Some(1.30)),
    ];
    G
}

/// Table 5 — modeled SpGEMM throughput of the three NeuraChip configurations
/// and the Tile-16 speedup geomeans over the CPU and the strongest prior
/// accelerator.
pub fn table5_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("table5/neurachip-tile-4", "mean_gops", 5.50, Some(5.15)),
        gm("table5/neurachip-tile-16", "mean_gops", 23.71, Some(24.75)),
        gm("table5/neurachip-tile-64", "mean_gops", 28.65, Some(30.69)),
        gm("table5/xeon-e5-mkl", "tile16_speedup_geomean", 16.93, Some(22.1)),
        gm("table5/gamma", "tile16_speedup_geomean", 1.29, Some(1.5)),
    ];
    G
}

const fn gm(
    record: &'static str,
    metric: &'static str,
    expected: f64,
    paper: Option<f64>,
) -> Golden {
    Golden { record, metric, expected, rel_tol: TOL, paper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunRecord;

    fn artifact_with(value: f64) -> Artifact {
        let mut artifact = Artifact::new("t", 1);
        artifact.push(RunRecord::new("t/r").metric("m", value));
        artifact
    }

    const PIN: &[Golden] =
        &[Golden { record: "t/r", metric: "m", expected: 10.0, rel_tol: 0.05, paper: None }];

    #[test]
    fn strict_mode_applies_relative_tolerance() {
        assert!(check(&artifact_with(10.4), PIN, Mode::Strict).passed());
        assert!(!check(&artifact_with(10.6), PIN, Mode::Strict).passed());
        assert!(!check(&artifact_with(f64::NAN), PIN, Mode::Strict).passed());
    }

    #[test]
    fn smoke_mode_only_requires_a_finite_positive_value() {
        assert!(check(&artifact_with(0.001), PIN, Mode::Smoke).passed());
        assert!(!check(&artifact_with(-1.0), PIN, Mode::Smoke).passed());
    }

    #[test]
    fn missing_metric_fails_in_both_modes() {
        let empty = Artifact::new("t", 1);
        assert_eq!(check(&empty, PIN, Mode::Strict).failures(), 1);
        assert_eq!(check(&empty, PIN, Mode::Smoke).failures(), 1);
    }

    #[test]
    fn mode_selection_follows_scale_multiplier() {
        assert_eq!(Mode::from_scale_mult(1), Mode::Strict);
        assert_eq!(Mode::from_scale_mult(32), Mode::Smoke);
    }

    #[test]
    fn slugify_matches_platform_names() {
        assert_eq!(slugify("Xeon E5 (MKL)"), "xeon-e5-mkl");
        assert_eq!(slugify("NVIDIA H100 (cuSPARSE)"), "nvidia-h100-cusparse");
        assert_eq!(slugify("EnGN"), "engn");
        assert_eq!(slugify("  --weird--  "), "weird");
    }

    #[test]
    fn golden_tables_are_well_formed() {
        for table in [fig16_goldens(), fig17_goldens(), table5_goldens()] {
            for g in table {
                assert!(g.expected > 0.0 && g.rel_tol > 0.0, "{}/{}", g.record, g.metric);
            }
        }
    }
}
