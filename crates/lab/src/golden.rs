//! Golden-value regression checks against the paper's headline numbers.
//!
//! A [`Golden`] pins one artifact metric to an expected value with a
//! relative tolerance. The expected values are the *model's* outputs at
//! paper scale (pinned when the golden was recorded), with the paper's
//! published number carried alongside for context — the check answers "did
//! the reproduction regress", while the `paper` column keeps the published
//! target visible in every report.
//!
//! Checks run in one of two modes: [`Mode::Strict`] (paper scale — the
//! tolerance applies) and [`Mode::Smoke`] (any `NEURA_BENCH_SCALE_MULT`
//! shrink — the numbers are meaningless at smoke scale, so the check only
//! asserts the metric exists, is finite and is positive).

use crate::report::{fmt, print_table, Artifact};

/// One pinned expectation: `record`/`metric` inside an artifact must equal
/// `expected` within `rel_tol` (relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Golden {
    /// ID of the record holding the metric.
    pub record: &'static str,
    /// Metric name within the record.
    pub metric: &'static str,
    /// Pinned model output at paper scale.
    pub expected: f64,
    /// Relative tolerance (`0.02` = ±2 %).
    pub rel_tol: f64,
    /// The paper's published value, for context in reports.
    pub paper: Option<f64>,
}

/// How strictly golden values are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Paper scale: values must match `expected` within `rel_tol`.
    Strict,
    /// Scaled-down smoke runs: only presence / finiteness / positivity.
    Smoke,
}

impl Mode {
    /// Picks the mode from the effective scale multiplier: strict at paper
    /// scale (multiplier 1), smoke otherwise.
    pub fn from_scale_mult(mult: usize) -> Mode {
        if mult <= 1 {
            Mode::Strict
        } else {
            Mode::Smoke
        }
    }
}

/// The outcome of checking one [`Golden`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The expectation that was checked.
    pub golden: Golden,
    /// The value found in the artifact, if present.
    pub actual: Option<f64>,
    /// Whether the check passed in the mode it ran under.
    pub passed: bool,
}

impl Outcome {
    fn detail(&self, mode: Mode) -> String {
        match (self.actual, mode) {
            (None, _) => "metric missing".to_string(),
            (Some(a), Mode::Smoke) => {
                if self.passed {
                    format!("present ({})", fmt(a, 3))
                } else {
                    format!("not finite/positive ({a})")
                }
            }
            (Some(a), Mode::Strict) => {
                let rel = (a - self.golden.expected).abs() / self.golden.expected.abs();
                format!("Δ {:.2}% (tol {:.0}%)", rel * 100.0, self.golden.rel_tol * 100.0)
            }
        }
    }
}

/// Result of checking a golden table against an artifact.
#[derive(Debug, Clone)]
pub struct GoldenReport {
    /// The mode the checks ran under.
    pub mode: Mode,
    /// One outcome per golden, in table order.
    pub outcomes: Vec<Outcome>,
}

impl GoldenReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.passed).count()
    }

    /// Prints the per-metric pass/fail table.
    pub fn print(&self, title: &str) {
        let mode = match self.mode {
            Mode::Strict => "strict, paper scale",
            Mode::Smoke => "smoke, scaled run — presence only",
        };
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.golden.record.to_string(),
                    o.golden.metric.to_string(),
                    o.actual.map(|a| fmt(a, 3)).unwrap_or_else(|| "-".into()),
                    fmt(o.golden.expected, 3),
                    o.golden.paper.map(|p| fmt(p, 2)).unwrap_or_else(|| "-".into()),
                    if o.passed { "pass".into() } else { "FAIL".into() },
                    o.detail(self.mode),
                ]
            })
            .collect();
        print_table(
            &format!("{title} — golden checks ({mode})"),
            &["Record", "Metric", "Actual", "Expected", "Paper", "Status", "Detail"],
            &rows,
        );
    }

    /// Prints the table and terminates the process with exit code 1 when any
    /// check failed — the hook the artifact binaries call last.
    pub fn print_and_enforce(&self, title: &str) {
        self.print(title);
        enforce(title, "golden check", self.failures());
    }
}

/// The shared enforcement contract of every golden report: a non-zero
/// failure count prints one summary line on stderr and exits 1.
fn enforce(title: &str, kind: &str, failures: usize) {
    if failures > 0 {
        eprintln!("{title}: {failures} {kind}(s) failed");
        std::process::exit(1);
    }
}

/// A pinned *ordering* expectation: one metric, read from a list of
/// records, must be non-increasing across the list at paper scale. Used
/// where the paper's quantity of interest is a ranking (Table 1's bloat
/// severity across datasets) rather than a value.
#[derive(Debug, Clone, Copy)]
pub struct OrderGolden {
    /// Metric name read from every record.
    pub metric: &'static str,
    /// Record IDs, pinned in descending order of the metric.
    pub records: &'static [&'static str],
}

/// The outcome of one position in an [`OrderGolden`] check.
#[derive(Debug, Clone)]
pub struct OrderOutcome {
    /// The record checked at this position.
    pub record: &'static str,
    /// The metric value found, if present.
    pub actual: Option<f64>,
    /// Whether this position passed (present/finite/positive in smoke mode;
    /// additionally not greater than its predecessor in strict mode).
    pub passed: bool,
}

/// Result of checking an [`OrderGolden`] against an artifact.
#[derive(Debug, Clone)]
pub struct OrderReport {
    /// The mode the check ran under.
    pub mode: Mode,
    /// The metric that was compared.
    pub metric: &'static str,
    /// One outcome per pinned record, in pinned order.
    pub outcomes: Vec<OrderOutcome>,
}

impl OrderReport {
    /// Whether every position passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Number of failed positions.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.passed).count()
    }

    /// Prints the per-position pass/fail table.
    pub fn print(&self, title: &str) {
        let mode = match self.mode {
            Mode::Strict => "strict, paper scale — descending order",
            Mode::Smoke => "smoke, scaled run — presence only",
        };
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                vec![
                    format!("{}", i + 1),
                    o.record.to_string(),
                    o.actual.map(|a| fmt(a, 3)).unwrap_or_else(|| "-".into()),
                    if o.passed { "pass".into() } else { "FAIL".into() },
                ]
            })
            .collect();
        print_table(
            &format!("{title} — {} ordering ({mode})", self.metric),
            &["Rank", "Record", "Actual", "Status"],
            &rows,
        );
    }

    /// Prints the table and terminates the process with exit code 1 when
    /// any position failed — same contract as
    /// [`GoldenReport::print_and_enforce`].
    pub fn print_and_enforce(&self, title: &str) {
        self.print(title);
        enforce(title, "ordering check", self.failures());
    }
}

/// Checks a pinned ordering against the artifact. In strict mode each
/// record's metric must be present, finite and no greater than *every*
/// predecessor's (ties allowed) — the comparison runs against the minimum
/// seen so far, so a single out-of-order spike does not mask later
/// violations. In smoke mode only presence, finiteness and positivity are
/// required.
pub fn check_order(artifact: &Artifact, order: &OrderGolden, mode: Mode) -> OrderReport {
    let mut min_so_far: Option<f64> = None;
    let outcomes = order
        .records
        .iter()
        .map(|&record| {
            let actual = artifact.record(record).and_then(|r| r.metric_value(order.metric));
            let passed = match (actual, mode) {
                (None, _) => false,
                (Some(a), Mode::Smoke) => a.is_finite() && a > 0.0,
                (Some(a), Mode::Strict) => {
                    a.is_finite() && min_so_far.map(|m| a <= m).unwrap_or(true)
                }
            };
            // Only finite values participate in the running minimum — a NaN
            // or -inf position fails on its own without cascading failures
            // into every later (healthy) position.
            if let Some(a) = actual {
                if a.is_finite() && min_so_far.map(|m| a < m).unwrap_or(true) {
                    min_so_far = Some(a);
                }
            }
            OrderOutcome { record, actual, passed }
        })
        .collect();
    OrderReport { mode, metric: order.metric, outcomes }
}

/// Checks every golden against the artifact.
pub fn check(artifact: &Artifact, goldens: &[Golden], mode: Mode) -> GoldenReport {
    let outcomes = goldens
        .iter()
        .map(|&golden| {
            let actual = artifact.record(golden.record).and_then(|r| r.metric_value(golden.metric));
            let passed = match (actual, mode) {
                (None, _) => false,
                (Some(a), Mode::Smoke) => a.is_finite() && a > 0.0,
                (Some(a), Mode::Strict) => {
                    a.is_finite()
                        && (a - golden.expected).abs() <= golden.rel_tol * golden.expected.abs()
                }
            };
            Outcome { golden, actual, passed }
        })
        .collect();
    GoldenReport { mode, outcomes }
}

/// Turns a display name into a stable slug used in record IDs and metric
/// names: lower-case, alphanumeric runs joined by single dashes
/// (`"Xeon E5 (MKL)"` → `"xeon-e5-mkl"`).
pub fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_dash && !out.is_empty() {
                out.push('-');
            }
            pending_dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_dash = true;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The checked-in golden tables for the paper's headline artifacts.
//
// `expected` pins the model's paper-scale output (recorded 2026-07-31);
// `paper` is the value published in conf_isca_ShivdikarAJJAJKK24. The ±2 %
// tolerance absorbs the 2-decimal rounding the values were recorded at while
// still catching any real change in the models.
// ---------------------------------------------------------------------------

const TOL: f64 = 0.02;

/// Figure 16 — geometric-mean SpGEMM speedup of Tile-16 over each platform.
pub fn fig16_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig16/geomean", "xeon-e5-mkl", 16.93, Some(22.1)),
        gm("fig16/geomean", "nvidia-h100-cusparse", 12.05, Some(17.1)),
        gm("fig16/geomean", "nvidia-h100-cusp", 9.39, Some(13.3)),
        gm("fig16/geomean", "amd-mi100-hipsparse", 11.80, Some(16.7)),
        gm("fig16/geomean", "outerspace", 6.86, Some(6.6)),
        gm("fig16/geomean", "sparch", 2.26, Some(2.4)),
        gm("fig16/geomean", "gamma", 1.29, Some(1.5)),
    ];
    G
}

/// Figure 17 — average GCN-layer speedup of Tile-16 over each GNN platform.
#[allow(clippy::approx_constant)] // 3.14 is the measured HyGCN speedup, not π
pub fn fig17_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig17/average", "engn", 1.85, Some(1.29)),
        gm("fig17/average", "grow", 2.83, Some(1.58)),
        gm("fig17/average", "hygcn", 3.14, Some(1.69)),
        gm("fig17/average", "flowgnn", 1.66, Some(1.30)),
    ];
    G
}

/// Table 5 — modeled SpGEMM throughput of the three NeuraChip configurations
/// and the Tile-16 speedup geomeans over the CPU and the strongest prior
/// accelerator.
pub fn table5_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("table5/neurachip-tile-4", "mean_gops", 5.50, Some(5.15)),
        gm("table5/neurachip-tile-16", "mean_gops", 23.71, Some(24.75)),
        gm("table5/neurachip-tile-64", "mean_gops", 28.65, Some(30.69)),
        gm("table5/xeon-e5-mkl", "tile16_speedup_geomean", 16.93, Some(22.1)),
        gm("table5/gamma", "tile16_speedup_geomean", 1.29, Some(1.5)),
    ];
    G
}

/// Figure 14 — mean CPI of the MMH1/2/4/8 instruction variants on the Cora
/// analog. The absolute cycle counts differ from the paper's (the analog
/// workload is scaled), but the monotone increase with tile height — the
/// figure's message — is pinned along with the values.
pub fn fig14_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig14/cora/mmh1", "cpi", 501.62, Some(91.0)),
        gm("fig14/cora/mmh2", "cpi", 574.78, Some(123.0)),
        gm("fig14/cora/mmh4", "cpi", 698.19, Some(295.0)),
        gm("fig14/cora/mmh8", "cpi", 750.96, Some(877.0)),
    ];
    G
}

/// Figure 15 — mean HACC completion latency under barrier (HACC-BE) vs
/// rolling (HACC-RE) eviction. As in the paper, barrier eviction holds
/// partial products resident longer (higher mean latency).
pub fn fig15_goldens() -> &'static [Golden] {
    const G: &[Golden] = &[
        gm("fig15/cora/barrier", "avg_hacc_latency", 6.80, Some(872.0)),
        gm("fig15/cora/rolling", "avg_hacc_latency", 6.02, Some(347.0)),
    ];
    G
}

/// Table 1 — the SpGEMM suite ranked by measured memory bloat (descending),
/// pinned at paper scale (recorded 2026-07-31). The paper's point is which
/// graphs bloat worst, so the *ordering* is the reproduced quantity; the
/// FEM-style matrices (poisson3Da, filter3D, cop20k_A) lead and the
/// road/mesh graphs (mario002, roadNet-CA) trail, matching Table 1.
pub fn table1_bloat_order() -> OrderGolden {
    OrderGolden {
        metric: "bloat_percent",
        records: &[
            "table1/poisson3Da",
            "table1/filter3D",
            "table1/cop20k_A",
            "table1/2cubes_sphere",
            "table1/offshore",
            "table1/cage12",
            "table1/facebook",
            "table1/wiki-Vote",
            "table1/amazon0312",
            "table1/web-Google",
            "table1/email-Enron",
            "table1/cit-Patents",
            "table1/ca-CondMat",
            "table1/webbase-1M",
            "table1/patents_main",
            "table1/p2p-Gnutella31",
            "table1/scircuit",
            "table1/m133-b3",
            "table1/mario002",
            "table1/roadNet-CA",
        ],
    }
}

const fn gm(
    record: &'static str,
    metric: &'static str,
    expected: f64,
    paper: Option<f64>,
) -> Golden {
    Golden { record, metric, expected, rel_tol: TOL, paper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunRecord;

    fn artifact_with(value: f64) -> Artifact {
        let mut artifact = Artifact::new("t", 1);
        artifact.push(RunRecord::new("t/r").metric("m", value));
        artifact
    }

    const PIN: &[Golden] =
        &[Golden { record: "t/r", metric: "m", expected: 10.0, rel_tol: 0.05, paper: None }];

    #[test]
    fn strict_mode_applies_relative_tolerance() {
        assert!(check(&artifact_with(10.4), PIN, Mode::Strict).passed());
        assert!(!check(&artifact_with(10.6), PIN, Mode::Strict).passed());
        assert!(!check(&artifact_with(f64::NAN), PIN, Mode::Strict).passed());
    }

    #[test]
    fn smoke_mode_only_requires_a_finite_positive_value() {
        assert!(check(&artifact_with(0.001), PIN, Mode::Smoke).passed());
        assert!(!check(&artifact_with(-1.0), PIN, Mode::Smoke).passed());
    }

    #[test]
    fn missing_metric_fails_in_both_modes() {
        let empty = Artifact::new("t", 1);
        assert_eq!(check(&empty, PIN, Mode::Strict).failures(), 1);
        assert_eq!(check(&empty, PIN, Mode::Smoke).failures(), 1);
    }

    #[test]
    fn mode_selection_follows_scale_multiplier() {
        assert_eq!(Mode::from_scale_mult(1), Mode::Strict);
        assert_eq!(Mode::from_scale_mult(32), Mode::Smoke);
    }

    #[test]
    fn slugify_matches_platform_names() {
        assert_eq!(slugify("Xeon E5 (MKL)"), "xeon-e5-mkl");
        assert_eq!(slugify("NVIDIA H100 (cuSPARSE)"), "nvidia-h100-cusparse");
        assert_eq!(slugify("EnGN"), "engn");
        assert_eq!(slugify("  --weird--  "), "weird");
    }

    #[test]
    fn golden_tables_are_well_formed() {
        for table in
            [fig16_goldens(), fig17_goldens(), table5_goldens(), fig14_goldens(), fig15_goldens()]
        {
            for g in table {
                assert!(g.expected > 0.0 && g.rel_tol > 0.0, "{}/{}", g.record, g.metric);
            }
        }
        let order = table1_bloat_order();
        assert_eq!(order.records.len(), 20, "every Table 1 dataset is ranked");
        let unique: std::collections::HashSet<_> = order.records.iter().collect();
        assert_eq!(unique.len(), order.records.len());
    }

    fn ordered_artifact(values: &[f64]) -> Artifact {
        let mut artifact = Artifact::new("t", 1);
        for (i, &v) in values.iter().enumerate() {
            artifact.push(RunRecord::new(format!("t/r{i}")).metric("m", v));
        }
        artifact
    }

    const ORDER: OrderGolden = OrderGolden { metric: "m", records: &["t/r0", "t/r1", "t/r2"] };

    #[test]
    fn strict_ordering_accepts_descending_and_ties() {
        assert!(check_order(&ordered_artifact(&[3.0, 2.0, 2.0]), &ORDER, Mode::Strict).passed());
        let report = check_order(&ordered_artifact(&[3.0, 4.0, 2.0]), &ORDER, Mode::Strict);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        assert!(!report.outcomes[1].passed, "the out-of-order position is the failure");
    }

    #[test]
    fn strict_ordering_spike_does_not_mask_later_violations() {
        // Values compare against the minimum seen so far, not the previous
        // raw value: with [10, 50, 20] the 20 is out of rank too (> 10).
        let report = check_order(&ordered_artifact(&[10.0, 50.0, 20.0]), &ORDER, Mode::Strict);
        assert_eq!(report.failures(), 2);
        assert!(!report.outcomes[1].passed);
        assert!(!report.outcomes[2].passed);
    }

    #[test]
    fn strict_ordering_isolates_non_finite_values() {
        // A NaN fails its own position but must not poison the running
        // minimum and fail every later, correctly-ordered position.
        let report = check_order(&ordered_artifact(&[f64::NAN, 5.0, 3.0]), &ORDER, Mode::Strict);
        assert_eq!(report.failures(), 1);
        assert!(!report.outcomes[0].passed);
        assert!(report.outcomes[1].passed && report.outcomes[2].passed);
    }

    #[test]
    fn smoke_ordering_only_requires_present_positive_values() {
        // Ascending values pass in smoke mode (ordering is meaningless on
        // shrunk workloads) but a missing record still fails.
        assert!(check_order(&ordered_artifact(&[1.0, 2.0, 3.0]), &ORDER, Mode::Smoke).passed());
        assert!(!check_order(&ordered_artifact(&[1.0, 2.0]), &ORDER, Mode::Smoke).passed());
        assert!(!check_order(&ordered_artifact(&[1.0, -2.0, 3.0]), &ORDER, Mode::Smoke).passed());
    }
}
