//! 2D-torus network-on-chip model.
//!
//! NeuraChip arranges NeuraCores and NeuraMems in an interleaved pattern
//! "connected through a 2D torus network fabric" with on-chip routers
//! carrying `HACC` instructions from cores to memory units (Section 3).
//! This crate models that fabric:
//!
//! * [`TorusTopology`] — coordinates, wrap-around neighbours and minimal
//!   hop distances,
//! * [`Packet`] — a routed message with byte size and latency bookkeeping,
//! * [`Router`] — per-node input-buffered router using dimension-order
//!   routing with per-port bandwidth limits,
//! * [`TorusNetwork`] — the assembled fabric with injection, per-cycle
//!   advancement, delivery queues and traffic statistics.
//!
//! # Example
//!
//! ```
//! use neura_noc::{Packet, TorusNetwork, TorusTopology};
//! use neura_sim::Cycle;
//!
//! let mut net = TorusNetwork::new(TorusTopology::new(4, 4), 8);
//! net.inject(Packet::new(0, 0, 15, 16), Cycle(0)).unwrap();
//! let mut delivered = Vec::new();
//! for c in 0..64u64 {
//!     net.tick(Cycle(c));
//!     delivered.extend(net.drain_delivered(15));
//!     if !delivered.is_empty() { break; }
//! }
//! assert_eq!(delivered.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod network;
pub mod packet;
pub mod router;
pub mod topology;

pub use network::{NetworkStats, TorusNetwork};
pub use packet::Packet;
pub use router::Router;
pub use topology::{Direction, TorusTopology};
