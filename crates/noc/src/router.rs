//! Input-buffered router with dimension-order routing.

use crate::packet::Packet;
use crate::topology::{Direction, TorusTopology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-router statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Packets forwarded to a neighbouring router.
    pub forwarded: u64,
    /// Packets delivered to the local node.
    pub delivered: u64,
    /// Cycles in which at least one packet could not move because the
    /// downstream buffer was full (congestion indicator).
    pub blocked_cycles: u64,
    /// Total payload bytes that traversed this router.
    pub bytes_routed: u64,
}

/// One node's router: an input queue per direction plus a delivery queue.
#[derive(Debug, Clone)]
pub struct Router {
    node: usize,
    buffer_capacity: usize,
    /// Single merged input buffer (the paper's "packet buffers").
    input: VecDeque<Packet>,
    /// Packets destined to the local node, awaiting pickup.
    delivered: VecDeque<Packet>,
    stats: RouterStats,
}

impl Router {
    /// Creates a router for `node` with the given input-buffer capacity.
    pub fn new(node: usize, buffer_capacity: usize) -> Self {
        Router {
            node,
            buffer_capacity: buffer_capacity.max(1),
            input: VecDeque::new(),
            delivered: VecDeque::new(),
            stats: RouterStats::default(),
        }
    }

    /// The node this router serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// True when the input buffer cannot accept another packet.
    pub fn is_full(&self) -> bool {
        self.input.len() >= self.buffer_capacity
    }

    /// Free slots in the input buffer.
    pub fn free_slots(&self) -> usize {
        self.buffer_capacity - self.input.len()
    }

    /// Number of packets buffered (input + undelivered local).
    pub fn occupancy(&self) -> usize {
        self.input.len() + self.delivered.len()
    }

    /// Accepts a newly *injected* packet into the input buffer.  Returns the
    /// packet back to the caller when the buffer is full (injection
    /// back-pressure toward the attached NeuraCore).
    pub fn accept(&mut self, packet: Packet) -> Result<(), Packet> {
        if self.is_full() {
            return Err(packet);
        }
        self.input.push_back(packet);
        Ok(())
    }

    /// Accepts a packet forwarded from a neighbouring router.
    ///
    /// Router-to-router transfers are never refused: the fabric uses
    /// credit-free forwarding with throughput limits instead of hard buffer
    /// limits, which keeps the wrap-around torus free of routing deadlock.
    /// Cycles in which the buffer is over its nominal capacity are counted
    /// as congestion ([`RouterStats::blocked_cycles`]).
    pub fn force_accept(&mut self, packet: Packet) {
        if self.input.len() >= self.buffer_capacity {
            self.stats.blocked_cycles += 1;
        }
        self.input.push_back(packet);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Removes up to `max` packets destined for the local node.
    pub fn take_delivered(&mut self, max: usize) -> Vec<Packet> {
        let take = max.min(self.delivered.len());
        self.delivered.drain(..take).collect()
    }

    /// Number of packets waiting in the local delivery queue.
    pub fn delivered_waiting(&self) -> usize {
        self.delivered.len()
    }

    /// Routes up to `links_per_cycle` packets, pushing them to `outgoing` as
    /// `(next_node, packet)` pairs; packets for this node go to the delivery
    /// queue.  Throughput — not buffer credits — is the limiting resource for
    /// router-to-router hops, so the fabric cannot deadlock on the torus
    /// wrap-around links.
    pub fn route_cycle(
        &mut self,
        topology: &TorusTopology,
        links_per_cycle: usize,
        outgoing: &mut Vec<(usize, Packet)>,
    ) {
        let mut moved = 0usize;
        while moved < links_per_cycle {
            let Some(mut packet) = self.input.pop_front() else { break };
            let dir = topology.route(self.node, packet.dst);
            if dir == Direction::Local {
                self.stats.delivered += 1;
                self.stats.bytes_routed += packet.bytes as u64;
                self.delivered.push_back(packet);
                moved += 1;
                continue;
            }
            let next = topology.neighbor(self.node, dir);
            packet.hops += 1;
            self.stats.forwarded += 1;
            self.stats.bytes_routed += packet.bytes as u64;
            outgoing.push((next, packet));
            moved += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_packets_are_delivered() {
        let topo = TorusTopology::new(2, 2);
        let mut r = Router::new(0, 4);
        r.accept(Packet::new(1, 0, 0, 16)).unwrap();
        let mut out = Vec::new();
        r.route_cycle(&topo, 4, &mut out);
        assert!(out.is_empty());
        assert_eq!(r.take_delivered(10).len(), 1);
        assert_eq!(r.stats().delivered, 1);
    }

    #[test]
    fn remote_packets_move_toward_destination() {
        let topo = TorusTopology::new(4, 1);
        let mut r = Router::new(0, 4);
        r.accept(Packet::new(1, 0, 2, 16)).unwrap();
        let mut out = Vec::new();
        r.route_cycle(&topo, 1, &mut out);
        assert_eq!(out.len(), 1);
        let (next, packet) = &out[0];
        assert_eq!(*next, 1);
        assert_eq!(packet.hops, 1);
    }

    #[test]
    fn buffer_capacity_rejects_excess_injections() {
        let mut r = Router::new(0, 2);
        assert!(r.accept(Packet::new(1, 0, 1, 8)).is_ok());
        assert!(r.accept(Packet::new(2, 0, 1, 8)).is_ok());
        assert!(r.accept(Packet::new(3, 0, 1, 8)).is_err());
        assert!(r.is_full());
        assert_eq!(r.free_slots(), 0);
    }

    #[test]
    fn forwarded_packets_are_never_refused_but_count_congestion() {
        let mut r = Router::new(0, 1);
        r.force_accept(Packet::new(1, 3, 1, 8));
        assert_eq!(r.stats().blocked_cycles, 0);
        r.force_accept(Packet::new(2, 3, 1, 8));
        assert_eq!(r.occupancy(), 2, "forwarded packets always land");
        assert_eq!(r.stats().blocked_cycles, 1, "over-capacity transfer counts as congestion");
    }

    #[test]
    fn links_per_cycle_limits_throughput() {
        let topo = TorusTopology::new(4, 1);
        let mut r = Router::new(0, 8);
        for i in 0..6 {
            r.accept(Packet::new(i, 0, 2, 8)).unwrap();
        }
        let mut out = Vec::new();
        r.route_cycle(&topo, 2, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(r.occupancy(), 4);
    }
}
