//! Network packets.

use serde::{Deserialize, Serialize};

/// A message routed over the torus fabric.
///
/// In the NeuraChip model a packet typically carries one `HACC` instruction
/// (16 bytes, Figure 9) from a NeuraCore to a NeuraMem, or an eviction
/// write-back from a NeuraMem toward its tile's memory controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Caller-assigned identifier (e.g. partial-product sequence number).
    pub id: u64,
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Payload size in bytes (used for bandwidth accounting).
    pub bytes: usize,
    /// Cycle at which the packet was injected (filled in by the network).
    pub injected_at: u64,
    /// Number of router-to-router hops taken so far.
    pub hops: u32,
}

impl Packet {
    /// Creates a packet; `injected_at` and `hops` start at zero and are
    /// maintained by the network.
    pub fn new(id: u64, src: usize, dst: usize, bytes: usize) -> Self {
        Packet { id, src, dst, bytes, injected_at: 0, hops: 0 }
    }

    /// Latency from injection to `now`.
    pub fn latency(&self, now: u64) -> u64 {
        now.saturating_sub(self.injected_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_has_zero_bookkeeping() {
        let p = Packet::new(7, 1, 2, 16);
        assert_eq!(p.hops, 0);
        assert_eq!(p.injected_at, 0);
        assert_eq!(p.latency(5), 5);
    }

    #[test]
    fn latency_saturates() {
        let mut p = Packet::new(1, 0, 0, 8);
        p.injected_at = 100;
        assert_eq!(p.latency(40), 0);
        assert_eq!(p.latency(140), 40);
    }
}
