//! The assembled torus fabric.

use crate::packet::Packet;
use crate::router::Router;
use crate::topology::TorusTopology;
use neura_sim::{Component, Cycle, Histogram};
use serde::{Deserialize, Serialize};

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets rejected at injection because the source router was full.
    pub injection_rejected: u64,
    /// Packets delivered to their destination routers.
    pub delivered: u64,
    /// Sum of delivered-packet latencies.
    pub total_latency: u64,
    /// Sum of delivered-packet hop counts.
    pub total_hops: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

impl NetworkStats {
    /// Mean end-to-end latency of delivered packets.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }
}

/// A 2D-torus network of input-buffered routers.
#[derive(Debug)]
pub struct TorusNetwork {
    topology: TorusTopology,
    routers: Vec<Router>,
    links_per_cycle: usize,
    stats: NetworkStats,
    latency_histogram: Histogram,
    hop_histogram: Histogram,
    name: String,
    /// Packets delivered to their destination, awaiting pickup by the
    /// attached component: `(destination node, packet)`.
    delivered_store: Vec<(usize, Packet)>,
}

impl TorusNetwork {
    /// Creates a network over `topology` with the given per-router buffer capacity.
    pub fn new(topology: TorusTopology, buffer_capacity: usize) -> Self {
        let routers = (0..topology.nodes()).map(|n| Router::new(n, buffer_capacity)).collect();
        TorusNetwork {
            topology,
            routers,
            links_per_cycle: 2,
            stats: NetworkStats::default(),
            latency_histogram: Histogram::new(4, 64),
            hop_histogram: Histogram::new(1, 64),
            name: format!("torus-{}x{}", topology.width(), topology.height()),
            delivered_store: Vec::new(),
        }
    }

    /// Sets how many packets each router may forward per cycle (default 2:
    /// one per pipeline direction pair, matching the 128-bit data bus).
    pub fn with_links_per_cycle(mut self, links: usize) -> Self {
        self.links_per_cycle = links.max(1);
        self
    }

    /// The network topology.
    pub fn topology(&self) -> &TorusTopology {
        &self.topology
    }

    /// Injects a packet at its source router.
    ///
    /// # Errors
    ///
    /// Returns the packet back when the source router's buffer is full, so
    /// the caller can retry next cycle (back-pressure).
    pub fn inject(&mut self, mut packet: Packet, now: Cycle) -> Result<(), Packet> {
        packet.injected_at = now.as_u64();
        let src = packet.src;
        assert!(src < self.routers.len(), "source node {src} out of range");
        assert!(packet.dst < self.routers.len(), "destination node out of range");
        match self.routers[src].accept(packet) {
            Ok(()) => {
                self.stats.injected += 1;
                Ok(())
            }
            Err(p) => {
                self.stats.injection_rejected += 1;
                Err(p)
            }
        }
    }

    /// Advances the whole fabric one cycle.
    pub fn tick(&mut self, now: Cycle) {
        let mut moves: Vec<(usize, Packet)> = Vec::new();
        for router in &mut self.routers {
            router.route_cycle(&self.topology, self.links_per_cycle, &mut moves);
        }
        for (next, packet) in moves {
            // Router-to-router hops are throughput-limited, not buffer-limited
            // (see `Router::force_accept`), which keeps the torus deadlock-free.
            self.routers[next].force_accept(packet);
        }
        // Account for deliveries that happened this cycle.
        let now = now.as_u64();
        for router in &mut self.routers {
            for packet in router.take_delivered(usize::MAX) {
                self.stats.delivered += 1;
                self.stats.total_latency += packet.latency(now);
                self.stats.total_hops += u64::from(packet.hops);
                self.stats.bytes_delivered += packet.bytes as u64;
                self.latency_histogram.record(packet.latency(now));
                self.hop_histogram.record(u64::from(packet.hops));
                // Hand the packet back to the destination router's delivery
                // queue for pickup by the attached component.
                self.delivered_store.push((packet.dst, packet));
            }
        }
    }

    /// Removes all packets delivered to `node` since the last drain.
    pub fn drain_delivered(&mut self, node: usize) -> Vec<Packet> {
        let mut taken = Vec::new();
        let mut remaining = Vec::with_capacity(self.delivered_store.len());
        for (dst, packet) in self.delivered_store.drain(..) {
            if dst == node {
                taken.push(packet);
            } else {
                remaining.push((dst, packet));
            }
        }
        self.delivered_store = remaining;
        taken
    }

    /// Number of packets anywhere in the fabric (buffered or awaiting pickup).
    pub fn in_flight(&self) -> usize {
        self.routers.iter().map(Router::occupancy).sum::<usize>() + self.delivered_store.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Histogram of delivered-packet latencies.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_histogram
    }

    /// Histogram of delivered-packet hop counts (bin width 1, so bin `i`
    /// counts packets that crossed exactly `i` router-to-router links;
    /// its total always equals [`NetworkStats::total_hops`] summed over
    /// `bin × count`).
    pub fn hop_histogram(&self) -> &Histogram {
        &self.hop_histogram
    }

    /// Per-router congestion (blocked cycles), indexed by node id.
    pub fn congestion_map(&self) -> Vec<u64> {
        self.routers.iter().map(|r| r.stats().blocked_cycles).collect()
    }
}

impl Component for TorusNetwork {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: Cycle) {
        TorusNetwork::tick(self, cycle);
    }

    fn is_idle(&self) -> bool {
        self.in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_until_empty(net: &mut TorusNetwork, max_cycles: u64) -> Vec<Packet> {
        let mut delivered = Vec::new();
        for c in 0..max_cycles {
            net.tick(Cycle(c));
            for node in 0..net.topology().nodes() {
                delivered.extend(net.drain_delivered(node));
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        delivered
    }

    #[test]
    fn single_packet_reaches_destination() {
        let mut net = TorusNetwork::new(TorusTopology::new(4, 4), 8);
        net.inject(Packet::new(1, 0, 15, 16), Cycle(0)).unwrap();
        let delivered = drive_until_empty(&mut net, 100);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].id, 1);
        assert_eq!(delivered[0].hops as usize, net.topology().distance(0, 15));
    }

    #[test]
    fn all_to_one_traffic_is_fully_delivered() {
        let topo = TorusTopology::new(4, 4);
        let mut net = TorusNetwork::new(topo, 16);
        for (id, src) in (0..topo.nodes()).enumerate() {
            net.inject(Packet::new(id as u64, src, 5, 16), Cycle(0)).unwrap();
        }
        let delivered = drive_until_empty(&mut net, 500);
        assert_eq!(delivered.len(), topo.nodes());
        assert_eq!(net.stats().delivered, topo.nodes() as u64);
        assert!(net.stats().mean_latency() > 0.0);
    }

    #[test]
    fn injection_backpressure_when_router_full() {
        let mut net = TorusNetwork::new(TorusTopology::new(2, 2), 1);
        assert!(net.inject(Packet::new(1, 0, 3, 8), Cycle(0)).is_ok());
        assert!(net.inject(Packet::new(2, 0, 3, 8), Cycle(0)).is_err());
        assert_eq!(net.stats().injection_rejected, 1);
    }

    #[test]
    fn hop_counts_match_topology_distance() {
        let topo = TorusTopology::new(5, 5);
        let mut net = TorusNetwork::new(topo, 32);
        let pairs = [(0, 24), (3, 17), (10, 10), (7, 8)];
        for (i, (src, dst)) in pairs.iter().enumerate() {
            net.inject(Packet::new(i as u64, *src, *dst, 16), Cycle(0)).unwrap();
        }
        let delivered = drive_until_empty(&mut net, 200);
        assert_eq!(delivered.len(), pairs.len());
        for p in delivered {
            let (src, dst) = pairs[p.id as usize];
            assert_eq!(p.hops as usize, topo.distance(src, dst));
        }
    }

    #[test]
    fn congestion_map_has_entry_per_router() {
        let net = TorusNetwork::new(TorusTopology::new(3, 3), 4);
        assert_eq!(net.congestion_map().len(), 9);
    }

    #[test]
    fn uniform_random_traffic_conserves_packets() {
        use neura_sim::DeterministicRng;
        let topo = TorusTopology::new(4, 4);
        let mut net = TorusNetwork::new(topo, 64);
        let mut rng = DeterministicRng::new(3);
        let mut injected = 0u64;
        for cycle in 0..50u64 {
            for _ in 0..4 {
                let src = rng.next_below(16) as usize;
                let dst = rng.next_below(16) as usize;
                if net.inject(Packet::new(injected, src, dst, 16), Cycle(cycle)).is_ok() {
                    injected += 1;
                }
            }
            net.tick(Cycle(cycle));
        }
        // Drain.
        for c in 50..2_000u64 {
            net.tick(Cycle(c));
            if net.in_flight() == 0 {
                break;
            }
        }
        let mut delivered = 0;
        for node in 0..16 {
            delivered += net.drain_delivered(node).len();
        }
        assert_eq!(delivered as u64, injected);
        assert_eq!(net.stats().delivered, injected);
    }
}
