//! Torus geometry: coordinates, neighbours and minimal distances.

use serde::{Deserialize, Serialize};

/// One of the four torus link directions (plus local ejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward larger x (wrapping).
    East,
    /// Toward smaller x (wrapping).
    West,
    /// Toward larger y (wrapping).
    North,
    /// Toward smaller y (wrapping).
    South,
    /// Deliver to the local node.
    Local,
}

impl Direction {
    /// All router output directions including `Local`.
    pub const ALL: [Direction; 5] =
        [Direction::East, Direction::West, Direction::North, Direction::South, Direction::Local];
}

/// A `width × height` 2D torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorusTopology {
    width: usize,
    height: usize,
}

impl TorusTopology {
    /// Creates a torus of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        TorusTopology { width, height }
    }

    /// Builds the smallest near-square torus containing at least `nodes` nodes.
    pub fn for_nodes(nodes: usize) -> Self {
        let nodes = nodes.max(1);
        let width = (nodes as f64).sqrt().ceil() as usize;
        let height = nodes.div_ceil(width);
        TorusTopology::new(width, height)
    }

    /// Torus width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Torus height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Converts a node id to (x, y) coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.nodes()`.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} outside {}x{} torus", self.width, self.height);
        (node % self.width, node / self.width)
    }

    /// Converts (x, y) coordinates to a node id (coordinates wrap).
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        (y % self.height) * self.width + (x % self.width)
    }

    /// The neighbouring node in the given direction (wrapping).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `direction` is `Local`.
    pub fn neighbor(&self, node: usize, direction: Direction) -> usize {
        let (x, y) = self.coords(node);
        match direction {
            Direction::East => self.node_at(x + 1, y),
            Direction::West => self.node_at((x + self.width - 1) % self.width, y),
            Direction::North => self.node_at(x, y + 1),
            Direction::South => self.node_at(x, (y + self.height - 1) % self.height),
            Direction::Local => panic!("Local is not a link direction"),
        }
    }

    /// Minimal hop count between two nodes on the torus.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.width - dx) + dy.min(self.height - dy)
    }

    /// Next-hop direction under dimension-order (X then Y) minimal routing.
    /// Returns `Local` when `from == to`.
    pub fn route(&self, from: usize, to: usize) -> Direction {
        if from == to {
            return Direction::Local;
        }
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        if fx != tx {
            let right = (tx + self.width - fx) % self.width;
            let left = (fx + self.width - tx) % self.width;
            if right <= left {
                Direction::East
            } else {
                Direction::West
            }
        } else {
            let up = (ty + self.height - fy) % self.height;
            let down = (fy + self.height - ty) % self.height;
            if up <= down {
                Direction::North
            } else {
                Direction::South
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = TorusTopology::new(4, 3);
        for node in 0..t.nodes() {
            let (x, y) = t.coords(node);
            assert_eq!(t.node_at(x, y), node);
        }
    }

    #[test]
    fn neighbors_wrap_around() {
        let t = TorusTopology::new(4, 4);
        // Node 3 is at (3, 0); East wraps to (0, 0) == node 0.
        assert_eq!(t.neighbor(3, Direction::East), 0);
        // Node 0 West wraps to node 3.
        assert_eq!(t.neighbor(0, Direction::West), 3);
        // Node 0 South wraps to (0, 3) == node 12.
        assert_eq!(t.neighbor(0, Direction::South), 12);
    }

    #[test]
    fn distance_uses_wraparound() {
        let t = TorusTopology::new(8, 8);
        assert_eq!(t.distance(0, 7), 1, "wrap makes the far column adjacent");
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(0, 0), 0);
        // Distance is symmetric.
        for a in [0, 5, 17, 63] {
            for b in [0, 5, 17, 63] {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn route_reaches_destination() {
        let t = TorusTopology::new(5, 5);
        for from in 0..t.nodes() {
            for to in 0..t.nodes() {
                // Follow the routing function; it must terminate within the
                // minimal distance.
                let mut current = from;
                let mut hops = 0;
                while current != to {
                    let dir = t.route(current, to);
                    assert_ne!(dir, Direction::Local);
                    current = t.neighbor(current, dir);
                    hops += 1;
                    assert!(hops <= t.distance(from, to), "route exceeded minimal distance");
                }
                assert_eq!(hops, t.distance(from, to));
            }
        }
    }

    #[test]
    fn route_to_self_is_local() {
        let t = TorusTopology::new(3, 3);
        assert_eq!(t.route(4, 4), Direction::Local);
    }

    #[test]
    fn for_nodes_covers_request() {
        for n in [1, 2, 5, 16, 17, 32, 100] {
            let t = TorusTopology::for_nodes(n);
            assert!(t.nodes() >= n);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        TorusTopology::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_panics() {
        TorusTopology::new(2, 2).coords(4);
    }
}
