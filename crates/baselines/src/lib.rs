//! Analytical baseline models for the platforms NeuraChip is compared against.
//!
//! The paper's evaluation (Figures 16/17, Table 5) compares NeuraChip with
//! commodity hardware running vendor SpGEMM libraries (Intel MKL on a Xeon
//! E5, cuSPARSE/CUSP on an NVIDIA H100, hipSPARSE on an AMD MI100), with
//! prior SpGEMM accelerators (OuterSPACE, SpArch, Gamma) and with prior GNN
//! accelerators (EnGN, GROW, HyGCN, FlowGNN).  None of those systems can be
//! run inside this repository, so each is modelled analytically:
//!
//! * a [`workload::WorkloadProfile`] summarises the structural properties of
//!   an SpGEMM / GCN workload (flops, bloat, imbalance, reuse),
//! * each platform model combines a compute roofline, a bandwidth roofline
//!   and platform-specific penalty terms that encode the architectural
//!   weakness the paper attributes to it (memory bloat for outer-product
//!   designs, prefetch idle for Gamma's FiberCache, ring-reducer imbalance
//!   for EnGN, pipeline imbalance for HyGCN, …),
//! * the models are calibrated so that the *achieved* throughput on the
//!   paper's common matrix suite lands on the Table 5 figures, which makes
//!   the reproduced speedup ratios meaningful.
//!
//! The models are intentionally first-order: they are the substitute for
//! measurements that require hardware this repository does not have, as
//! recorded in `DESIGN.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gnn;
pub mod spec;
pub mod spgemm;
pub mod workload;

pub use gnn::{GnnModel, GnnPlatform};
pub use spec::PlatformSpec;
pub use spgemm::{PlatformEstimate, SpgemmModel, SpgemmPlatform};
pub use workload::WorkloadProfile;
