//! Analytical SpGEMM performance models for the Figure 16 / Table 5 comparison.

use crate::spec::{table5_specs, PlatformSpec};
use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Estimated execution of one workload on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformEstimate {
    /// Execution time in seconds.
    pub seconds: f64,
    /// Achieved throughput in GOP/s.
    pub gops: f64,
}

impl PlatformEstimate {
    fn from_gops(workload: &WorkloadProfile, gops: f64) -> Self {
        let gops = gops.max(1e-6);
        PlatformEstimate { seconds: workload.flops() as f64 / (gops * 1e9), gops }
    }

    /// Speedup of `self` over `other` (ratio of execution times).
    pub fn speedup_over(&self, other: &PlatformEstimate) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            other.seconds / self.seconds
        }
    }
}

/// A platform able to estimate SpGEMM execution time for a workload profile.
pub trait SpgemmModel: std::fmt::Debug {
    /// Platform name (matches Table 5).
    fn name(&self) -> &'static str;
    /// Estimates the execution of one workload.
    fn estimate(&self, workload: &WorkloadProfile) -> PlatformEstimate;
}

/// The comparison platforms of Figure 16, plus the three NeuraChip tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpgemmPlatform {
    /// Intel Xeon E5 running MKL.
    CpuMkl,
    /// NVIDIA H100 running cuSPARSE.
    GpuCusparse,
    /// NVIDIA H100 running CUSP.
    GpuCusp,
    /// AMD MI100 running hipSPARSE (rocSPARSE backend).
    GpuHipsparse,
    /// The OuterSPACE outer-product accelerator.
    OuterSpace,
    /// The SpArch outer-product accelerator with merger trees.
    SpArch,
    /// The Gamma row-wise (Gustavson) accelerator with FiberCache.
    Gamma,
    /// NeuraChip, analytically modelled (for full-scale datasets where the
    /// cycle-level simulator would be too slow).
    NeuraChip {
        /// Which tile configuration (4, 16 or 64).
        tile: u8,
    },
}

impl SpgemmPlatform {
    /// The seven baseline platforms of Figure 16 in plot order.
    pub const FIGURE16_BASELINES: [SpgemmPlatform; 7] = [
        SpgemmPlatform::CpuMkl,
        SpgemmPlatform::GpuCusparse,
        SpgemmPlatform::GpuCusp,
        SpgemmPlatform::GpuHipsparse,
        SpgemmPlatform::OuterSpace,
        SpgemmPlatform::SpArch,
        SpgemmPlatform::Gamma,
    ];

    /// The static specification of this platform (Table 5 column).
    pub fn spec(&self) -> PlatformSpec {
        let name = self.name();
        table5_specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("every platform has a Table 5 entry")
    }
}

impl SpgemmModel for SpgemmPlatform {
    fn name(&self) -> &'static str {
        match self {
            SpgemmPlatform::CpuMkl => "Xeon E5 (MKL)",
            SpgemmPlatform::GpuCusparse => "NVIDIA H100 (cuSPARSE)",
            SpgemmPlatform::GpuCusp => "NVIDIA H100 (CUSP)",
            SpgemmPlatform::GpuHipsparse => "AMD MI100 (hipSPARSE)",
            SpgemmPlatform::OuterSpace => "OuterSPACE",
            SpgemmPlatform::SpArch => "SpArch",
            SpgemmPlatform::Gamma => "Gamma",
            SpgemmPlatform::NeuraChip { tile: 4 } => "NeuraChip Tile-4",
            SpgemmPlatform::NeuraChip { tile: 64 } => "NeuraChip Tile-64",
            SpgemmPlatform::NeuraChip { .. } => "NeuraChip Tile-16",
        }
    }

    fn estimate(&self, workload: &WorkloadProfile) -> PlatformEstimate {
        let spec = self.spec();
        let base = spec.spgemm_gops_reference;
        // Reference workload characteristics: roughly the mean of the Table 1
        // suite (bloat ≈ 100 %, fan-in ≈ 2, row CV ≈ 2).
        let bloat_ratio = (workload.bloat_percent.max(1.0) / 100.0).clamp(0.05, 30.0);
        let fanin_ratio = (workload.avg_fanin.max(1.0) / 2.0).clamp(0.25, 8.0);
        let imbalance_ratio = (workload.row_cv.max(0.05) / 2.0).clamp(0.1, 6.0);

        let gops = match self {
            // CPU/GPU libraries: limited by irregular gathers; they improve
            // slightly when the reduction fan-in is high (more work per byte)
            // and degrade on very skewed degree distributions.
            SpgemmPlatform::CpuMkl => base * fanin_ratio.powf(0.30) / imbalance_ratio.powf(0.15),
            SpgemmPlatform::GpuCusparse
            | SpgemmPlatform::GpuCusp
            | SpgemmPlatform::GpuHipsparse => {
                base * fanin_ratio.powf(0.35) / imbalance_ratio.powf(0.25)
            }
            // Outer-product designs pay for the memory bloat: every partial
            // product is spilled and re-read during the merge phase.
            SpgemmPlatform::OuterSpace => base / bloat_ratio.powf(0.45),
            SpgemmPlatform::SpArch => base / bloat_ratio.powf(0.25),
            // Gamma keeps inputs resident in FiberCache; it loses ground when
            // the fan-in is small (prefetched fibers idle before being merged).
            SpgemmPlatform::Gamma => base * fanin_ratio.powf(0.15) / imbalance_ratio.powf(0.10),
            // NeuraChip: DRHM removes the imbalance sensitivity and rolling
            // eviction removes the bloat sensitivity; throughput tracks the
            // fan-in (input reuse) mildly.
            SpgemmPlatform::NeuraChip { .. } => base * fanin_ratio.powf(0.20),
        };
        // No platform exceeds its bandwidth roofline on the compulsory traffic.
        let compulsory_bytes = (workload.input_bytes() + workload.output_bytes()) as f64;
        let roofline_gops =
            spec.off_chip_bandwidth_gbps * workload.flops() as f64 / compulsory_bytes.max(1.0);
        PlatformEstimate::from_gops(workload, gops.min(roofline_gops).min(spec.peak_gflops))
    }
}

/// Geometric mean of a set of positive values (used for the G-Mean speedup
/// group of Figure 16).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::datasets::DatasetCatalog;

    fn suite_profiles() -> Vec<WorkloadProfile> {
        DatasetCatalog::spgemm_suite()
            .iter()
            .map(|d| {
                let a = d.generate_scaled(256, 3).to_csr();
                WorkloadProfile::from_square(d.name, &a)
            })
            .collect()
    }

    #[test]
    fn neurachip_beats_every_baseline_on_geomean() {
        let profiles = suite_profiles();
        let neurachip = SpgemmPlatform::NeuraChip { tile: 16 };
        for baseline in SpgemmPlatform::FIGURE16_BASELINES {
            let speedups: Vec<f64> = profiles
                .iter()
                .map(|p| neurachip.estimate(p).speedup_over(&baseline.estimate(p)))
                .collect();
            let gmean = geometric_mean(&speedups);
            assert!(
                gmean > 1.0,
                "NeuraChip should beat {} on geomean, got {gmean:.2}",
                baseline.name()
            );
        }
    }

    #[test]
    fn speedup_ordering_follows_the_paper() {
        // Paper geomeans: MKL 22.1x > cuSPARSE 17.1x > hipSPARSE 16.7x >
        // CUSP 13.3x > OuterSPACE 6.6x > SpArch 2.4x > Gamma 1.5x.
        let profiles = suite_profiles();
        let neurachip = SpgemmPlatform::NeuraChip { tile: 16 };
        let gmean = |baseline: SpgemmPlatform| {
            let speedups: Vec<f64> = profiles
                .iter()
                .map(|p| neurachip.estimate(p).speedup_over(&baseline.estimate(p)))
                .collect();
            geometric_mean(&speedups)
        };
        let mkl = gmean(SpgemmPlatform::CpuMkl);
        let cusp = gmean(SpgemmPlatform::GpuCusp);
        let outer = gmean(SpgemmPlatform::OuterSpace);
        let sparch = gmean(SpgemmPlatform::SpArch);
        let gamma = gmean(SpgemmPlatform::Gamma);
        assert!(mkl > cusp, "MKL speedup {mkl:.1} should exceed CUSP {cusp:.1}");
        assert!(cusp > outer, "CUSP speedup {cusp:.1} should exceed OuterSPACE {outer:.1}");
        assert!(outer > sparch, "OuterSPACE {outer:.1} should exceed SpArch {sparch:.1}");
        assert!(sparch > gamma, "SpArch {sparch:.1} should exceed Gamma {gamma:.1}");
        assert!(gamma > 1.0, "NeuraChip still beats Gamma, got {gamma:.2}");
        assert!(mkl > 8.0, "MKL speedup should be an order of magnitude, got {mkl:.1}");
    }

    #[test]
    fn outerspace_suffers_most_on_high_bloat_workloads() {
        let fb = DatasetCatalog::by_name("facebook").unwrap();
        let road = DatasetCatalog::by_name("roadNet-CA").unwrap();
        let high_bloat =
            WorkloadProfile::from_square("facebook", &fb.generate_scaled(8, 1).to_csr());
        let low_bloat =
            WorkloadProfile::from_square("road", &road.generate_scaled(2048, 1).to_csr());
        let outer = SpgemmPlatform::OuterSpace;
        assert!(high_bloat.bloat_percent > low_bloat.bloat_percent);
        assert!(outer.estimate(&high_bloat).gops < outer.estimate(&low_bloat).gops);
    }

    #[test]
    fn estimates_are_positive_and_respect_peak() {
        let profiles = suite_profiles();
        for platform in SpgemmPlatform::FIGURE16_BASELINES
            .iter()
            .chain([SpgemmPlatform::NeuraChip { tile: 16 }].iter())
        {
            let spec = platform.spec();
            for p in &profiles {
                let est = platform.estimate(p);
                assert!(est.gops > 0.0);
                assert!(est.seconds > 0.0);
                assert!(est.gops <= spec.peak_gflops + 1e-9, "{} exceeded peak", platform.name());
            }
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn platform_names_match_table5() {
        for platform in SpgemmPlatform::FIGURE16_BASELINES {
            // spec() panics if the name is missing from Table 5.
            let _ = platform.spec();
        }
        assert_eq!(SpgemmPlatform::NeuraChip { tile: 16 }.spec().name, "NeuraChip Tile-16");
        assert_eq!(SpgemmPlatform::NeuraChip { tile: 4 }.spec().name, "NeuraChip Tile-4");
        assert_eq!(SpgemmPlatform::NeuraChip { tile: 64 }.spec().name, "NeuraChip Tile-64");
    }
}
