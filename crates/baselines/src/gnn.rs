//! Analytical GNN-accelerator models for the Figure 17 comparison.
//!
//! Each prior accelerator is modelled as an effective-throughput estimate for
//! a full GCN layer (aggregation + combination), with a penalty term encoding
//! the specific architectural weakness the paper attributes to it:
//!
//! * **EnGN** — ring-based edge reducer: struggles to spread work evenly, so
//!   its penalty grows with the degree-distribution skew.
//! * **GROW** — row-stationary GEMM with software graph partitioning: pays a
//!   preprocessing overhead proportional to the graph size and idles its
//!   streaming buffers.
//! * **HyGCN** — separate aggregation/combination engines in a pipeline: the
//!   pipeline stalls when the two phases have unequal durations.
//! * **FlowGNN** — dataflow architecture with dynamic pull-based mapping:
//!   queueing overhead per message.
//! * **NeuraChip** — decoupled NeuraCore/NeuraMem resources shared by both
//!   phases, DRHM load balancing; modelled as the efficiency anchor.

use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Estimated GCN-layer execution on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GnnEstimate {
    /// Execution time in seconds for one GCN layer.
    pub seconds: f64,
    /// Achieved throughput in GFLOP/s over the whole layer.
    pub gflops: f64,
}

/// A platform able to estimate GCN-layer execution time.
pub trait GnnModel: std::fmt::Debug {
    /// Platform name as used in Figure 17.
    fn name(&self) -> &'static str;
    /// Estimates one GCN layer: `aggregation` profiles `A × X`, and
    /// `in_features`/`out_features` describe the combination GEMM.
    fn estimate(
        &self,
        aggregation: &WorkloadProfile,
        in_features: usize,
        out_features: usize,
    ) -> GnnEstimate;
}

/// The GNN accelerators compared in Figure 17, plus NeuraChip itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GnnPlatform {
    /// EnGN: hash/ring-based GNN accelerator.
    EnGn,
    /// GROW: row-stationary sparse-dense GEMM accelerator with graph partitioning.
    Grow,
    /// HyGCN: hybrid accelerator with separate aggregation/combination engines.
    HyGcn,
    /// FlowGNN: reconfigurable dataflow accelerator with pull-based mapping.
    FlowGnn,
    /// NeuraChip Tile-16 (GNN configuration, 8192 GFLOPS peak).
    NeuraChip,
}

impl GnnPlatform {
    /// The four baselines of Figure 17 in plot order.
    pub const FIGURE17_BASELINES: [GnnPlatform; 4] =
        [GnnPlatform::EnGn, GnnPlatform::Grow, GnnPlatform::HyGcn, GnnPlatform::FlowGnn];

    /// Peak throughput of the platform's GNN configuration in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        match self {
            GnnPlatform::EnGn => 6_144.0,
            GnnPlatform::Grow => 4_096.0,
            GnnPlatform::HyGcn => 8_704.0,
            GnnPlatform::FlowGnn => 8_192.0,
            // "capable of delivering a peak performance of 8192 GFLOPs" (§5.4).
            GnnPlatform::NeuraChip => 8_192.0,
        }
    }

    /// Baseline efficiency (fraction of peak sustained on a balanced GCN
    /// workload), calibrated so the average Figure 17 speedups match the
    /// paper (EnGN +29 %, GROW +58 %, HyGCN +69 %, FlowGNN +30 %).
    fn base_efficiency(&self) -> f64 {
        match self {
            GnnPlatform::EnGn => 0.145,
            GnnPlatform::Grow => 0.175,
            GnnPlatform::HyGcn => 0.085,
            GnnPlatform::FlowGnn => 0.108,
            GnnPlatform::NeuraChip => 0.140,
        }
    }
}

impl GnnModel for GnnPlatform {
    fn name(&self) -> &'static str {
        match self {
            GnnPlatform::EnGn => "EnGN",
            GnnPlatform::Grow => "GROW",
            GnnPlatform::HyGcn => "HyGCN",
            GnnPlatform::FlowGnn => "FlowGNN",
            GnnPlatform::NeuraChip => "NeuraChip Tile-16",
        }
    }

    fn estimate(
        &self,
        aggregation: &WorkloadProfile,
        in_features: usize,
        out_features: usize,
    ) -> GnnEstimate {
        let agg_flops = aggregation.flops() as f64;
        let comb_flops = 2.0 * aggregation.rows as f64 * in_features as f64 * out_features as f64;
        let total_flops = agg_flops + comb_flops;
        let skew = (aggregation.row_cv.max(0.05) / 2.0).clamp(0.2, 6.0);
        let phase_ratio = (agg_flops / comb_flops.max(1.0)).max(comb_flops / agg_flops.max(1.0));

        let efficiency = match self {
            // Ring reducer: efficiency degrades with degree skew.
            GnnPlatform::EnGn => self.base_efficiency() / skew.powf(0.35),
            // Graph-partitioning preprocessing + streaming-buffer idling:
            // a size-dependent overhead on top of a skew penalty.
            GnnPlatform::Grow => {
                let partition_overhead = 1.0 + (aggregation.rows as f64).log2() / 24.0;
                self.base_efficiency() / (skew.powf(0.20) * partition_overhead)
            }
            // Pipeline stall when aggregation and combination durations differ.
            GnnPlatform::HyGcn => self.base_efficiency() / phase_ratio.powf(0.30),
            // Pull-based dynamic mapping: per-message queue management cost
            // grows mildly with the number of partial products per node.
            GnnPlatform::FlowGnn => {
                let queue_overhead = 1.0 + (aggregation.avg_fanin / 64.0).min(1.0);
                self.base_efficiency() / (skew.powf(0.10) * queue_overhead)
            }
            // NeuraChip: DRHM keeps the efficiency flat across skew levels.
            GnnPlatform::NeuraChip => self.base_efficiency(),
        };
        let gflops = (self.peak_gflops() * efficiency).max(1e-3);
        GnnEstimate { seconds: total_flops / (gflops * 1e9), gflops }
    }
}

/// Speedup of NeuraChip over `baseline` for the given layer.
pub fn speedup_over(
    baseline: GnnPlatform,
    aggregation: &WorkloadProfile,
    in_features: usize,
    out_features: usize,
) -> f64 {
    let ours = GnnPlatform::NeuraChip.estimate(aggregation, in_features, out_features);
    let theirs = baseline.estimate(aggregation, in_features, out_features);
    theirs.seconds / ours.seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::datasets::DatasetCatalog;

    fn gnn_profiles() -> Vec<(WorkloadProfile, usize, usize)> {
        DatasetCatalog::gnn_suite()
            .iter()
            .map(|d| {
                let a = d.generate_scaled(8, 5).to_csr();
                let features = d.feature_dim.min(256);
                (WorkloadProfile::from_aggregation(d.name, &a, features), features, 64)
            })
            .collect()
    }

    #[test]
    fn neurachip_beats_every_gnn_baseline_on_average() {
        let layers = gnn_profiles();
        for baseline in GnnPlatform::FIGURE17_BASELINES {
            let mean_speedup: f64 = layers
                .iter()
                .map(|(p, fin, fout)| speedup_over(baseline, p, *fin, *fout))
                .sum::<f64>()
                / layers.len() as f64;
            assert!(
                mean_speedup > 1.0,
                "NeuraChip should outperform {}, got {mean_speedup:.2}x",
                baseline.name()
            );
            assert!(
                mean_speedup < 4.0,
                "speedup over {} should stay in the paper's ballpark, got {mean_speedup:.2}x",
                baseline.name()
            );
        }
    }

    #[test]
    fn hygcn_and_grow_trail_engn_and_flowgnn() {
        // Paper ordering of average speedups: HyGCN (69%) > GROW (58%) >
        // FlowGNN (30%) ≈ EnGN (29%).
        let layers = gnn_profiles();
        let avg = |b: GnnPlatform| {
            layers.iter().map(|(p, fin, fout)| speedup_over(b, p, *fin, *fout)).sum::<f64>()
                / layers.len() as f64
        };
        let hygcn = avg(GnnPlatform::HyGcn);
        let grow = avg(GnnPlatform::Grow);
        let flowgnn = avg(GnnPlatform::FlowGnn);
        let engn = avg(GnnPlatform::EnGn);
        assert!(hygcn > grow, "HyGCN {hygcn:.2} should exceed GROW {grow:.2}");
        assert!(grow > flowgnn, "GROW {grow:.2} should exceed FlowGNN {flowgnn:.2}");
        assert!(grow > engn, "GROW {grow:.2} should exceed EnGN {engn:.2}");
    }

    #[test]
    fn skewed_graphs_hurt_engn_more_than_neurachip() {
        let skewed = DatasetCatalog::by_name("cora").unwrap().generate_scaled(2, 1).to_csr();
        let profile = WorkloadProfile::from_aggregation("cora", &skewed, 64);
        let engn = GnnPlatform::EnGn.estimate(&profile, 64, 16);
        let ours = GnnPlatform::NeuraChip.estimate(&profile, 64, 16);
        assert!(ours.gflops > engn.gflops);
    }

    #[test]
    fn estimates_scale_with_layer_size() {
        let a = DatasetCatalog::by_name("citeseer").unwrap().generate_scaled(4, 2).to_csr();
        let small = WorkloadProfile::from_aggregation("citeseer", &a, 16);
        let large = WorkloadProfile::from_aggregation("citeseer", &a, 128);
        for platform in
            GnnPlatform::FIGURE17_BASELINES.iter().chain([GnnPlatform::NeuraChip].iter())
        {
            let t_small = platform.estimate(&small, 16, 16).seconds;
            let t_large = platform.estimate(&large, 128, 16).seconds;
            assert!(t_large > t_small, "{} must take longer on a larger layer", platform.name());
        }
    }
}
