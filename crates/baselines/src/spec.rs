//! Platform specifications (the static columns of Table 5).

use serde::{Deserialize, Serialize};

/// Static hardware description of one comparison platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Platform name as used in the paper.
    pub name: &'static str,
    /// Description of the compute units (Table 5 "Compute Units" row).
    pub compute_units: &'static str,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Peak compute throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// On-chip memory in MB (cache / scratchpad / HashPad).
    pub on_chip_memory_mb: f64,
    /// Off-chip bandwidth in GB/s.
    pub off_chip_bandwidth_gbps: f64,
    /// Process technology in nm.
    pub technology_nm: u32,
    /// Die area in mm² (None when the paper marks it unavailable).
    pub area_mm2: Option<f64>,
    /// Power in watts (None when the paper marks it unavailable).
    pub power_w: Option<f64>,
    /// SpGEMM throughput on the common matrix suite in GOP/s (Table 5 row
    /// "SpGEMM Perf."), used as the calibration anchor of the models.
    pub spgemm_gops_reference: f64,
}

/// Specifications of every platform listed in Table 5.
pub fn table5_specs() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec {
            name: "Xeon E5 (MKL)",
            compute_units: "8 cores AVX2",
            frequency_ghz: 2.9,
            peak_gflops: 186.0,
            on_chip_memory_mb: 15.0,
            off_chip_bandwidth_gbps: 136.0,
            technology_nm: 32,
            area_mm2: Some(356.0),
            power_w: Some(85.0),
            spgemm_gops_reference: 1.12,
        },
        PlatformSpec {
            name: "NVIDIA H100 (cuSPARSE)",
            compute_units: "7296 FP64",
            frequency_ghz: 1.6,
            peak_gflops: 26_000.0,
            on_chip_memory_mb: 50.0,
            off_chip_bandwidth_gbps: 2_000.0,
            technology_nm: 4,
            area_mm2: Some(814.0),
            power_w: Some(300.0),
            spgemm_gops_reference: 1.45,
        },
        PlatformSpec {
            name: "NVIDIA H100 (CUSP)",
            compute_units: "7296 FP64",
            frequency_ghz: 1.6,
            peak_gflops: 26_000.0,
            on_chip_memory_mb: 50.0,
            off_chip_bandwidth_gbps: 2_000.0,
            technology_nm: 4,
            area_mm2: Some(814.0),
            power_w: Some(300.0),
            spgemm_gops_reference: 1.86,
        },
        PlatformSpec {
            name: "AMD MI100 (hipSPARSE)",
            compute_units: "7680 FP64",
            frequency_ghz: 1.5,
            peak_gflops: 11_500.0,
            on_chip_memory_mb: 8.0,
            off_chip_bandwidth_gbps: 1_200.0,
            technology_nm: 7,
            area_mm2: Some(750.0),
            power_w: Some(300.0),
            spgemm_gops_reference: 1.48,
        },
        PlatformSpec {
            name: "OuterSPACE",
            compute_units: "256 PEs",
            frequency_ghz: 1.5,
            peak_gflops: 384.0,
            on_chip_memory_mb: 4.0,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 32,
            area_mm2: Some(86.74),
            power_w: Some(24.0),
            spgemm_gops_reference: 2.9,
        },
        PlatformSpec {
            name: "SpArch",
            compute_units: "2x8 Mults, 16x16 Merger",
            frequency_ghz: 1.0,
            peak_gflops: 32.0,
            on_chip_memory_mb: 15.0,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 40,
            area_mm2: Some(28.49),
            power_w: Some(9.26),
            spgemm_gops_reference: 10.4,
        },
        PlatformSpec {
            name: "Gamma",
            compute_units: "32 PEs Radix-64",
            frequency_ghz: 1.0,
            peak_gflops: 32.0,
            on_chip_memory_mb: 3.0,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 45,
            area_mm2: Some(30.6),
            power_w: None,
            spgemm_gops_reference: 16.5,
        },
        PlatformSpec {
            name: "NeuraChip Tile-4",
            compute_units: "2x4 NeuraCores",
            frequency_ghz: 1.0,
            peak_gflops: 8.0,
            on_chip_memory_mb: 0.75,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 7,
            area_mm2: Some(2.37),
            power_w: Some(11.46),
            spgemm_gops_reference: 5.15,
        },
        PlatformSpec {
            name: "NeuraChip Tile-16",
            compute_units: "2x16 NeuraCores",
            frequency_ghz: 1.0,
            peak_gflops: 32.0,
            on_chip_memory_mb: 3.0,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 7,
            area_mm2: Some(10.2),
            power_w: Some(16.06),
            spgemm_gops_reference: 24.75,
        },
        PlatformSpec {
            name: "NeuraChip Tile-64",
            compute_units: "2x64 NeuraCores",
            frequency_ghz: 1.0,
            peak_gflops: 128.0,
            on_chip_memory_mb: 12.0,
            off_chip_bandwidth_gbps: 128.0,
            technology_nm: 7,
            area_mm2: Some(35.26),
            power_w: Some(24.22),
            spgemm_gops_reference: 30.69,
        },
    ]
}

impl PlatformSpec {
    /// Energy efficiency in GOPS/W at the reference throughput (Table 5).
    pub fn energy_efficiency(&self) -> Option<f64> {
        self.power_w.map(|p| self.spgemm_gops_reference / p)
    }

    /// Area efficiency in GOPS/mm² at the reference throughput (Table 5).
    pub fn area_efficiency(&self) -> Option<f64> {
        self.area_mm2.map(|a| self.spgemm_gops_reference / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_has_all_ten_platforms() {
        let specs = table5_specs();
        assert_eq!(specs.len(), 10);
        let names: std::collections::HashSet<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn neurachip_tile16_matches_table5_derived_metrics() {
        let specs = table5_specs();
        let t16 = specs.iter().find(|s| s.name == "NeuraChip Tile-16").unwrap();
        assert!((t16.energy_efficiency().unwrap() - 1.541).abs() < 0.01);
        assert!((t16.area_efficiency().unwrap() - 2.426).abs() < 0.01);
    }

    #[test]
    fn accelerators_share_the_128_gbps_memory_system() {
        for name in ["OuterSPACE", "SpArch", "Gamma", "NeuraChip Tile-16"] {
            let spec = table5_specs().into_iter().find(|s| s.name == name).unwrap();
            assert!((spec.off_chip_bandwidth_gbps - 128.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn gamma_power_is_unavailable_like_the_paper() {
        let gamma = table5_specs().into_iter().find(|s| s.name == "Gamma").unwrap();
        assert!(gamma.power_w.is_none());
        assert!(gamma.energy_efficiency().is_none());
        assert!(gamma.area_efficiency().is_some());
    }
}
