//! Structural workload summaries consumed by the analytical platform models.

use neura_sparse::{bloat, stats, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Structural summary of one SpGEMM (or GCN aggregation) workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Human-readable workload name (dataset name).
    pub name: String,
    /// Rows of the left operand (graph node count).
    pub rows: usize,
    /// Non-zeros of the left operand (graph edge count).
    pub nnz_a: usize,
    /// Non-zeros of the right operand.
    pub nnz_b: usize,
    /// Intermediate partial products of the multiplication.
    pub partial_products: u64,
    /// Non-zeros of the output matrix.
    pub output_nnz: u64,
    /// Memory bloat percent (Equation 1).
    pub bloat_percent: f64,
    /// Coefficient of variation of the row-degree distribution (imbalance).
    pub row_cv: f64,
    /// Average reduction fan-in (partial products per output element).
    pub avg_fanin: f64,
    /// Sparsity of the left operand in percent.
    pub sparsity_percent: f64,
}

impl WorkloadProfile {
    /// Builds the profile of `A × B`.
    pub fn from_pair(name: &str, a: &CsrMatrix, b: &CsrMatrix) -> Self {
        let report = bloat::analyze(a, b);
        let degrees = stats::degree_stats(a);
        WorkloadProfile {
            name: name.to_string(),
            rows: a.rows(),
            nnz_a: a.nnz(),
            nnz_b: b.nnz(),
            partial_products: report.intermediate_partial_products,
            output_nnz: report.output_nnz as u64,
            bloat_percent: report.bloat_percent,
            row_cv: degrees.coefficient_of_variation,
            avg_fanin: report.average_reduction_fanin(),
            sparsity_percent: a.sparsity() * 100.0,
        }
    }

    /// Builds the profile of the self-product `A × A` (the Table 1 / Figure 16
    /// configuration).
    pub fn from_square(name: &str, a: &CsrMatrix) -> Self {
        Self::from_pair(name, a, a)
    }

    /// Builds the profile of a GCN aggregation `A × X` with `feature_dim`
    /// dense feature columns (every row of `X` is fully populated).
    pub fn from_aggregation(name: &str, a: &CsrMatrix, feature_dim: usize) -> Self {
        let degrees = stats::degree_stats(a);
        let partial_products = a.nnz() as u64 * feature_dim as u64;
        let output_nnz = a.rows() as u64 * feature_dim as u64;
        WorkloadProfile {
            name: name.to_string(),
            rows: a.rows(),
            nnz_a: a.nnz(),
            nnz_b: a.cols() * feature_dim,
            partial_products,
            output_nnz,
            bloat_percent: if output_nnz == 0 {
                0.0
            } else {
                (partial_products as f64 - output_nnz as f64) / output_nnz as f64 * 100.0
            },
            row_cv: degrees.coefficient_of_variation,
            avg_fanin: if output_nnz == 0 {
                0.0
            } else {
                partial_products as f64 / output_nnz as f64
            },
            sparsity_percent: a.sparsity() * 100.0,
        }
    }

    /// Floating-point operations of the multiplication (one multiply and one
    /// add per partial product).
    pub fn flops(&self) -> u64 {
        2 * self.partial_products
    }

    /// Bytes of compulsory input traffic (values + indices of both operands).
    pub fn input_bytes(&self) -> u64 {
        12 * (self.nnz_a as u64 + self.nnz_b as u64)
    }

    /// Bytes of compulsory output traffic.
    pub fn output_bytes(&self) -> u64 {
        12 * self.output_nnz
    }

    /// Bytes of intermediate partial-product traffic an architecture pays if
    /// it spills intermediates off chip (outer-product designs).
    pub fn intermediate_bytes(&self) -> u64 {
        12 * self.partial_products
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::gen::GraphGenerator;

    fn graph() -> CsrMatrix {
        GraphGenerator::power_law(300, 2_000, 2.1, 9).generate().to_csr()
    }

    #[test]
    fn square_profile_is_consistent_with_bloat_analysis() {
        let a = graph();
        let p = WorkloadProfile::from_square("test", &a);
        let report = bloat::analyze_square(&a);
        assert_eq!(p.partial_products, report.intermediate_partial_products);
        assert_eq!(p.output_nnz, report.output_nnz as u64);
        assert!((p.bloat_percent - report.bloat_percent).abs() < 1e-9);
        assert_eq!(p.flops(), 2 * p.partial_products);
    }

    #[test]
    fn aggregation_profile_scales_with_feature_dim() {
        let a = graph();
        let p16 = WorkloadProfile::from_aggregation("agg16", &a, 16);
        let p32 = WorkloadProfile::from_aggregation("agg32", &a, 32);
        assert_eq!(p16.partial_products * 2, p32.partial_products);
        assert_eq!(p16.output_nnz, a.rows() as u64 * 16);
        assert!(p16.avg_fanin > 0.0);
    }

    #[test]
    fn traffic_estimates_are_ordered() {
        let a = graph();
        let p = WorkloadProfile::from_square("t", &a);
        assert!(p.intermediate_bytes() >= p.output_bytes());
        assert!(p.input_bytes() > 0);
    }
}
