//! Bounded FIFO with a modelled latency — the building block of every
//! buffer in the accelerator model.
//!
//! Instruction buffers (NeuraCore/NeuraMem), router packet buffers and the
//! memory controller's read/write queues are all instances of
//! [`LatencyQueue`]: items pushed at cycle `t` become visible to `pop` only
//! at `t + latency`, and the queue refuses pushes beyond its capacity, which
//! is how back-pressure propagates through the modelled pipeline.

use crate::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// Error returned when pushing into a full [`LatencyQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// Capacity of the queue that rejected the push.
    pub capacity: usize,
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue is full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFullError {}

/// A bounded FIFO whose elements become visible `latency` cycles after they
/// were pushed.
#[derive(Debug, Clone)]
pub struct LatencyQueue<T> {
    items: VecDeque<(Cycle, T)>,
    capacity: usize,
    latency: u64,
    now: Cycle,
    total_pushed: u64,
    total_popped: u64,
    occupancy_accumulator: u64,
    occupancy_samples: u64,
    peak_occupancy: usize,
}

impl<T> LatencyQueue<T> {
    /// Creates a queue with the given capacity (in items) and latency (in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, latency: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        LatencyQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            latency,
            now: Cycle::ZERO,
            total_pushed: 0,
            total_popped: 0,
            occupancy_accumulator: 0,
            occupancy_samples: 0,
            peak_occupancy: 0,
        }
    }

    /// Advances the queue's notion of the current cycle and samples occupancy
    /// statistics.  Call once per simulated cycle before popping.
    pub fn advance(&mut self, cycle: Cycle) {
        self.now = self.now.max(cycle);
        self.occupancy_accumulator += self.items.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Pushes an item that becomes visible `latency` cycles after `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the queue already holds `capacity` items.
    pub fn push(&mut self, item: T, cycle: Cycle) -> Result<(), QueueFullError> {
        if self.items.len() >= self.capacity {
            return Err(QueueFullError { capacity: self.capacity });
        }
        self.items.push_back((cycle + self.latency, item));
        self.total_pushed += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest item whose latency has elapsed at the current cycle.
    pub fn pop(&mut self) -> Option<T> {
        match self.items.front() {
            Some((ready, _)) if *ready <= self.now => {
                self.total_popped += 1;
                self.items.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// Peeks at the oldest ready item without removing it.
    pub fn peek(&self) -> Option<&T> {
        match self.items.front() {
            Some((ready, item)) if *ready <= self.now => Some(item),
            _ => None,
        }
    }

    /// Returns `true` when an item is ready to be popped this cycle.
    pub fn has_ready(&self) -> bool {
        self.peek().is_some()
    }

    /// Number of items currently stored (ready or still in flight).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the queue stores no items at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when the queue cannot accept another item.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The modelled latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Total number of items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total number of items ever popped.
    pub fn total_popped(&self) -> u64 {
        self.total_popped
    }

    /// Mean occupancy over all sampled cycles.
    pub fn average_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_accumulator as f64 / self.occupancy_samples as f64
        }
    }

    /// Highest occupancy ever observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_respect_latency() {
        let mut q = LatencyQueue::new(4, 3);
        q.push("a", Cycle(0)).unwrap();
        q.advance(Cycle(0));
        assert!(q.pop().is_none());
        q.advance(Cycle(2));
        assert!(q.pop().is_none());
        q.advance(Cycle(3));
        assert_eq!(q.pop(), Some("a"));
    }

    #[test]
    fn zero_latency_items_are_immediately_ready() {
        let mut q = LatencyQueue::new(2, 0);
        q.push(1, Cycle(5)).unwrap();
        q.advance(Cycle(5));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = LatencyQueue::new(2, 0);
        q.push(1, Cycle(0)).unwrap();
        q.push(2, Cycle(0)).unwrap();
        let err = q.push(3, Cycle(0)).unwrap_err();
        assert_eq!(err, QueueFullError { capacity: 2 });
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
    }

    #[test]
    fn fifo_ordering_is_preserved() {
        let mut q = LatencyQueue::new(8, 1);
        for v in 0..5 {
            q.push(v, Cycle(0)).unwrap();
        }
        q.advance(Cycle(1));
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn statistics_track_traffic() {
        let mut q = LatencyQueue::new(4, 0);
        q.push(1, Cycle(0)).unwrap();
        q.push(2, Cycle(0)).unwrap();
        q.advance(Cycle(0));
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.peak_occupancy(), 2);
        assert!(q.average_occupancy() > 0.0);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = LatencyQueue::new(2, 0);
        q.push(9, Cycle(0)).unwrap();
        q.advance(Cycle(0));
        assert_eq!(q.peek(), Some(&9));
        assert_eq!(q.len(), 1);
        assert!(q.has_ready());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: LatencyQueue<u8> = LatencyQueue::new(0, 1);
    }

    #[test]
    fn time_never_goes_backwards() {
        let mut q = LatencyQueue::new(2, 1);
        q.advance(Cycle(10));
        q.push(1, Cycle(10)).unwrap();
        // Advancing with an older cycle must not rewind the clock.
        q.advance(Cycle(3));
        q.advance(Cycle(11));
        assert_eq!(q.pop(), Some(1));
    }
}
