//! Cycle-level simulation kernel — the reproduction's analogue of NeuraSim.
//!
//! The paper's NeuraSim is a cycle-accurate, multi-threaded, modular
//! simulator inspired by the Structural Simulation Toolkit.  This crate
//! provides the equivalent foundations in safe Rust:
//!
//! * [`Cycle`] — a strongly-typed cycle counter plus frequency conversions,
//! * [`LatencyQueue`] — the bounded, latency-tagged FIFO used for every
//!   instruction buffer, packet buffer and memory queue in the model,
//! * [`Component`] — the trait each modelled hardware block implements,
//! * [`Engine`] — the driver that ticks components until the machine drains,
//! * [`stats`] — counters, histograms and time-series used to produce every
//!   figure in the paper (CPI histograms, utilisation traces, …),
//! * [`LatencyHistogram`] — mergeable log-bucketed percentile state shared
//!   by the serving telemetry and the chip-level profiler,
//! * [`rng`] — a small deterministic RNG so simulations are reproducible
//!   without depending on global random state.
//!
//! The kernel is deliberately synchronous and deterministic: given the same
//! workload and configuration, every run produces bit-identical statistics.
//!
//! # Example
//!
//! ```
//! use neura_sim::{Component, Cycle, Engine, LatencyQueue};
//!
//! /// A toy component that drains a queue, one item per cycle.
//! struct Drain {
//!     queue: LatencyQueue<u32>,
//!     drained: u32,
//! }
//!
//! impl Component for Drain {
//!     fn name(&self) -> &str { "drain" }
//!     fn tick(&mut self, cycle: Cycle) {
//!         self.queue.advance(cycle);
//!         if let Some(v) = self.queue.pop() {
//!             self.drained += v;
//!         }
//!     }
//!     fn is_idle(&self) -> bool { self.queue.is_empty() }
//! }
//!
//! let mut drain = Drain { queue: LatencyQueue::new(8, 2), drained: 0 };
//! for v in 1..=3 {
//!     drain.queue.push(v, Cycle(0)).unwrap();
//! }
//! let mut engine = Engine::new();
//! let report = engine.run(&mut [&mut drain], 100);
//! assert!(report.completed);
//! assert_eq!(drain.drained, 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod component;
pub mod cycle;
pub mod engine;
pub mod latency;
pub mod queue;
pub mod rng;
pub mod stats;

pub use component::Component;
pub use cycle::Cycle;
pub use engine::{Engine, RunReport};
pub use latency::{LatencyHistogram, RELATIVE_ERROR_BOUND, SUB_BUCKET_BITS};
pub use queue::{LatencyQueue, QueueFullError};
pub use rng::DeterministicRng;
pub use stats::{Counter, Histogram, StatsRegistry};
