//! Strongly-typed cycle counter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A clock-cycle timestamp.
///
/// All NeuraChip configurations run at 1 GHz (Table 3), so a cycle count
/// converts directly to nanoseconds; [`Cycle::to_seconds`] takes the
/// frequency explicitly so other clock domains can be modelled too.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero timestamp.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The next cycle.
    #[must_use]
    pub fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }

    /// Converts the cycle count to seconds at the given clock frequency (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not finite and positive.
    pub fn to_seconds(self, frequency_hz: f64) -> f64 {
        assert!(frequency_hz.is_finite() && frequency_hz > 0.0, "clock frequency must be positive");
        self.0 as f64 / frequency_hz
    }

    /// Saturating difference between two timestamps.
    #[must_use]
    pub fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.checked_sub(rhs.0).expect("cycle subtraction underflow")
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let c = Cycle(10);
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(15) - c, 5);
        assert_eq!(c.next(), Cycle(11));
        let mut d = c;
        d += 3;
        assert_eq!(d, Cycle(13));
    }

    #[test]
    fn to_seconds_uses_frequency() {
        let c = Cycle(2_000_000_000);
        assert!((c.to_seconds(1e9) - 2.0).abs() < 1e-12);
        assert!((c.to_seconds(2e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn to_seconds_rejects_zero_frequency() {
        Cycle(1).to_seconds(0.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycle(1).saturating_sub(Cycle(5)), 0);
        assert_eq!(Cycle(9).saturating_sub(Cycle(5)), 4);
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(Cycle::from(7u64).to_string(), "cycle 7");
        assert_eq!(Cycle(42).as_u64(), 42);
        assert_eq!(Cycle::ZERO, Cycle::default());
    }
}
