//! The simulation driver.
//!
//! The [`Engine`] advances a set of [`Component`]s cycle by cycle until the
//! whole machine is idle (every component reports [`Component::is_idle`])
//! or a cycle limit is reached.  It also tracks aggregate busy/idle cycles,
//! which feed the utilisation metrics of Figure 11.

use crate::{Component, Cycle};
use serde::{Deserialize, Serialize};

/// Outcome of an [`Engine::run`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Cycle at which the run stopped (total simulated cycles).
    pub cycles: u64,
    /// Whether the machine drained before hitting the cycle limit.
    pub completed: bool,
    /// Sum over components of cycles in which the component was busy.
    pub busy_component_cycles: u64,
    /// Sum over components of cycles in which the component was idle.
    pub idle_component_cycles: u64,
}

impl RunReport {
    /// Average utilisation across all components, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_component_cycles + self.idle_component_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_component_cycles as f64 / total as f64
        }
    }
}

/// Drives a collection of components.
#[derive(Debug, Default)]
pub struct Engine {
    current: Cycle,
}

impl Engine {
    /// Creates an engine starting at cycle zero.
    pub fn new() -> Self {
        Engine { current: Cycle::ZERO }
    }

    /// The engine's current cycle.
    pub fn current_cycle(&self) -> Cycle {
        self.current
    }

    /// Runs until every component is idle or `max_cycles` have elapsed.
    ///
    /// Components are ticked in the order given, once per cycle; the order
    /// is part of the model (e.g. dispatcher before cores before memories)
    /// and is chosen by the caller.
    pub fn run(&mut self, components: &mut [&mut dyn Component], max_cycles: u64) -> RunReport {
        let mut busy = 0u64;
        let mut idle = 0u64;
        let start = self.current;
        let mut completed = false;

        while self.current.saturating_sub(start) < max_cycles {
            if components.iter().all(|c| c.is_idle()) {
                completed = true;
                break;
            }
            for component in components.iter_mut() {
                component.tick(self.current);
                if component.is_busy() {
                    busy += 1;
                } else {
                    idle += 1;
                }
            }
            self.current += 1;
        }
        // A final check so that a machine that drains exactly at the limit
        // still counts as complete.
        if !completed && components.iter().all(|c| c.is_idle()) {
            completed = true;
        }

        RunReport {
            cycles: self.current.saturating_sub(start),
            completed,
            busy_component_cycles: busy,
            idle_component_cycles: idle,
        }
    }

    /// Runs a single closure-based step function until it reports idle or the
    /// cycle budget is exhausted.  Useful for models that are not expressed
    /// as a flat component list.
    pub fn run_with<F>(&mut self, mut step: F, max_cycles: u64) -> RunReport
    where
        F: FnMut(Cycle) -> bool,
    {
        let start = self.current;
        let mut completed = false;
        while self.current.saturating_sub(start) < max_cycles {
            let idle = step(self.current);
            self.current += 1;
            if idle {
                completed = true;
                break;
            }
        }
        RunReport {
            cycles: self.current.saturating_sub(start),
            completed,
            busy_component_cycles: 0,
            idle_component_cycles: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyQueue;

    struct Producer {
        to_send: u32,
        out: Vec<u32>,
    }

    impl Component for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn tick(&mut self, _cycle: Cycle) {
            if self.to_send > 0 {
                self.out.push(self.to_send);
                self.to_send -= 1;
            }
        }
        fn is_idle(&self) -> bool {
            self.to_send == 0
        }
    }

    #[test]
    fn run_terminates_when_all_idle() {
        let mut p = Producer { to_send: 5, out: Vec::new() };
        let mut engine = Engine::new();
        let report = engine.run(&mut [&mut p], 100);
        assert!(report.completed);
        assert_eq!(p.out.len(), 5);
        assert!(report.cycles >= 5);
        assert!(report.cycles < 100);
    }

    #[test]
    fn run_respects_cycle_limit() {
        let mut p = Producer { to_send: 1_000, out: Vec::new() };
        let mut engine = Engine::new();
        let report = engine.run(&mut [&mut p], 10);
        assert!(!report.completed);
        assert_eq!(report.cycles, 10);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut p = Producer { to_send: 4, out: Vec::new() };
        let mut engine = Engine::new();
        let report = engine.run(&mut [&mut p], 100);
        assert!(report.utilization() > 0.0);
        assert!(report.utilization() <= 1.0);
    }

    #[test]
    fn engine_cycle_advances_across_runs() {
        let mut engine = Engine::new();
        let mut p = Producer { to_send: 2, out: Vec::new() };
        engine.run(&mut [&mut p], 100);
        let after_first = engine.current_cycle();
        let mut q = Producer { to_send: 2, out: Vec::new() };
        engine.run(&mut [&mut q], 100);
        assert!(engine.current_cycle() > after_first);
    }

    #[test]
    fn run_with_closure_counts_cycles() {
        let mut engine = Engine::new();
        let mut remaining = 7u32;
        let report = engine.run_with(
            |_cycle| {
                remaining = remaining.saturating_sub(1);
                remaining == 0
            },
            100,
        );
        assert!(report.completed);
        assert_eq!(report.cycles, 7);
    }

    #[test]
    fn queue_backed_component_drains() {
        struct Sink {
            queue: LatencyQueue<u8>,
            got: Vec<u8>,
        }
        impl Component for Sink {
            fn name(&self) -> &str {
                "sink"
            }
            fn tick(&mut self, cycle: Cycle) {
                self.queue.advance(cycle);
                if let Some(v) = self.queue.pop() {
                    self.got.push(v);
                }
            }
            fn is_idle(&self) -> bool {
                self.queue.is_empty()
            }
        }
        let mut sink = Sink { queue: LatencyQueue::new(8, 3), got: Vec::new() };
        for v in 0..4u8 {
            sink.queue.push(v, Cycle(0)).unwrap();
        }
        let mut engine = Engine::new();
        let report = engine.run(&mut [&mut sink], 50);
        assert!(report.completed);
        assert_eq!(sink.got, vec![0, 1, 2, 3]);
    }
}
