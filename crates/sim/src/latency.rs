//! A mergeable log-bucketed latency histogram.
//!
//! Grew up in `neura_serve::telemetry` as the percentile state behind the
//! windowed serving timeline; it lives here in the simulation kernel so
//! the chip-level profiler can reuse the same mergeable state for hop and
//! DRAM-latency distributions without inverting the crate layering
//! (`neura_serve` sits *above* `neura_chip`). `neura_serve` re-exports it,
//! so existing callers are unaffected.

use std::collections::BTreeMap;

/// Mantissa bits that subdivide each power-of-two latency range into
/// `2^SUB_BUCKET_BITS` log-spaced histogram buckets.
pub const SUB_BUCKET_BITS: u32 = 7;

/// How far a bucket's index reaches into the float's bit pattern.
const BUCKET_SHIFT: u32 = 52 - SUB_BUCKET_BITS;

/// The histogram's proven relative error: a bucket covering `[lo, hi)`
/// has width `hi − lo = 2^(e − 7)` where `2^e ≤ lo`, so the bucket
/// midpoint sits within `2^(e − 8) ≤ value / 256` of any member value.
/// Holds for every normal value (all real latencies); values below
/// `f64::MIN_POSITIVE` collapse towards zero with absolute error under
/// `1e-307`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 256.0;

/// A mergeable log-bucketed latency histogram.
///
/// Values map to buckets by truncating the `f64` bit pattern to its
/// exponent plus the top [`SUB_BUCKET_BITS`] mantissa bits — an
/// integer-only, platform-independent mapping that keeps bucket order
/// equal to value order. Percentiles are nearest-rank over the bucket
/// counts and report the bucket midpoint, which is provably within
/// [`RELATIVE_ERROR_BOUND`] of the exact-sort percentile.
/// [`Self::merge`] adds bucket counts, so the histogram of a
/// concatenated stream equals the merge of its parts' histograms —
/// the property windowed percentiles and the future fragment-merge
/// engine both rely on. (Integers up to `2^(SUB_BUCKET_BITS + 1)` land
/// in distinct buckets and are reported exactly-ranked, which is why
/// the chip profiler can also feed it small integer counts like NoC hop
/// distances.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u32, u64>,
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index of a non-negative finite value.
    fn bucket_of(value: f64) -> u32 {
        (value.to_bits() >> BUCKET_SHIFT) as u32
    }

    /// The midpoint of a bucket's value range (its reported percentile
    /// representative). Bucket 0 holds exact zeros and reports 0.
    fn representative(bucket: u32) -> f64 {
        if bucket == 0 {
            return 0.0;
        }
        let lower = f64::from_bits(u64::from(bucket) << BUCKET_SHIFT);
        let upper = f64::from_bits(u64::from(bucket + 1) << BUCKET_SHIFT);
        (lower + upper) / 2.0
    }

    /// Records one latency observation.
    ///
    /// # Panics
    ///
    /// Panics when `value` is negative or non-finite — a latency can be
    /// neither, so feeding one in is a caller bug worth failing loudly on.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `count` observations of the same latency.
    ///
    /// # Panics
    ///
    /// As [`Self::record`].
    pub fn record_n(&mut self, value: f64, count: u64) {
        assert!(value >= 0.0 && value.is_finite(), "latency {value} is not a non-negative real");
        if count == 0 {
            return;
        }
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += count;
        self.total += count;
    }

    /// Adds every bucket of `other` into `self` — exact, order-free, and
    /// equivalent to having recorded both streams into one histogram.
    pub fn merge(&mut self, other: &Self) {
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Nearest-rank percentile (0 when empty), reported as the owning
    /// bucket's midpoint — within [`RELATIVE_ERROR_BOUND`] of the
    /// exact-sort percentile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct ≤ 100`.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be within (0, 100]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((pct / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&bucket, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Self::representative(bucket);
            }
        }
        unreachable!("cumulative bucket counts reach the total")
    }

    /// Several percentiles (each as [`Self::percentile`]).
    pub fn percentiles(&self, pcts: &[f64]) -> Vec<f64> {
        pcts.iter().map(|&pct| self.percentile(pct)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile by sorting, the histogram's ground
    /// truth.
    fn exact_percentile(values: &[f64], pct: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// A deterministic pseudo-random latency stream spanning five orders
    /// of magnitude (SplitMix64 steps, no external RNG).
    fn latencies(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                1e-4 * (10.0f64).powf(unit * 5.0)
            })
            .collect()
    }

    #[test]
    fn percentiles_sit_within_the_relative_error_bound() {
        for seed in [1, 7, 42] {
            let values = latencies(seed, 2_000);
            let mut histogram = LatencyHistogram::new();
            for &v in &values {
                histogram.record(v);
            }
            assert_eq!(histogram.count(), values.len() as u64);
            for pct in [10.0, 50.0, 90.0, 99.0, 100.0] {
                let exact = exact_percentile(&values, pct);
                let approx = histogram.percentile(pct);
                assert!(
                    (approx - exact).abs() <= exact * RELATIVE_ERROR_BOUND,
                    "p{pct}: histogram {approx} vs exact {exact} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn merge_of_split_streams_equals_the_concatenated_histogram() {
        let values = latencies(99, 1_501);
        for split in [0, 1, 750, 1_500, 1_501] {
            let mut left = LatencyHistogram::new();
            let mut right = LatencyHistogram::new();
            for &v in &values[..split] {
                left.record(v);
            }
            for &v in &values[split..] {
                right.record(v);
            }
            let mut whole = LatencyHistogram::new();
            for &v in &values {
                whole.record(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "merge at {split} diverges from the concatenated stream");
        }
    }

    #[test]
    fn empty_and_zero_behave() {
        let mut histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile(99.0), 0.0);
        histogram.record_n(0.0, 3);
        assert_eq!(histogram.percentile(50.0), 0.0, "exact zeros report zero");
        histogram.record(1.0);
        assert_eq!(histogram.count(), 4);
        assert!(histogram.percentile(100.0) > 0.9);
    }

    #[test]
    #[should_panic(expected = "not a non-negative real")]
    fn negative_latencies_are_rejected() {
        LatencyHistogram::new().record(-1.0);
    }

    #[test]
    fn bucket_order_matches_value_order() {
        let values = latencies(5, 300);
        for pair in values.windows(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            assert!(LatencyHistogram::bucket_of(a) <= LatencyHistogram::bucket_of(b));
        }
    }

    #[test]
    fn small_integers_rank_exactly() {
        // Hop counts and queue depths are small integers; each one gets
        // its own bucket, so percentiles over them are exact ranks.
        let mut histogram = LatencyHistogram::new();
        for hops in 0..=16u64 {
            histogram.record_n(hops as f64, hops + 1);
        }
        assert_eq!(histogram.percentile(100.0).round() as u64, 16);
        for hops in 1..=16u64 {
            // Aim mid-rank (rank − ½) so the pct → rank round trip cannot
            // drift across a bucket boundary by a floating-point ulp.
            let rank: u64 = (0..=hops).map(|h| h + 1).sum();
            let pct = (rank as f64 - 0.5) / histogram.count() as f64 * 100.0;
            assert_eq!(histogram.percentile(pct).round() as u64, hops);
        }
    }
}
