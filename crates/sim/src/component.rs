//! The trait implemented by every modelled hardware block.

use crate::Cycle;

/// A hardware block advanced one clock cycle at a time.
///
/// The [`Engine`](crate::Engine) calls [`Component::tick`] for every
/// component once per simulated cycle and uses [`Component::is_idle`] to
/// detect quiescence (the point at which all queues are drained and no
/// in-flight work remains).
pub trait Component {
    /// A short, stable name used in statistics and debugging output.
    fn name(&self) -> &str;

    /// Advances the component by one cycle.
    fn tick(&mut self, cycle: Cycle);

    /// Returns `true` when the component holds no in-flight work.
    ///
    /// The simulation terminates once *every* component reports idle, so an
    /// implementation that never returns `true` will run until the engine's
    /// cycle limit.
    fn is_idle(&self) -> bool;

    /// Optional per-component busy indicator for utilisation statistics.
    ///
    /// Defaults to the negation of [`Component::is_idle`].
    fn is_busy(&self) -> bool {
        !self.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown {
        remaining: u32,
    }

    impl Component for CountDown {
        fn name(&self) -> &str {
            "countdown"
        }
        fn tick(&mut self, _cycle: Cycle) {
            self.remaining = self.remaining.saturating_sub(1);
        }
        fn is_idle(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn default_busy_is_not_idle() {
        let c = CountDown { remaining: 2 };
        assert!(c.is_busy());
        let done = CountDown { remaining: 0 };
        assert!(!done.is_busy());
    }

    #[test]
    fn components_are_object_safe() {
        let mut c = CountDown { remaining: 1 };
        let dyn_ref: &mut dyn Component = &mut c;
        dyn_ref.tick(Cycle(0));
        assert!(dyn_ref.is_idle());
        assert_eq!(dyn_ref.name(), "countdown");
    }
}
