//! Deterministic pseudo-random number generator.
//!
//! The DRHM mapping reseeds a hash function with a random value after every
//! row of computation (Section 3.5).  To keep simulations reproducible the
//! accelerator model draws those seeds from this small, explicitly-seeded
//! xorshift64* generator instead of a global RNG.

use serde::{Deserialize, Serialize};

/// A deterministic xorshift64* pseudo-random number generator.
///
/// Not cryptographically secure — it only needs to be fast, stateless across
/// platforms, and reproducible from a seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Creates a generator from a seed.  A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        DeterministicRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value reduced to `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Next value as a float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns an odd value, suitable as a multiplicative hash seed
    /// (odd multipliers are invertible modulo powers of two, avoiding the
    /// degenerate all-zero mapping).
    pub fn next_odd(&mut self) -> u64 {
        self.next_u64() | 1
    }
}

impl Default for DeterministicRng {
    fn default() -> Self {
        DeterministicRng::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let a_vals: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let b_vals: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(a_vals, b_vals);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = DeterministicRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DeterministicRng::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = DeterministicRng::new(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_odd_is_odd() {
        let mut rng = DeterministicRng::new(11);
        for _ in 0..100 {
            assert_eq!(rng.next_odd() & 1, 1);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = DeterministicRng::new(123);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
