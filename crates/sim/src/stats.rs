//! Simulation statistics: counters, histograms and a registry.
//!
//! Every figure in the paper is a view over statistics of this kind:
//! Figure 11 plots counters (stall cycles, busy cycles, in-flight
//! instructions), Figures 14/15 plot binned histograms of per-instruction
//! cycle counts, Figures 12/13 plot per-resource work histograms.  The
//! registry replaces NeuraSim's MongoDB back-end with an in-memory,
//! serde-serialisable store.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn increment(&mut self) {
        self.value += 1;
    }

    /// Adds `amount`.
    pub fn add(&mut self, amount: u64) {
        self.value += amount;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A fixed-bin histogram over `u64` samples (e.g. cycles-per-instruction).
///
/// Bins are `[0, width)`, `[width, 2·width)`, …; samples at or beyond the
/// last bin's lower bound are clamped into the final (overflow) bin, matching
/// the "475-500+" bins in the paper's CPI histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `bin_count` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0` or `bin_count == 0`.
    pub fn new(bin_width: u64, bin_count: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bin_count > 0, "bin count must be positive");
        Histogram { bin_width, bins: vec![0; bin_count], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = ((sample / self.bin_width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Bin counts normalised to percentages of all samples (the y-axis of
    /// Figures 14 and 15).
    pub fn percentages(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 * 100.0 / self.count as f64).collect()
    }

    /// Labels of the bins, e.g. `"0-25"`, `"25-50"`, …, `"475-500+"`.
    pub fn bin_labels(&self) -> Vec<String> {
        (0..self.bins.len())
            .map(|i| {
                let lo = i as u64 * self.bin_width;
                let hi = lo + self.bin_width;
                if i + 1 == self.bins.len() {
                    format!("{lo}-{hi}+")
                } else {
                    format!("{lo}-{hi}")
                }
            })
            .collect()
    }

    /// Merges another histogram with identical bin geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin width or bin count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths must match to merge");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts must match to merge");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate percentile (0–100) computed from the binned data.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (i as u64 + 1) * self.bin_width;
            }
        }
        self.bins.len() as u64 * self.bin_width
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Returns the counter with the given name, creating it if necessary.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Returns the value of a counter, or 0 when it does not exist.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::value)
    }

    /// Returns the histogram with the given name, creating it with the given
    /// shape if necessary.
    pub fn histogram(&mut self, name: &str, bin_width: u64, bin_count: usize) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bin_width, bin_count))
    }

    /// Returns a histogram if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, c)| (name.as_str(), c.value()))
    }

    /// Merges another registry into this one (counters add, histograms merge bin-wise).
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (name, counter) in &other.counters {
            self.counters.entry(name.clone()).or_default().add(counter.value());
        }
        for (name, hist) in &other.histograms {
            let entry = self
                .histograms
                .entry(name.clone())
                .or_insert_with(|| Histogram::new(hist.bin_width, hist.bins.len()));
            if entry.bin_width == hist.bin_width && entry.bins.len() == hist.bins.len() {
                for (a, b) in entry.bins.iter_mut().zip(hist.bins.iter()) {
                    *a += b;
                }
                entry.count += hist.count;
                entry.sum += hist.sum;
                entry.min = entry.min.min(hist.min);
                entry.max = entry.max.max(hist.max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.increment();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(25, 4); // bins: 0-25, 25-50, 50-75, 75-100+
        h.record(0);
        h.record(24);
        h.record(25);
        h.record(80);
        h.record(1000); // overflow clamps to last bin
        assert_eq!(h.bins(), &[2, 1, 0, 2]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let mut h = Histogram::new(10, 5);
        for v in [1, 2, 3, 15, 47] {
            h.record(v);
        }
        let total: f64 = h.percentages().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_labels_mark_overflow_bin() {
        let h = Histogram::new(50, 3);
        assert_eq!(h.bin_labels(), vec!["0-50", "50-100", "100-150+"]);
    }

    #[test]
    fn histogram_mean_and_percentile() {
        let mut h = Histogram::new(10, 10);
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert!(h.percentile(50.0) <= h.percentile(100.0));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.percentages(), vec![0.0; 4]);
    }

    #[test]
    fn registry_creates_on_demand_and_merges() {
        let mut a = StatsRegistry::new();
        a.counter("stall_cycles").add(5);
        a.histogram("cpi", 25, 4).record(30);

        let mut b = StatsRegistry::new();
        b.counter("stall_cycles").add(7);
        b.counter("busy_cycles").add(2);
        b.histogram("cpi", 25, 4).record(80);

        a.merge(&b);
        assert_eq!(a.counter_value("stall_cycles"), 12);
        assert_eq!(a.counter_value("busy_cycles"), 2);
        assert_eq!(a.counter_value("missing"), 0);
        let h = a.get_histogram("cpi").unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        let _ = Histogram::new(0, 3);
    }
}
