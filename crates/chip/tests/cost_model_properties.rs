//! Property tests of the analytic fast-path cost model: the guarantees
//! `neura_chip::analytic` documents, checked over generated workloads and
//! every (tile × HBM preset × MMH tile) configuration — strict
//! positivity, determinism, monotonicity in `nnz` and under proportional
//! workload scaling, frequency-independence of cycle estimates, and the
//! pinned error bound against the cycle oracle on a seeded sample of the
//! paper-scale validation grid.

use neura_chip::accelerator::Accelerator;
use neura_chip::analytic::{mmh_tile_index, AnalyticModel, WorkloadFeatures};
use neura_chip::config::{ChipConfig, HbmPreset, TileSize};
use neura_sparse::DatasetCatalog;
use proptest::prelude::*;

/// Every configuration axis the model claims to price: tile tier, HBM
/// preset and MMH tile height.
fn arb_config() -> impl Strategy<Value = ChipConfig> {
    (0usize..TileSize::ALL.len(), 0usize..HbmPreset::ALL.len(), 0usize..4).prop_map(
        |(tile, hbm, mmh)| {
            ChipConfig::for_tile_size(TileSize::ALL[tile])
                .with_hbm_preset(HbmPreset::ALL[hbm])
                .with_mmh_tile([1u8, 2, 4, 8][mmh])
        },
    )
}

/// Arbitrary workload features. Deliberately looser than anything a real
/// matrix produces (fields are only weakly coherent): the structural
/// guarantees must hold for any feature vector, not just realistic ones.
fn arb_workload() -> impl Strategy<Value = WorkloadFeatures> {
    (1u64..5_000, 0u64..200_000, 0u64..2_000_000, 0u64..500_000, 0u64..100_000, 0u64..5_000)
        .prop_map(|(rows, nnz, partial_products, output_nnz, hub, cols)| WorkloadFeatures {
            rows,
            nnz,
            partial_products,
            output_nnz,
            max_row_pp: hub.min(partial_products),
            active_cols: cols.min(rows),
            mmh_instructions: [nnz, nnz.div_ceil(2), nnz.div_ceil(4), nnz.div_ceil(8)],
        })
}

proptest! {
    /// Estimates are strictly positive and finite for any workload on any
    /// configuration, in both the f64 and the rounded integer shape.
    #[test]
    fn estimates_are_strictly_positive_and_finite(
        config in arb_config(),
        w in arb_workload(),
    ) {
        let model = AnalyticModel::calibrated();
        let cycles = model.cycles(&config, &w);
        prop_assert!(cycles.is_finite());
        prop_assert!(cycles >= 1.0);
        prop_assert!(model.class_cycles(&config, &w) >= 1);
        let seconds = model.seconds(&config, &w);
        prop_assert!(seconds.is_finite() && seconds > 0.0);
    }

    /// Pure arithmetic, no global state: pricing the same pair twice is
    /// bitwise identical.
    #[test]
    fn estimates_are_deterministic(config in arb_config(), w in arb_workload()) {
        let model = AnalyticModel::calibrated();
        prop_assert_eq!(
            model.cycles(&config, &w).to_bits(),
            model.cycles(&config, &w).to_bits()
        );
        prop_assert_eq!(model.class_cycles(&config, &w), model.class_cycles(&config, &w));
    }

    /// Monotone non-decreasing in `nnz` at a fixed configuration and
    /// fixed everything-else: the fitted `nnz` coefficient is constrained
    /// non-negative, so more edges never price cheaper.
    #[test]
    fn more_nnz_never_prices_cheaper(
        config in arb_config(),
        w in arb_workload(),
        extra in 1u64..1_000_000,
    ) {
        let model = AnalyticModel::calibrated();
        let bigger = WorkloadFeatures { nnz: w.nnz + extra, ..w };
        prop_assert!(model.cycles(&config, &bigger) >= model.cycles(&config, &w));
    }

    /// Monotone under proportional request scaling: every feature is
    /// linear in its field and the hinge preserves ordering, so a request
    /// scaled k× in every dimension never prices cheaper.
    #[test]
    fn scaled_up_request_never_prices_cheaper(
        config in arb_config(),
        w in arb_workload(),
        k in 1u64..16,
    ) {
        let model = AnalyticModel::calibrated();
        let scaled = WorkloadFeatures {
            rows: w.rows * k,
            nnz: w.nnz * k,
            partial_products: w.partial_products * k,
            output_nnz: w.output_nnz * k,
            max_row_pp: w.max_row_pp * k,
            active_cols: w.active_cols * k,
            mmh_instructions: w.mmh_instructions.map(|i| i * k),
        };
        prop_assert!(model.cycles(&config, &scaled) >= model.cycles(&config, &w));
    }

    /// Cycle estimates never depend on clock frequency (only seconds do),
    /// and they only read the MMH-instruction slot the config selects.
    #[test]
    fn cycles_are_frequency_independent(
        config in arb_config(),
        w in arb_workload(),
        ghz in 0.5f64..4.0,
    ) {
        let model = AnalyticModel::calibrated();
        let clocked = config.clone().with_frequency_ghz(ghz);
        prop_assert_eq!(
            model.cycles(&config, &w).to_bits(),
            model.cycles(&clocked, &w).to_bits()
        );
        let mut other_slots = w;
        let keep = mmh_tile_index(config.mmh_tile);
        for (i, slot) in other_slots.mmh_instructions.iter_mut().enumerate() {
            if i != keep {
                *slot = slot.wrapping_mul(3) + 17;
            }
        }
        prop_assert_eq!(
            model.cycles(&config, &w).to_bits(),
            model.cycles(&config, &other_slots).to_bits()
        );
    }
}

/// Regenerates a dataset's paper-scale cycle-simulator matrix: the same
/// deterministic recipe as `neura_bench::sim_matrix_at_fidelity` at
/// shrink 1 without the smoke multiplier (this crate sits below
/// `neura_bench`, so the formula is restated here; the seed and the
/// 512× / [256, 2000] band are pinned by the xval grid).
fn paper_scale_matrix(name: &str) -> neura_sparse::CsrMatrix {
    let dataset = DatasetCatalog::by_name(name).expect("dataset is in the catalog");
    let target_nodes = (dataset.nodes / 512).clamp(256, 2_000);
    let scale = (dataset.nodes / target_nodes).max(1);
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// The pinned error bound holds on a seeded sample of the validation
/// grid: size-matched cells re-priced here against a real cycle-level
/// simulation, each within the xval golden's worst-case bound. (The full
/// 60-cell sweep lives in `xval`; this samples the cheap-to-simulate
/// corner so the bound is re-checked on every `cargo test`.)
#[test]
fn analytic_error_stays_within_pinned_bound_on_seeded_grid() {
    const WORST_BOUND_PCT: f64 = 15.0;
    let cells = [
        ("facebook", TileSize::Tile4, HbmPreset::Hbm2),
        ("wiki-Vote", TileSize::Tile4, HbmPreset::Ddr4),
        ("ca-CondMat", TileSize::Tile4, HbmPreset::Hbm2DualStack),
        ("cage12", TileSize::Tile16, HbmPreset::Hbm2),
        ("m133-b3", TileSize::Tile16, HbmPreset::Ddr4),
    ];
    let model = AnalyticModel::calibrated();
    for (dataset, tile, hbm) in cells {
        let a = paper_scale_matrix(dataset);
        let config = ChipConfig::for_tile_size(tile).with_hbm_preset(hbm);
        let features = WorkloadFeatures::from_square(&a);
        let analytic = model.cycles(&config, &features);
        let mut chip = Accelerator::new(config);
        let oracle = chip.run_spgemm(&a, &a).expect("simulation drains").report.total_cycles;
        let err_pct = (analytic - oracle as f64).abs() / oracle as f64 * 100.0;
        assert!(
            err_pct <= WORST_BOUND_PCT,
            "{dataset}/{}/{}: analytic {analytic:.0} vs cycle {oracle} -> {err_pct:.2}% \
             exceeds the {WORST_BOUND_PCT}% bound",
            tile.label(),
            hbm.name(),
        );
    }
}
