//! Property tests of the opt-in chip profiler: the guarantees
//! `neura_chip::profile` documents, checked over generated
//! (dataset × tile × HBM × window-width) cells — profiling changes
//! nothing about the run it observes, the stall taxonomy and the
//! windowed timeline conserve exactly (buckets sum to the stall
//! counter, busy + stall + idle covers `cores × total_cycles`, window
//! retire counts sum to the report's instruction counters), and the
//! hop distribution carries exactly the NoC's delivered traffic.

use neura_chip::accelerator::{Accelerator, SpgemmRun};
use neura_chip::config::{ChipConfig, HbmPreset, TileSize};
use neura_chip::profile::{Profile, Profiler, StallCause};
use neura_sparse::{CsrMatrix, DatasetCatalog};
use proptest::prelude::*;

/// Datasets cheap enough to cycle-simulate hundreds of times in a test.
const DATASETS: [&str; 3] = ["cora", "wiki-Vote", "facebook"];

/// A small deterministic instance of a catalog dataset (~128 nodes), the
/// same generator recipe the bench harness uses at smoke fidelity.
fn small_matrix(name: &str) -> CsrMatrix {
    let dataset = DatasetCatalog::by_name(name).expect("dataset is in the catalog");
    let scale = (dataset.nodes / 128).max(1);
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// Runs one profiled SpGEMM and returns the run plus its sealed profile.
fn run_profiled(config: ChipConfig, a: &CsrMatrix, window_cycles: u64) -> (SpgemmRun, Profile) {
    let mut profiler = Profiler::new(window_cycles);
    let mut chip = Accelerator::new(config);
    let run = chip.run_spgemm_profiled(a, a, Some(&mut profiler)).expect("simulation drains");
    (run, profiler.into_profile())
}

/// One cell of the test grid: a dataset on a (tile, HBM) configuration.
fn arb_cell() -> impl Strategy<Value = (&'static str, ChipConfig)> {
    (0usize..DATASETS.len(), 0usize..TileSize::ALL.len(), 0usize..HbmPreset::ALL.len()).prop_map(
        |(d, tile, hbm)| {
            let config =
                ChipConfig::for_tile_size(TileSize::ALL[tile]).with_hbm_preset(HbmPreset::ALL[hbm]);
            (DATASETS[d], config)
        },
    )
}

proptest! {
    // Each case runs cycle-level simulations, so the suite trades case
    // count for grid coverage (the axes are small and discrete anyway).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Profiling is invisible to the run it observes: the profiled entry
    /// point produces a bit-identical product matrix and execution report,
    /// and profiling the same run twice yields equal profiles.
    #[test]
    fn profiling_on_is_invisible_to_the_run((dataset, config) in arb_cell()) {
        let a = small_matrix(dataset);
        let baseline =
            Accelerator::new(config.clone()).run_spgemm(&a, &a).expect("simulation drains");
        let (profiled, profile) = run_profiled(config.clone(), &a, 256);
        prop_assert_eq!(&baseline.product, &profiled.product);
        prop_assert_eq!(format!("{:?}", baseline.report), format!("{:?}", profiled.report));
        let (_, again) = run_profiled(config, &a, 256);
        prop_assert_eq!(profile, again);
    }

    /// The conservation invariants hold at any window width: taxonomy
    /// buckets sum to the stall counter, busy + stall + idle (epilogue
    /// included) covers `cores × total_cycles`, the windowed splits match
    /// the report's aggregate counters, window retire counts sum to the
    /// report's instruction counters, and no window is wider than asked.
    #[test]
    fn profile_conserves_cycles_and_instructions(
        (dataset, config) in arb_cell(),
        window_cycles in 1u64..3000,
    ) {
        let a = small_matrix(dataset);
        let (run, profile) = run_profiled(config, &a, window_cycles);
        prop_assert!(profile.check_conservation().is_ok(), "{:?}", profile.check_conservation());
        prop_assert_eq!(profile.total_cycles, run.report.total_cycles);
        prop_assert_eq!(profile.busy, run.report.core_busy_cycles);
        prop_assert_eq!(profile.stall, run.report.core_stall_cycles);
        prop_assert_eq!(profile.idle, run.report.core_idle_cycles);
        prop_assert_eq!(profile.mmh_retired, run.report.mmh_instructions);
        prop_assert_eq!(profile.hacc_retired, run.report.hacc_instructions);
        let bucket_sum: u64 = StallCause::ALL.iter().map(|&c| profile.stall_by_cause(c)).sum();
        prop_assert_eq!(bucket_sum, run.report.core_stall_cycles);
        prop_assert!(profile.windows.iter().all(|w| w.cycles <= window_cycles));
        let covered: u64 = profile.windows.iter().map(|w| w.cycles).sum();
        prop_assert!(covered <= profile.total_cycles, "windows cover at most the run");
    }

    /// The hop distribution is exactly the NoC's delivered traffic: its
    /// mass is the delivered packet count and its weighted total matches
    /// the report's mean hop count (`total_hops = mean × delivered`).
    #[test]
    fn hop_distribution_matches_noc_stats((dataset, config) in arb_cell()) {
        let a = small_matrix(dataset);
        let (run, profile) = run_profiled(config, &a, 512);
        prop_assert_eq!(profile.noc_delivered(), run.report.noc_packets);
        prop_assert_eq!(profile.hops.count(), run.report.noc_packets);
        let total_hops = (run.report.noc_mean_hops * run.report.noc_packets as f64).round() as u64;
        prop_assert_eq!(profile.hops_total(), total_hops);
    }
}

#[test]
#[should_panic(expected = "window width must be positive")]
fn zero_window_width_panics() {
    let _ = Profiler::new(0);
}

#[test]
#[should_panic(expected = "profiler was not run")]
fn unrun_profiler_panics_on_into_profile() {
    let _ = Profiler::new(1024).into_profile();
}
