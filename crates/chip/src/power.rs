//! Area, power and efficiency model (Tables 4 and 5).
//!
//! The paper synthesises the NeuraChip RTL with Cadence Genus against the
//! ASAP7 7-nm library and reports per-component area and average power for
//! the three tile sizes (Table 4).  This module encodes those calibrated
//! per-unit densities and recombines them for arbitrary configurations, so
//! derived metrics (GOPS/W, GOPS/mm²) can be produced for Table 5 and for
//! design-space sweeps.

use crate::config::{ChipConfig, TileSize};
use serde::{Deserialize, Serialize};

/// Area (mm²) and average power (W) of one component class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentCost {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Average power in watts.
    pub power_w: f64,
}

/// Full per-component breakdown for a chip (Table 4 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerAreaBreakdown {
    /// All NeuraCores.
    pub neuracore: ComponentCost,
    /// All NeuraMems (dominated by the HashPad and comparator arrays).
    pub neuramem: ComponentCost,
    /// All on-chip routers.
    pub router: ComponentCost,
    /// All memory controllers.
    pub memory_controller: ComponentCost,
}

impl PowerAreaBreakdown {
    /// Total chip area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.neuracore.area_mm2
            + self.neuramem.area_mm2
            + self.router.area_mm2
            + self.memory_controller.area_mm2
    }

    /// Total average power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.neuracore.power_w
            + self.neuramem.power_w
            + self.router.power_w
            + self.memory_controller.power_w
    }

    /// Energy efficiency in GOPS/W for a given achieved throughput.
    pub fn energy_efficiency(&self, gops: f64) -> f64 {
        if self.total_power_w() == 0.0 {
            0.0
        } else {
            gops / self.total_power_w()
        }
    }

    /// Area efficiency in GOPS/mm² for a given achieved throughput.
    pub fn area_efficiency(&self, gops: f64) -> f64 {
        if self.total_area_mm2() == 0.0 {
            0.0
        } else {
            gops / self.total_area_mm2()
        }
    }
}

/// Table 4 of the paper, reproduced verbatim for the three synthesised
/// configurations.
pub fn table4_reference(tile: TileSize) -> PowerAreaBreakdown {
    match tile {
        TileSize::Tile4 => PowerAreaBreakdown {
            neuracore: ComponentCost { area_mm2: 0.28, power_w: 1.05 },
            neuramem: ComponentCost { area_mm2: 1.22, power_w: 6.85 },
            router: ComponentCost { area_mm2: 0.49, power_w: 2.15 },
            memory_controller: ComponentCost { area_mm2: 0.38, power_w: 1.41 },
        },
        TileSize::Tile16 => PowerAreaBreakdown {
            neuracore: ComponentCost { area_mm2: 2.74, power_w: 1.86 },
            neuramem: ComponentCost { area_mm2: 5.10, power_w: 7.36 },
            router: ComponentCost { area_mm2: 1.98, power_w: 4.88 },
            memory_controller: ComponentCost { area_mm2: 0.38, power_w: 1.96 },
        },
        TileSize::Tile64 => PowerAreaBreakdown {
            neuracore: ComponentCost { area_mm2: 9.36, power_w: 5.76 },
            neuramem: ComponentCost { area_mm2: 18.64, power_w: 11.19 },
            router: ComponentCost { area_mm2: 6.88, power_w: 4.43 },
            memory_controller: ComponentCost { area_mm2: 0.38, power_w: 2.84 },
        },
    }
}

/// Per-unit cost model derived from the Table 4 calibration points.
///
/// Dividing each Table 4 row by the corresponding component count yields a
/// per-unit area/power density; [`PowerModel::breakdown`] re-multiplies those
/// densities by an arbitrary configuration's component counts, which is how
/// the design-space sweeps (Figure 11's power column) are costed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    core_unit: ComponentCost,
    mem_unit: ComponentCost,
    router_unit: ComponentCost,
    controller_unit: ComponentCost,
    /// Static (leakage + clock tree) power fraction applied to the total.
    static_fraction: f64,
}

impl PowerModel {
    /// Builds the per-unit model from the Tile-16 calibration point.
    pub fn calibrated() -> Self {
        let reference = table4_reference(TileSize::Tile16);
        let cfg = ChipConfig::tile_16();
        PowerModel {
            core_unit: ComponentCost {
                area_mm2: reference.neuracore.area_mm2 / cfg.total_cores() as f64,
                power_w: reference.neuracore.power_w / cfg.total_cores() as f64,
            },
            mem_unit: ComponentCost {
                area_mm2: reference.neuramem.area_mm2 / cfg.total_mems() as f64,
                power_w: reference.neuramem.power_w / cfg.total_mems() as f64,
            },
            router_unit: ComponentCost {
                area_mm2: reference.router.area_mm2 / cfg.total_routers() as f64,
                power_w: reference.router.power_w / cfg.total_routers() as f64,
            },
            controller_unit: ComponentCost {
                area_mm2: reference.memory_controller.area_mm2 / cfg.tiles as f64,
                power_w: reference.memory_controller.power_w / cfg.tiles as f64,
            },
            static_fraction: 0.0,
        }
    }

    /// Costs an arbitrary configuration.  For the three named tile sizes the
    /// paper-reported Table 4 numbers are returned exactly; other
    /// configurations are costed from the per-unit densities.
    pub fn breakdown(&self, config: &ChipConfig) -> PowerAreaBreakdown {
        match config.tile_size {
            TileSize::Tile4 | TileSize::Tile16 | TileSize::Tile64
                if *config == ChipConfig::for_tile_size(config.tile_size) =>
            {
                table4_reference(config.tile_size)
            }
            _ => self.scaled_breakdown(config),
        }
    }

    fn scaled_breakdown(&self, config: &ChipConfig) -> PowerAreaBreakdown {
        let scale = |unit: ComponentCost, count: f64| ComponentCost {
            area_mm2: unit.area_mm2 * count,
            power_w: unit.power_w * count * (1.0 + self.static_fraction),
        };
        // The NeuraMem cost scales with HashPad capacity as well as unit count.
        let pad_scale =
            config.mem.hashpad_bytes() as f64 / ChipConfig::tile_16().mem.hashpad_bytes() as f64;
        let mem_count = config.total_mems() as f64 * pad_scale.max(0.25);
        PowerAreaBreakdown {
            neuracore: scale(self.core_unit, config.total_cores() as f64),
            neuramem: scale(self.mem_unit, mem_count),
            router: scale(self.router_unit, config.total_routers() as f64),
            memory_controller: scale(self.controller_unit, config.tiles as f64),
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_totals_match_paper() {
        let t4 = table4_reference(TileSize::Tile4);
        assert!((t4.total_area_mm2() - 2.37).abs() < 0.01);
        assert!((t4.total_power_w() - 11.46).abs() < 0.01);
        let t16 = table4_reference(TileSize::Tile16);
        assert!((t16.total_area_mm2() - 10.2).abs() < 0.01);
        assert!((t16.total_power_w() - 16.06).abs() < 0.01);
        let t64 = table4_reference(TileSize::Tile64);
        assert!((t64.total_area_mm2() - 35.26).abs() < 0.01);
        assert!((t64.total_power_w() - 24.22).abs() < 0.01);
    }

    #[test]
    fn named_configs_reproduce_table4_exactly() {
        let model = PowerModel::calibrated();
        for tile in TileSize::ALL {
            let cfg = ChipConfig::for_tile_size(tile);
            assert_eq!(model.breakdown(&cfg), table4_reference(tile));
        }
    }

    #[test]
    fn neuramem_dominates_area() {
        // The paper: "The majority of the area requirement for NeuraChip is
        // allocated to the NeuraMem unit".
        for tile in TileSize::ALL {
            let b = table4_reference(tile);
            assert!(b.neuramem.area_mm2 > b.neuracore.area_mm2);
            assert!(b.neuramem.area_mm2 > b.router.area_mm2);
            assert!(b.neuramem.area_mm2 > b.memory_controller.area_mm2);
        }
    }

    #[test]
    fn efficiency_metrics_match_table5_for_tile16() {
        // Table 5: Tile-16 achieves 24.75 GOP/s, 1.541 GOPS/W, 2.426 GOPS/mm².
        let b = table4_reference(TileSize::Tile16);
        let gops = 24.75;
        assert!((b.energy_efficiency(gops) - 1.541).abs() < 0.01);
        assert!((b.area_efficiency(gops) - 2.426).abs() < 0.01);
    }

    #[test]
    fn custom_configs_scale_with_component_count() {
        let model = PowerModel::calibrated();
        let mut big = ChipConfig::tile_16();
        big.cores_per_tile *= 2;
        big.mems_per_tile *= 2;
        big.routers_per_tile *= 2;
        let base = model.breakdown(&ChipConfig::tile_16());
        let grown = model.breakdown(&big);
        assert!(grown.total_area_mm2() > base.total_area_mm2());
        assert!(grown.total_power_w() > base.total_power_w());
    }

    #[test]
    fn zero_power_breakdown_is_safe() {
        let empty = PowerAreaBreakdown::default();
        assert_eq!(empty.energy_efficiency(10.0), 0.0);
        assert_eq!(empty.area_efficiency(10.0), 0.0);
    }
}
