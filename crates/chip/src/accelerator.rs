//! The full NeuraChip assembly and its cycle-level execution loop.
//!
//! An [`Accelerator`] instantiates the configured number of NeuraCores and
//! NeuraMems, interleaves them on a 2D-torus NoC, connects one memory
//! controller per tile to an HBM channel, and executes compiled programs by
//! walking the eight-step dataflow of Figure 5:
//!
//! 1. the Dispatcher issues `MMH` instructions to NeuraCores,
//! 2. NeuraCores issue operand reads to their tile's memory controller,
//! 3. the controller coalesces requests and fetches from DRAM,
//! 4. operand data streams back to the cores,
//! 5. cores compute partial products and emit `HACC` instructions,
//! 6. routers carry the `HACC`s to NeuraMems selected by the compute mapping,
//! 7. NeuraMems hash-accumulate the partial products,
//! 8. completed hash-lines are evicted and written back to HBM.

use crate::compiler::{self, Program};
use crate::config::{ChipConfig, EvictionPolicy};
use crate::dispatcher::{DispatchPolicy, Dispatcher};
use crate::isa::HaccInstruction;
use crate::mapping::ComputeMapping;
use crate::neuracore::NeuraCore;
use crate::neuramem::NeuraMem;
use crate::profile::Profiler;
use neura_mem::{MemoryController, MemoryRequest, RequestId};
use neura_noc::{Packet, TorusNetwork, TorusTopology};
use neura_sim::{Cycle, Histogram};
use neura_sparse::{CooMatrix, CsrMatrix, DenseMatrix, SparseError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while running a workload on the accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipError {
    /// The simulation hit its cycle budget before the machine drained.
    Incomplete {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Partial products still unaccounted for.
        outstanding_haccs: u64,
    },
    /// The workload matrices had incompatible shapes.
    Shape(SparseError),
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::Incomplete { cycles, outstanding_haccs } => write!(
                f,
                "simulation did not drain within {cycles} cycles ({outstanding_haccs} partial products outstanding)"
            ),
            ChipError::Shape(e) => write!(f, "workload shape error: {e}"),
        }
    }
}

impl std::error::Error for ChipError {}

impl From<SparseError> for ChipError {
    fn from(value: SparseError) -> Self {
        ChipError::Shape(value)
    }
}

/// Aggregate execution statistics of one program run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// `MMH` instructions executed.
    pub mmh_instructions: u64,
    /// `HACC` instructions (partial products) processed.
    pub hacc_instructions: u64,
    /// Sum of per-core busy cycles.
    pub core_busy_cycles: u64,
    /// Sum of per-core stall (memory wait) cycles.
    pub core_stall_cycles: u64,
    /// Sum of per-core idle cycles.
    pub core_idle_cycles: u64,
    /// Average cycles per `MMH` instruction.
    pub cpi: f64,
    /// `MMH` instructions retired per cycle across the whole chip.
    pub ipc: f64,
    /// Histogram of per-`MMH` execution cycles (Figure 14).
    pub mmh_cpi_histogram: Histogram,
    /// Histogram of `HACC` generation-to-accumulation latency (Figure 15).
    pub hacc_latency_histogram: Histogram,
    /// Partial products generated per NeuraCore (Figure 12 x-axis).
    pub core_work_histogram: Vec<u64>,
    /// Partial products accumulated per NeuraMem (Figure 12 y-axis).
    pub mem_work_histogram: Vec<u64>,
    /// Mean number of in-flight HBM transactions per cycle (memory pressure).
    pub avg_in_flight_mem: f64,
    /// Peak number of in-flight HBM transactions.
    pub peak_in_flight_mem: usize,
    /// Bytes read from HBM.
    pub dram_bytes_read: u64,
    /// Bytes written to HBM.
    pub dram_bytes_written: u64,
    /// Mean HBM request latency.
    pub mean_dram_latency: f64,
    /// NoC packets delivered.
    pub noc_packets: u64,
    /// Mean NoC packet latency.
    pub noc_mean_latency: f64,
    /// Mean NoC hop count of delivered packets.
    pub noc_mean_hops: f64,
    /// Peak HashPad occupancy across all NeuraMems.
    pub peak_hashpad_occupancy: usize,
    /// Cycles lost to a full HashPad.
    pub hashpad_full_stalls: u64,
    /// Hash collisions observed.
    pub hash_collisions: u64,
    /// Hash-line evictions (output elements produced).
    pub evictions: u64,
    /// Wall-clock execution time implied by the cycle count and frequency.
    pub execution_seconds: f64,
    /// Achieved throughput in GOP/s (2 ops per partial product).
    pub gops: f64,
    /// Fraction of cycles in which the average core was busy.
    pub core_utilization: f64,
}

impl ExecutionReport {
    /// Speedup of this run relative to another (ratio of execution times).
    pub fn speedup_over(&self, other: &ExecutionReport) -> f64 {
        if self.execution_seconds == 0.0 {
            0.0
        } else {
            other.execution_seconds / self.execution_seconds
        }
    }
}

/// Result of running an SpGEMM workload: the product matrix plus statistics.
#[derive(Debug, Clone)]
pub struct SpgemmRun {
    /// The numerically accumulated product matrix.
    pub product: CsrMatrix,
    /// Execution statistics.
    pub report: ExecutionReport,
}

/// Result of running a GCN aggregation (sparse × dense) workload.
#[derive(Debug, Clone)]
pub struct AggregationRun {
    /// The aggregated (dense) feature matrix.
    pub aggregated: DenseMatrix,
    /// Execution statistics.
    pub report: ExecutionReport,
}

/// The NeuraChip accelerator model.
#[derive(Debug)]
pub struct Accelerator {
    config: ChipConfig,
    max_cycles_override: Option<u64>,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    pub fn new(config: ChipConfig) -> Self {
        Accelerator { config, max_cycles_override: None }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Overrides the simulation cycle budget (mainly for tests).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles_override = Some(max_cycles);
        self
    }

    /// Runs the SpGEMM `C = A × B` and returns the product with statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Shape`] when the shapes are incompatible and
    /// [`ChipError::Incomplete`] if the simulation fails to drain.
    pub fn run_spgemm(&mut self, a: &CsrMatrix, b: &CsrMatrix) -> Result<SpgemmRun, ChipError> {
        self.run_spgemm_profiled(a, b, None)
    }

    /// [`Self::run_spgemm`] with an optional [`Profiler`] attached.
    ///
    /// With `Some(profiler)` the run loop feeds the profiler once per
    /// cycle (windowed busy/stall/idle attribution, stall taxonomy, hop
    /// and DRAM-latency distributions); call
    /// [`Profiler::into_profile`] afterwards. With `None` this is
    /// exactly [`Self::run_spgemm`]: nothing is constructed and the
    /// simulation is byte-identical.
    ///
    /// # Errors
    ///
    /// As [`Self::run_spgemm`]. On error the profiler is left
    /// unfinalized (there is no complete run to profile).
    pub fn run_spgemm_profiled(
        &mut self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        profiler: Option<&mut Profiler>,
    ) -> Result<SpgemmRun, ChipError> {
        if a.cols() != b.rows() {
            return Err(ChipError::Shape(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            }));
        }
        let program = compiler::compile_spgemm(&a.to_csc(), b, self.config.mmh_tile);
        let (outputs, report) = self.run_program_profiled(&program, profiler)?;
        let mut coo = CooMatrix::new(a.rows(), b.cols());
        for (&tag, &value) in &outputs {
            let (r, c) = program.coords_of(tag);
            coo.push(r, c, value).expect("tag coordinates are in bounds");
        }
        Ok(SpgemmRun { product: coo.to_csr(), report })
    }

    /// Runs the GCN aggregation `A × X` with dense features `X`.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Shape`] when the shapes are incompatible and
    /// [`ChipError::Incomplete`] if the simulation fails to drain.
    pub fn run_aggregation(
        &mut self,
        a: &CsrMatrix,
        features: &DenseMatrix,
    ) -> Result<AggregationRun, ChipError> {
        if a.cols() != features.rows() {
            return Err(ChipError::Shape(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (features.rows(), features.cols()),
            }));
        }
        let program = compiler::compile_aggregation(&a.to_csc(), features, self.config.mmh_tile);
        let (outputs, report) = self.run_program(&program)?;
        let mut aggregated = DenseMatrix::zeros(a.rows(), features.cols());
        for (&tag, &value) in &outputs {
            let (r, c) = program.coords_of(tag);
            *aggregated.get_mut(r, c) = value;
        }
        Ok(AggregationRun { aggregated, report })
    }

    /// Executes a compiled [`Program`] cycle by cycle.
    ///
    /// Returns the accumulated output elements (tag → value) together with
    /// the execution report.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Incomplete`] if the machine fails to drain within
    /// the cycle budget.
    pub fn run_program(
        &mut self,
        program: &Program,
    ) -> Result<(HashMap<u64, f64>, ExecutionReport), ChipError> {
        self.run_program_profiled(program, None)
    }

    /// [`Self::run_program`] with an optional [`Profiler`] attached (see
    /// [`Self::run_spgemm_profiled`] for the contract).
    ///
    /// # Errors
    ///
    /// As [`Self::run_program`].
    pub fn run_program_profiled(
        &mut self,
        program: &Program,
        mut profiler: Option<&mut Profiler>,
    ) -> Result<(HashMap<u64, f64>, ExecutionReport), ChipError> {
        let cfg = &self.config;
        let total_cores = cfg.total_cores();
        let total_mems = cfg.total_mems();

        // --- build the machine ---------------------------------------------
        let mut cores: Vec<NeuraCore> =
            (0..total_cores).map(|i| NeuraCore::new(i, i / cfg.cores_per_tile, cfg.core)).collect();
        for core in &mut cores {
            core.prepare(program.output_shape.1 as u64);
        }
        let mut mems: Vec<NeuraMem> =
            (0..total_mems).map(|i| NeuraMem::new(i, cfg.mem, cfg.eviction)).collect();
        let mut controllers: Vec<MemoryController> = (0..cfg.tiles)
            .map(|t| MemoryController::new(t, cfg.hbm, cfg.mem_queue_capacity))
            .collect();
        let topology = TorusTopology::for_nodes(total_cores + total_mems);
        let mut noc = TorusNetwork::new(topology, cfg.router_buffer)
            .with_links_per_cycle(cfg.core.ports.max(2));
        let mut mapping: Box<dyn ComputeMapping> = cfg.mapping.build(total_mems, cfg.seed);
        let mut dispatcher =
            Dispatcher::new(program, total_cores, DispatchPolicy::LeastLoaded, total_cores.max(4));

        // NoC node ids: cores first, then mems.
        let core_node = |core: usize| core;
        let mem_node = |mem: usize| total_cores + mem;
        let mem_tile = |mem: usize| mem / cfg.mems_per_tile;

        // --- bookkeeping -----------------------------------------------------
        let mut outputs: HashMap<u64, f64> = HashMap::with_capacity(program.output_nnz);
        let mut packet_payloads: HashMap<u64, HaccInstruction> = HashMap::new();
        let mut next_packet_id = 0u64;
        let mut read_owner: HashMap<(usize, RequestId), (usize, usize)> = HashMap::new();
        let mut retry_mem_requests: Vec<(usize, usize, MemoryRequest)> = Vec::new(); // (tile, core, req)
        let mut retry_injections: Vec<(usize, Packet)> = Vec::new(); // (src core, packet)
        let mut retry_accepts: Vec<(usize, HaccInstruction)> = Vec::new(); // (mem, hacc)
        let mut retry_writebacks: Vec<(usize, MemoryRequest)> = Vec::new(); // (tile, req)
        let mut completed_responses: Vec<neura_mem::MemoryResponse> = Vec::new();

        let mut in_flight_samples = 0u128;
        let mut peak_in_flight = 0usize;

        let max_cycles = self
            .max_cycles_override
            .unwrap_or_else(|| 200_000 + program.total_partial_products * 200);

        let mut cycle = 0u64;
        let mut drained = false;
        while cycle < max_cycles {
            let now = Cycle(cycle);
            // When profiling, snapshot the counters whose per-cycle deltas
            // feed the stall taxonomy; `None` takes none of these branches.
            let baselines = profiler.as_deref_mut().map(|prof| {
                prof.begin_cycle(cycle);
                let mems_totals = mems
                    .iter()
                    .map(|m| (m.stats().pad_full_stalls, m.stats().haccs_processed))
                    .fold((0u64, 0u64), |acc, (pads, haccs)| (acc.0 + pads, acc.1 + haccs));
                (dispatcher.stats().dispatched, noc.stats().injection_rejected, mems_totals)
            });

            // (1) Dispatch MMH instructions.
            let can_accept: Vec<bool> = cores.iter().map(NeuraCore::can_accept).collect();
            let load: Vec<usize> = cores.iter().map(NeuraCore::load).collect();
            let _rows_crossed = dispatcher.dispatch_cycle(&can_accept, &load, |core_idx, instr| {
                cores[core_idx].accept(instr)
            });
            if let Some(prof) = profiler.as_deref_mut() {
                let (dispatched_before, _, _) = baselines.expect("snapshot taken when profiling");
                if !dispatcher.is_done() && dispatcher.stats().dispatched == dispatched_before {
                    prof.note_dispatch_starved();
                }
            }

            // Barrier-eviction baseline: completed hash-lines are only
            // released under capacity pressure (the "emergency barrier"),
            // otherwise they stay resident until the end of the program.
            if cfg.eviction == EvictionPolicy::Barrier {
                for mem in &mut mems {
                    if mem.occupancy() * 10 >= cfg.mem.hashlines * 9 {
                        mem.barrier(now);
                    }
                }
            }

            // Retry previously rejected memory requests before new ones.
            retry_mem_requests.retain(|(tile, core_idx, request)| {
                match controllers[*tile].submit(*request, now) {
                    Some(id) => {
                        // Re-associate with the issuing pipeline recorded in the request owner map
                        // (pipeline index was folded into the retry entry's core_idx pair).
                        read_owner.insert((*tile, id), (*core_idx >> 8, *core_idx & 0xFF));
                        false
                    }
                    None => true,
                }
            });

            // (2, 5) Tick the cores: collect memory requests and HACCs.
            for (core_idx, core) in cores.iter_mut().enumerate() {
                let credit = if retry_injections.len() > 256 { 0 } else { cfg.core.ports };
                let out = core.tick(now, credit);
                if let Some(prof) = profiler.as_deref_mut() {
                    prof.record_core_tick(out.outcome, out.mmh_retired);
                }
                let tile = core.tile();
                for req in out.memory_requests {
                    match controllers[tile].submit(req.request, now) {
                        Some(id) => {
                            read_owner.insert((tile, id), (core_idx, req.pipeline));
                        }
                        None => {
                            // Encode (core, pipeline) into one usize for the retry list.
                            retry_mem_requests.push((
                                tile,
                                (core_idx << 8) | req.pipeline,
                                req.request,
                            ));
                        }
                    }
                }
                for hacc in out.haccs {
                    let row = hacc.tag / program.output_shape.1.max(1) as u64;
                    let mem_idx = mapping.map(hacc.tag, row);
                    let packet_id = next_packet_id;
                    next_packet_id += 1;
                    packet_payloads.insert(packet_id, hacc);
                    let packet = Packet::new(
                        packet_id,
                        core_node(core_idx),
                        mem_node(mem_idx),
                        HaccInstruction::BYTES,
                    );
                    if let Err(p) = noc.inject(packet, now) {
                        retry_injections.push((core_idx, p));
                    }
                }
            }

            // Retry NoC injections that were previously refused.
            let mut still_waiting = Vec::new();
            for (core_idx, packet) in retry_injections.drain(..) {
                match noc.inject(packet, now) {
                    Ok(()) => {}
                    Err(p) => still_waiting.push((core_idx, p)),
                }
            }
            retry_injections = still_waiting;
            if let Some(prof) = profiler.as_deref_mut() {
                let (_, rejected_before, _) = baselines.expect("snapshot taken when profiling");
                if noc.stats().injection_rejected > rejected_before {
                    prof.note_noc_backpressure();
                }
            }

            // (6) Advance the NoC.
            noc.tick(now);
            if let Some(prof) = profiler.as_deref_mut() {
                prof.record_noc_in_flight(noc.in_flight() as u64);
            }

            // (7) Deliver HACCs to NeuraMems and tick them.
            let mut still_pending_accepts = Vec::new();
            for (mem_idx, hacc) in retry_accepts.drain(..) {
                if !mems[mem_idx].accept(hacc) {
                    still_pending_accepts.push((mem_idx, hacc));
                }
            }
            retry_accepts = still_pending_accepts;

            for (mem_idx, mem) in mems.iter_mut().enumerate() {
                for packet in noc.drain_delivered(mem_node(mem_idx)) {
                    if let Some(prof) = profiler.as_deref_mut() {
                        prof.record_hops(packet.hops);
                    }
                    let hacc = packet_payloads
                        .remove(&packet.id)
                        .expect("every delivered packet has a registered payload");
                    if !mem.accept(hacc) {
                        retry_accepts.push((mem_idx, hacc));
                    }
                }
                mem.tick(now);
                // (8) Collect evictions and write them back.
                for evicted in mem.drain_evicted() {
                    outputs.insert(evicted.tag, evicted.value);
                    let addr = compiler::layout::OUTPUT_BASE + evicted.tag * 8;
                    let request = MemoryRequest::write(addr, 8);
                    let tile = mem_tile(mem_idx);
                    if controllers[tile].submit(request, now).is_none() {
                        retry_writebacks.push((tile, request));
                    }
                }
            }

            // Retry write-backs rejected earlier.
            retry_writebacks
                .retain(|(tile, request)| controllers[*tile].submit(*request, now).is_none());

            if let Some(prof) = profiler.as_deref_mut() {
                let (_, _, (pads_before, haccs_before)) =
                    baselines.expect("snapshot taken when profiling");
                let mut pads = 0u64;
                let mut haccs = 0u64;
                let mut occupancy = 0u64;
                for mem in &mems {
                    pads += mem.stats().pad_full_stalls;
                    haccs += mem.stats().haccs_processed;
                    occupancy += mem.occupancy() as u64;
                }
                prof.record_mems(occupancy, pads - pads_before, haccs - haccs_before);
            }

            // (3, 4) Tick the memory controllers and deliver read responses.
            completed_responses.clear();
            let mut in_flight_now = 0usize;
            for (tile, controller) in controllers.iter_mut().enumerate() {
                let mut done = Vec::new();
                controller.tick(now, &mut done);
                in_flight_now += controller.in_flight();
                if let Some(prof) = profiler.as_deref_mut() {
                    let (reads, writes) = controller.queue_depths();
                    prof.record_channel(tile, (reads + writes) as u64);
                    for response in &done {
                        prof.record_dram_response(response.latency());
                    }
                }
                for response in done {
                    if response.request.is_read() {
                        if let Some((core_idx, pipeline)) = read_owner.remove(&(tile, response.id))
                        {
                            cores[core_idx].memory_response(pipeline);
                        }
                    }
                    completed_responses.push(response);
                }
            }
            in_flight_samples += in_flight_now as u128;
            peak_in_flight = peak_in_flight.max(in_flight_now);
            if let Some(prof) = profiler.as_deref_mut() {
                prof.record_hbm_in_flight(in_flight_now as u64);
                prof.end_cycle();
            }

            // Termination check.
            let machine_idle = dispatcher.is_done()
                && cores.iter().all(NeuraCore::is_idle)
                && noc.in_flight() == 0
                && retry_injections.is_empty()
                && retry_accepts.is_empty()
                && retry_mem_requests.is_empty()
                && mems.iter().all(|m| m.backlog() == 0)
                && controllers.iter().all(|c| c.pending() == 0);
            if machine_idle {
                // Barrier-mode residue (and any malformed counters) flushes here.
                // The flushed lines still owe their write-back traffic, which is
                // drained in the epilogue below so that deferring evictions
                // (HACC-BE) cannot dodge the output-write cost.
                let mut flush_writes: Vec<(usize, MemoryRequest)> = Vec::new();
                for (mem_idx, mem) in mems.iter_mut().enumerate() {
                    mem.barrier(now);
                    mem.flush(now);
                    for evicted in mem.drain_evicted() {
                        outputs.insert(evicted.tag, evicted.value);
                        let addr = compiler::layout::OUTPUT_BASE + evicted.tag * 8;
                        flush_writes.push((mem_tile(mem_idx), MemoryRequest::write(addr, 8)));
                    }
                }
                retry_writebacks.extend(flush_writes);
                // Epilogue: keep ticking the memory system until every
                // outstanding write-back has been committed to DRAM.
                while (!retry_writebacks.is_empty() || controllers.iter().any(|c| c.pending() > 0))
                    && cycle < max_cycles
                {
                    let now = Cycle(cycle);
                    retry_writebacks.retain(|(tile, request)| {
                        controllers[*tile].submit(*request, now).is_none()
                    });
                    for controller in controllers.iter_mut() {
                        let mut done = Vec::new();
                        controller.tick(now, &mut done);
                        if let Some(prof) = profiler.as_deref_mut() {
                            // Epilogue write-backs count toward the aggregate
                            // DRAM-latency distribution (no window is open).
                            for response in &done {
                                prof.record_dram_response(response.latency());
                            }
                        }
                    }
                    cycle += 1;
                }
                drained = true;
                cycle += 1;
                break;
            }
            cycle += 1;
        }

        if !drained {
            return Err(ChipError::Incomplete {
                cycles: cycle,
                outstanding_haccs: program
                    .total_partial_products
                    .saturating_sub(mems.iter().map(|m| m.stats().haccs_processed).sum::<u64>()),
            });
        }

        // --- assemble the report --------------------------------------------
        let total_cycles = cycle;
        if let Some(prof) = profiler {
            prof.finalize(total_cycles, total_cores as u64, total_mems as u64, cfg.tiles as u64);
        }
        let mut mmh_cpi_histogram = Histogram::new(25, 20);
        let mut hacc_latency_histogram = Histogram::new(50, 20);
        let mut core_busy = 0u64;
        let mut core_stall = 0u64;
        let mut core_idle = 0u64;
        let mut core_work = Vec::with_capacity(total_cores);
        for core in &cores {
            let stats = core.stats();
            core_busy += stats.busy_cycles;
            core_stall += stats.stall_cycles;
            core_idle += stats.idle_cycles;
            core_work.push(stats.haccs_generated);
            mmh_cpi_histogram.merge(core.cpi_histogram());
        }
        let mut mem_work = Vec::with_capacity(total_mems);
        let mut peak_pad = 0usize;
        let mut pad_stalls = 0u64;
        let mut collisions = 0u64;
        let mut evictions = 0u64;
        for mem in &mems {
            let stats = mem.stats();
            mem_work.push(stats.haccs_processed);
            peak_pad = peak_pad.max(stats.peak_occupancy);
            pad_stalls += stats.pad_full_stalls;
            collisions += stats.collisions;
            evictions += stats.evictions;
            hacc_latency_histogram.merge(mem.hacc_latency_histogram());
        }
        let mmh_instructions: u64 = cores.iter().map(|c| c.stats().mmh_completed).sum();
        let hacc_instructions: u64 = mems.iter().map(|m| m.stats().haccs_processed).sum();
        let dram_bytes_read: u64 = controllers.iter().map(|c| c.stats().bytes_read).sum();
        let dram_bytes_written: u64 = controllers.iter().map(|c| c.stats().bytes_written).sum();
        let mean_dram_latency = {
            let completed: u64 = controllers.iter().map(|c| c.stats().completed).sum();
            let latency: u64 = controllers.iter().map(|c| c.stats().total_latency).sum();
            if completed == 0 {
                0.0
            } else {
                latency as f64 / completed as f64
            }
        };
        let execution_seconds = total_cycles as f64 / (self.config.frequency_ghz * 1e9);
        let gops = if execution_seconds > 0.0 {
            2.0 * program.total_partial_products as f64 / execution_seconds / 1e9
        } else {
            0.0
        };
        let report = ExecutionReport {
            total_cycles,
            mmh_instructions,
            hacc_instructions,
            core_busy_cycles: core_busy,
            core_stall_cycles: core_stall,
            core_idle_cycles: core_idle,
            cpi: mmh_cpi_histogram.mean(),
            ipc: if total_cycles == 0 {
                0.0
            } else {
                mmh_instructions as f64 / total_cycles as f64
            },
            mmh_cpi_histogram,
            hacc_latency_histogram,
            core_work_histogram: core_work,
            mem_work_histogram: mem_work,
            avg_in_flight_mem: if total_cycles == 0 {
                0.0
            } else {
                in_flight_samples as f64 / total_cycles as f64
            },
            peak_in_flight_mem: peak_in_flight,
            dram_bytes_read,
            dram_bytes_written,
            mean_dram_latency,
            noc_packets: noc.stats().delivered,
            noc_mean_latency: noc.stats().mean_latency(),
            noc_mean_hops: noc.stats().mean_hops(),
            peak_hashpad_occupancy: peak_pad,
            hashpad_full_stalls: pad_stalls,
            hash_collisions: collisions,
            evictions,
            execution_seconds,
            gops,
            core_utilization: if total_cycles == 0 {
                0.0
            } else {
                core_busy as f64 / (total_cycles as f64 * total_cores as f64)
            },
        };
        Ok((outputs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TileSize;
    use crate::mapping::MappingKind;
    use neura_sparse::gen::{feature_matrix, GraphGenerator};
    use neura_sparse::spgemm;

    fn small_graph(nodes: usize, seed: u64) -> CsrMatrix {
        GraphGenerator::power_law(nodes, nodes * 6, 2.1, seed).generate().to_csr()
    }

    #[test]
    fn spgemm_result_matches_reference() {
        let a = small_graph(48, 1);
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let reference = spgemm::gustavson(&a, &a);
        assert_eq!(run.product.nnz(), reference.nnz());
        let diff = run.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap();
        assert!(diff < 1e-9, "accelerator output diverged by {diff}");
        assert_eq!(run.report.evictions as usize, reference.nnz());
        assert!(run.report.total_cycles > 0);
        assert!(run.report.gops > 0.0);
    }

    #[test]
    fn aggregation_matches_reference_spmm() {
        let a = small_graph(40, 2);
        let x = feature_matrix(a.cols(), 4, 7);
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = chip.run_aggregation(&a, &x).expect("simulation drains");
        let reference = neura_sparse::spmm::spmm(&a, &x).unwrap();
        assert!(run.aggregated.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = CsrMatrix::identity(4);
        let b = CsrMatrix::identity(5);
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        assert!(matches!(chip.run_spgemm(&a, &b), Err(ChipError::Shape(_))));
    }

    #[test]
    fn larger_tiles_run_faster_on_the_same_workload() {
        let a = small_graph(64, 3);
        let mut t4 = Accelerator::new(ChipConfig::tile_4());
        let mut t16 = Accelerator::new(ChipConfig::tile_16());
        let run4 = t4.run_spgemm(&a, &a).unwrap();
        let run16 = t16.run_spgemm(&a, &a).unwrap();
        assert!(
            run16.report.total_cycles < run4.report.total_cycles,
            "Tile-16 ({}) should beat Tile-4 ({})",
            run16.report.total_cycles,
            run4.report.total_cycles
        );
    }

    #[test]
    fn all_mappings_produce_correct_results() {
        let a = small_graph(40, 4);
        let reference = spgemm::gustavson(&a, &a);
        for kind in MappingKind::ALL {
            let mut chip = Accelerator::new(ChipConfig::tile_4().with_mapping(kind));
            let run = chip.run_spgemm(&a, &a).expect("simulation drains");
            let diff = run.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap();
            assert!(diff < 1e-9, "{} mapping diverged by {diff}", kind.name());
        }
    }

    #[test]
    fn drhm_balances_mem_work_better_than_ring() {
        use neura_sparse::stats::imbalance;
        // Load balance is a statistical property of the workload draw, so
        // compare the mappings on their mean peak/mean ratio across several
        // graphs rather than on a single (lucky or unlucky) seed.
        let seeds = [1u64, 2, 3, 4, 5, 6];
        let mean_imbalance = |kind: MappingKind| {
            let total: f64 = seeds
                .iter()
                .map(|&seed| {
                    let a = small_graph(96, seed);
                    let mut chip = Accelerator::new(ChipConfig::tile_16().with_mapping(kind));
                    let run = chip.run_spgemm(&a, &a).unwrap();
                    imbalance(&run.report.mem_work_histogram).0
                })
                .sum();
            total / seeds.len() as f64
        };
        let ring = mean_imbalance(MappingKind::Ring);
        let drhm = mean_imbalance(MappingKind::Drhm);
        assert!(
            drhm <= ring * 1.05,
            "DRHM mean peak/mean {drhm} should not exceed ring hashing {ring}"
        );
    }

    #[test]
    fn barrier_eviction_uses_more_hashpad_than_rolling() {
        let a = small_graph(64, 6);
        let run_with = |policy| {
            let mut chip = Accelerator::new(ChipConfig::tile_4().with_eviction(policy));
            chip.run_spgemm(&a, &a).unwrap().report
        };
        let rolling = run_with(EvictionPolicy::Rolling);
        let barrier = run_with(EvictionPolicy::Barrier);
        assert!(
            barrier.peak_hashpad_occupancy > rolling.peak_hashpad_occupancy,
            "barrier {} vs rolling {}",
            barrier.peak_hashpad_occupancy,
            rolling.peak_hashpad_occupancy
        );
        // Both still produce every output element.
        assert_eq!(barrier.evictions, rolling.evictions);
    }

    #[test]
    fn report_counts_are_internally_consistent() {
        let a = small_graph(48, 7);
        let (_, stats) = spgemm::multiply_counting(&a, &a);
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = chip.run_spgemm(&a, &a).unwrap();
        assert_eq!(run.report.hacc_instructions, stats.multiplications);
        assert_eq!(run.report.core_work_histogram.iter().sum::<u64>(), stats.multiplications);
        assert_eq!(run.report.mem_work_histogram.iter().sum::<u64>(), stats.multiplications);
        assert!(run.report.dram_bytes_read > 0);
        assert!(run.report.dram_bytes_written >= run.report.evictions * 8);
        assert!(run.report.core_utilization > 0.0 && run.report.core_utilization <= 1.0);
    }

    #[test]
    fn incomplete_simulation_is_detected() {
        let a = small_graph(48, 8);
        let mut chip = Accelerator::new(ChipConfig::tile_4()).with_max_cycles(5);
        assert!(matches!(chip.run_spgemm(&a, &a), Err(ChipError::Incomplete { .. })));
    }

    #[test]
    fn config_accessor_reflects_tile_size() {
        let chip = Accelerator::new(ChipConfig::tile_64());
        assert_eq!(chip.config().tile_size, TileSize::Tile64);
    }
}
