//! GCN layer execution on NeuraChip (aggregation + combination).
//!
//! A GCN layer computes `X' = ReLU(A · X · W)` (Equation 2).  The aggregation
//! (`A · X`, sparse × dense) dominates and is executed on the cycle-level
//! accelerator model; the combination (`(A·X) · W`, dense × dense) is charged
//! with a roofline estimate derived from the chip's peak compute and memory
//! bandwidth, reflecting the paper's observation that NeuraChip handles the
//! dense stage with the same NeuraCore/NeuraMem resources.

use crate::accelerator::{Accelerator, ChipError, ExecutionReport};
use crate::config::ChipConfig;
use neura_sparse::{CsrMatrix, DenseMatrix, SparseError};
use serde::{Deserialize, Serialize};

/// Cycle/time breakdown of one GCN layer executed on NeuraChip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcnLayerBreakdown {
    /// Cycles spent in the aggregation (sparse) stage.
    pub aggregation_cycles: u64,
    /// Cycles charged to the combination (dense) stage.
    pub combination_cycles: u64,
    /// End-to-end seconds at the configured frequency.
    pub total_seconds: f64,
    /// Achieved throughput over the whole layer in GOP/s.
    pub gops: f64,
    /// Floating point operations in the aggregation stage.
    pub aggregation_flops: u64,
    /// Floating point operations in the combination stage.
    pub combination_flops: u64,
}

/// Result of running a GCN layer on the accelerator.
#[derive(Debug, Clone)]
pub struct GcnRun {
    /// The layer output `ReLU(A · X · W)`.
    pub output: DenseMatrix,
    /// Detailed report of the simulated aggregation stage.
    pub aggregation_report: ExecutionReport,
    /// Cycle/time breakdown across both stages.
    pub breakdown: GcnLayerBreakdown,
}

/// Estimates the cycles the combination GEMM takes on the given configuration:
/// the maximum of its compute-bound and memory-bound times (roofline).
pub fn combination_cycles(
    config: &ChipConfig,
    rows: usize,
    in_features: usize,
    out_features: usize,
) -> u64 {
    let flops = 2.0 * rows as f64 * in_features as f64 * out_features as f64;
    let peak_flops_per_cycle = config.peak_gflops() / config.frequency_ghz; // flops per cycle
    let compute_cycles = flops / peak_flops_per_cycle.max(1.0);
    // Memory traffic: read X (rows×in) and W (in×out), write output (rows×out), 8 bytes each.
    let bytes = 8.0
        * (rows as f64 * in_features as f64
            + in_features as f64 * out_features as f64
            + rows as f64 * out_features as f64);
    let bytes_per_cycle = config.peak_bandwidth_gbps() / config.frequency_ghz;
    let memory_cycles = bytes / bytes_per_cycle.max(1.0);
    compute_cycles.max(memory_cycles).ceil() as u64
}

/// Runs one GCN layer `ReLU(A · X · W)` on the accelerator.
///
/// # Errors
///
/// Returns [`ChipError::Shape`] on dimension mismatches and propagates
/// simulation failures from the aggregation stage.
pub fn run_gcn_layer(
    accelerator: &mut Accelerator,
    adjacency: &CsrMatrix,
    features: &DenseMatrix,
    weights: &DenseMatrix,
) -> Result<GcnRun, ChipError> {
    if features.cols() != weights.rows() {
        return Err(ChipError::Shape(SparseError::ShapeMismatch {
            left: (features.rows(), features.cols()),
            right: (weights.rows(), weights.cols()),
        }));
    }
    let aggregation = accelerator.run_aggregation(adjacency, features)?;
    let mut combined = aggregation.aggregated.matmul(weights).map_err(ChipError::Shape)?;
    combined.relu();

    let config = accelerator.config().clone();
    let combo_cycles =
        combination_cycles(&config, adjacency.rows(), features.cols(), weights.cols());
    let aggregation_flops = 2 * adjacency.nnz() as u64 * features.cols() as u64;
    let combination_flops =
        2 * adjacency.rows() as u64 * features.cols() as u64 * weights.cols() as u64;
    let total_cycles = aggregation.report.total_cycles + combo_cycles;
    let total_seconds = total_cycles as f64 / (config.frequency_ghz * 1e9);
    let gops = if total_seconds > 0.0 {
        (aggregation_flops + combination_flops) as f64 / total_seconds / 1e9
    } else {
        0.0
    };

    Ok(GcnRun {
        output: combined,
        breakdown: GcnLayerBreakdown {
            aggregation_cycles: aggregation.report.total_cycles,
            combination_cycles: combo_cycles,
            total_seconds,
            gops,
            aggregation_flops,
            combination_flops,
        },
        aggregation_report: aggregation.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use neura_sparse::gen::{feature_matrix, weight_matrix, GraphGenerator};
    use neura_sparse::spmm;

    fn small_layer() -> (CsrMatrix, DenseMatrix, DenseMatrix) {
        let mut a = GraphGenerator::power_law(40, 200, 2.1, 3).generate().to_csr();
        a.row_normalize();
        let x = feature_matrix(40, 6, 1);
        let w = weight_matrix(6, 4, 2);
        (a, x, w)
    }

    #[test]
    fn gcn_layer_matches_reference() {
        let (a, x, w) = small_layer();
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = run_gcn_layer(&mut chip, &a, &x, &w).expect("layer runs");
        let reference = spmm::gcn_layer(&a, &x, &w).unwrap();
        assert!(run.output.max_abs_diff(&reference).unwrap() < 1e-9);
        assert!(run.breakdown.aggregation_cycles > 0);
        assert!(run.breakdown.combination_cycles > 0);
        assert!(run.breakdown.gops > 0.0);
    }

    #[test]
    fn weight_shape_mismatch_is_rejected() {
        let (a, x, _) = small_layer();
        let bad_w = weight_matrix(5, 4, 2); // in_features should be 6
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        assert!(matches!(run_gcn_layer(&mut chip, &a, &x, &bad_w), Err(ChipError::Shape(_))));
    }

    #[test]
    fn combination_roofline_scales_with_dimensions() {
        let cfg = ChipConfig::tile_16();
        let small = combination_cycles(&cfg, 1_000, 16, 16);
        let big = combination_cycles(&cfg, 1_000, 256, 256);
        assert!(big > small);
        // Larger chips need fewer cycles for the same GEMM.
        let t4 = combination_cycles(&ChipConfig::tile_4(), 10_000, 128, 128);
        let t64 = combination_cycles(&ChipConfig::tile_64(), 10_000, 128, 128);
        assert!(t64 <= t4);
    }

    #[test]
    fn flop_accounting_is_consistent() {
        let (a, x, w) = small_layer();
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = run_gcn_layer(&mut chip, &a, &x, &w).unwrap();
        assert_eq!(run.breakdown.aggregation_flops, 2 * a.nnz() as u64 * x.cols() as u64);
        assert_eq!(
            run.breakdown.combination_flops,
            2 * a.rows() as u64 * x.cols() as u64 * w.cols() as u64
        );
    }
}
