//! The Dispatcher: push-based distribution of `MMH` instructions to NeuraCores.
//!
//! The paper contrasts NeuraChip's *push-based* multiplication mapping (the
//! Dispatcher assigns `MMH4` instructions to NeuraCores, preserving input
//! temporal locality in the register files) with FlowGNN's pull-based
//! scheme.  The dispatcher walks the compiled program in order and hands
//! each instruction to a core chosen by the configured policy, subject to
//! instruction-buffer back-pressure.

use crate::compiler::Program;
use crate::isa::MmhInstruction;
use serde::{Deserialize, Serialize};

/// Core-selection policy of the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Strict round robin over the cores.
    RoundRobin,
    /// Send to the core with the smallest current load (dynamic allocation,
    /// "depending on its utilization" — the paper's default).
    LeastLoaded,
}

/// Statistics of the dispatch process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatcherStats {
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Cycles in which dispatch was blocked because every candidate core was full.
    pub blocked_cycles: u64,
    /// Row boundaries crossed (DRHM reseed events).
    pub rows_completed: u64,
}

/// The dispatcher walks a [`Program`] and feeds NeuraCores.
#[derive(Debug)]
pub struct Dispatcher {
    instructions: Vec<MmhInstruction>,
    row_boundaries: Vec<usize>,
    next_instruction: usize,
    next_boundary: usize,
    policy: DispatchPolicy,
    dispatch_width: usize,
    round_robin_cursor: usize,
    per_core_dispatched: Vec<u64>,
    stats: DispatcherStats,
}

impl Dispatcher {
    /// Creates a dispatcher over a compiled program for `cores` NeuraCores.
    pub fn new(
        program: &Program,
        cores: usize,
        policy: DispatchPolicy,
        dispatch_width: usize,
    ) -> Self {
        Dispatcher {
            instructions: program.instructions.clone(),
            row_boundaries: program.row_boundaries.clone(),
            next_instruction: 0,
            next_boundary: 0,
            policy,
            dispatch_width: dispatch_width.max(1),
            round_robin_cursor: 0,
            per_core_dispatched: vec![0; cores.max(1)],
            stats: DispatcherStats::default(),
        }
    }

    /// Number of instructions not yet dispatched.
    pub fn remaining(&self) -> usize {
        self.instructions.len() - self.next_instruction
    }

    /// True when every instruction has been dispatched.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Dispatch statistics.
    pub fn stats(&self) -> &DispatcherStats {
        &self.stats
    }

    /// Number of instructions sent to each core (Figure 12's x-axis data).
    pub fn per_core_histogram(&self) -> &[u64] {
        &self.per_core_dispatched
    }

    /// Attempts to dispatch up to `dispatch_width` instructions this cycle.
    ///
    /// `core_can_accept` and `core_load` describe the current state of every
    /// core; `assign` is called for each successful dispatch with
    /// `(core index, instruction)`.  Returns the number of row boundaries
    /// crossed during this call so the accelerator can reseed the DRHM
    /// mapping and issue hash-pad barriers.
    pub fn dispatch_cycle(
        &mut self,
        core_can_accept: &[bool],
        core_load: &[usize],
        mut assign: impl FnMut(usize, MmhInstruction) -> bool,
    ) -> u64 {
        let cores = self.per_core_dispatched.len();
        debug_assert_eq!(core_can_accept.len(), cores);
        debug_assert_eq!(core_load.len(), cores);
        let mut rows_crossed = 0u64;
        let mut dispatched_this_cycle = 0usize;
        let mut blocked = false;
        // Working copies so decisions made earlier in this same cycle are
        // visible to later ones (otherwise every instruction of the cycle
        // would pile onto the single least-loaded core).
        let mut acceptable = core_can_accept.to_vec();
        let mut effective_load = core_load.to_vec();

        while dispatched_this_cycle < self.dispatch_width && !self.is_done() {
            let target = match self.policy {
                DispatchPolicy::RoundRobin => {
                    let mut chosen = None;
                    for offset in 0..cores {
                        let candidate = (self.round_robin_cursor + offset) % cores;
                        if acceptable[candidate] {
                            chosen = Some(candidate);
                            break;
                        }
                    }
                    chosen
                }
                DispatchPolicy::LeastLoaded => acceptable
                    .iter()
                    .enumerate()
                    .filter(|(_, &ok)| ok)
                    .min_by_key(|&(idx, _)| (effective_load[idx], idx))
                    .map(|(idx, _)| idx),
            };
            let Some(core) = target else {
                blocked = true;
                break;
            };
            let instr = self.instructions[self.next_instruction].clone();
            if !assign(core, instr) {
                // This core's instruction buffer is full; try the others.
                acceptable[core] = false;
                blocked = true;
                continue;
            }
            effective_load[core] += 1;
            self.round_robin_cursor = (core + 1) % cores;
            self.per_core_dispatched[core] += 1;
            self.next_instruction += 1;
            self.stats.dispatched += 1;
            dispatched_this_cycle += 1;

            // Row boundaries crossed by this dispatch.
            while self.next_boundary < self.row_boundaries.len()
                && self.row_boundaries[self.next_boundary] <= self.next_instruction
            {
                self.next_boundary += 1;
                self.stats.rows_completed += 1;
                rows_crossed += 1;
            }
        }
        if blocked {
            self.stats.blocked_cycles += 1;
        }
        rows_crossed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_spgemm;
    use neura_sparse::gen::GraphGenerator;

    fn program() -> Program {
        let a = GraphGenerator::erdos_renyi(40, 0.1, 5).generate().to_csr();
        compile_spgemm(&a.to_csc(), &a, 4)
    }

    #[test]
    fn dispatches_every_instruction_exactly_once() {
        let p = program();
        let mut d = Dispatcher::new(&p, 4, DispatchPolicy::RoundRobin, 2);
        let mut received = 0usize;
        let can_accept = vec![true; 4];
        let load = vec![0usize; 4];
        while !d.is_done() {
            d.dispatch_cycle(&can_accept, &load, |_, _| {
                received += 1;
                true
            });
        }
        assert_eq!(received, p.instruction_count());
        assert_eq!(d.stats().dispatched, p.instruction_count() as u64);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn round_robin_spreads_work_evenly() {
        let p = program();
        let mut d = Dispatcher::new(&p, 8, DispatchPolicy::RoundRobin, 1);
        let can_accept = vec![true; 8];
        let load = vec![0usize; 8];
        while !d.is_done() {
            d.dispatch_cycle(&can_accept, &load, |_, _| true);
        }
        let hist = d.per_core_histogram();
        let max = *hist.iter().max().unwrap();
        let min = *hist.iter().min().unwrap();
        assert!(max - min <= 1, "round robin must be balanced, got {hist:?}");
    }

    #[test]
    fn least_loaded_prefers_empty_cores() {
        let p = program();
        let mut d = Dispatcher::new(&p, 4, DispatchPolicy::LeastLoaded, 1);
        let can_accept = vec![true; 4];
        // Core 2 is markedly less loaded than the others.
        let load = vec![10usize, 10, 0, 10];
        let mut first_target = None;
        d.dispatch_cycle(&can_accept, &load, |core, _| {
            first_target.get_or_insert(core);
            true
        });
        assert_eq!(first_target, Some(2));
    }

    #[test]
    fn full_cores_block_dispatch() {
        let p = program();
        let mut d = Dispatcher::new(&p, 2, DispatchPolicy::RoundRobin, 4);
        let can_accept = vec![false; 2];
        let load = vec![0usize; 2];
        let before = d.remaining();
        d.dispatch_cycle(&can_accept, &load, |_, _| true);
        assert_eq!(d.remaining(), before);
        assert_eq!(d.stats().blocked_cycles, 1);
    }

    #[test]
    fn row_boundaries_are_reported() {
        let p = program();
        let expected_rows = p.row_boundaries.len() as u64;
        let mut d = Dispatcher::new(&p, 4, DispatchPolicy::LeastLoaded, 8);
        let can_accept = vec![true; 4];
        let load = vec![0usize; 4];
        let mut total_rows = 0u64;
        while !d.is_done() {
            total_rows += d.dispatch_cycle(&can_accept, &load, |_, _| true);
        }
        assert_eq!(total_rows, expected_rows);
        assert_eq!(d.stats().rows_completed, expected_rows);
    }

    #[test]
    fn dispatch_width_limits_instructions_per_cycle() {
        let p = program();
        let mut d = Dispatcher::new(&p, 4, DispatchPolicy::RoundRobin, 3);
        let can_accept = vec![true; 4];
        let load = vec![0usize; 4];
        let mut count = 0;
        d.dispatch_cycle(&can_accept, &load, |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 3.min(p.instruction_count()));
    }
}
