//! Opt-in chip-level profiler: windowed cycle attribution and a stall
//! taxonomy for the cycle simulator.
//!
//! [`crate::ExecutionReport`] is an end-of-run aggregate — it can say
//! *that* `core_stall_cycles` is high, never *when* or *why*. The
//! profiler adds the missing axes without touching the fast path: the
//! accelerator's run loop takes an `Option<&mut Profiler>`, and with
//! `None` it constructs nothing, records nothing and stays byte-identical
//! (the same contract the serving layer's `--trace` keeps for
//! `serve.json`). With `Some`, the loop feeds the profiler once per
//! cycle and the profiler folds the observations into:
//!
//! 1. a **windowed timeline** — per fixed-width cycle window the
//!    per-core busy/stall/idle split, MMH/HACC retire counts, chip-wide
//!    HashPad occupancy peak and full-stall cycles, the NoC's peak
//!    packets in flight, and HBM's peak in-flight transactions and
//!    queued requests;
//! 2. a **stall taxonomy** — every core stall cycle is attributed to one
//!    [`StallCause`] by the dominant chip-level condition of that cycle,
//!    with precedence HashPad-full > NoC backpressure > dispatch
//!    starvation > operand fetch (a stalled NeuraCore is mechanically
//!    always waiting on operand reads; the taxonomy names the upstream
//!    condition that made those reads slow). Because classification
//!    happens exactly once per observed stall, the buckets sum to
//!    `core_stall_cycles` *by construction*, and
//!    busy + stall + idle = `cores × total_cycles` once the write-back
//!    drain epilogue (where cores no longer tick) is padded as idle;
//! 3. **distributions** — an exact per-hop-count packet histogram (its
//!    weighted total equals `NetworkStats::total_hops`), plus mergeable
//!    [`LatencyHistogram`]s of hop counts and DRAM request latencies for
//!    percentile reporting.
//!
//! The NoC and memory-controller signals come in through their public
//! observation surface (`Packet::hops` on drained packets,
//! `TorusNetwork::hop_histogram`, `MemoryController::queue_depths`)
//! rather than by threading the profiler *into* those crates — they sit
//! below `neura_chip` in the workspace DAG, and the accelerator already
//! owns the only loop that sees every unit every cycle.
//!
//! Profiles serialize through `neura_lab` as a versioned
//! `neura_lab.profile/v1` artifact; the `profile` binary sweeps
//! (dataset × tile × HBM preset) and gates on the invariants, and
//! `serve --profile` emits one profile per (fingerprint, request class).

use neura_sim::LatencyHistogram;

/// Why a core stall cycle happened, by the dominant chip-level condition
/// of that cycle (see the module docs for the precedence order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Plain operand-fetch latency: the HBM round trip itself, with no
    /// upstream pressure observed that cycle.
    OperandFetch,
    /// A HashPad registered full-pad stalls that cycle: the accumulation
    /// side is saturated and its evictions compete with operand reads.
    HashpadFull,
    /// The NoC refused injections that cycle: router buffers are full
    /// and the resulting head-of-line blocking backs up the cores.
    NocBackpressure,
    /// The dispatcher had rows left but placed no instruction that
    /// cycle: cores starve behind an imbalanced tail.
    DispatchStarvation,
}

impl StallCause {
    /// Every cause, in bucket order.
    pub const ALL: [StallCause; 4] = [
        StallCause::OperandFetch,
        StallCause::HashpadFull,
        StallCause::NocBackpressure,
        StallCause::DispatchStarvation,
    ];

    /// Stable snake_case name (used for metric names).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::OperandFetch => "operand_fetch",
            StallCause::HashpadFull => "hashpad_full",
            StallCause::NocBackpressure => "noc_backpressure",
            StallCause::DispatchStarvation => "dispatch_starvation",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::OperandFetch => 0,
            StallCause::HashpadFull => 1,
            StallCause::NocBackpressure => 2,
            StallCause::DispatchStarvation => 3,
        }
    }
}

/// One fixed-width cycle window of the profile timeline. All core-cycle
/// fields count `(core, cycle)` pairs, so per window
/// `busy + stall + idle = cores × cycles-observed-in-window`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileWindow {
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Cycles the window actually observed (the last window of a run is
    /// usually short).
    pub cycles: u64,
    /// Core-cycles spent computing or decoding.
    pub busy: u64,
    /// Core-cycles stalled on outstanding memory responses.
    pub stall: u64,
    /// Core-cycles with no work.
    pub idle: u64,
    /// Stall core-cycles per [`StallCause`], indexed by `StallCause::index`.
    pub stall_by: [u64; 4],
    /// MMH instructions retired by all cores in the window.
    pub mmh_retired: u64,
    /// HACC instructions processed by all NeuraMems in the window.
    pub hacc_retired: u64,
    /// Peak chip-wide HashPad occupancy (lines in use, summed over mems).
    pub pad_occupancy_peak: u64,
    /// HashPad full-stall cycles registered in the window (summed over mems).
    pub pad_full_stalls: u64,
    /// Peak NoC packets in flight (buffered or awaiting pickup).
    pub noc_in_flight_peak: u64,
    /// Peak in-flight HBM transactions (summed over channels).
    pub hbm_in_flight_peak: u64,
    /// Peak queued-but-unissued HBM requests (summed over channels).
    pub hbm_queue_peak: u64,
}

impl ProfileWindow {
    /// Stall core-cycles attributed to `cause`.
    pub fn stall_by_cause(&self, cause: StallCause) -> u64 {
        self.stall_by[cause.index()]
    }

    /// Stalled fraction of the window's observed core-cycles.
    pub fn stall_frac(&self) -> f64 {
        let total = self.busy + self.stall + self.idle;
        if total == 0 {
            0.0
        } else {
            self.stall as f64 / total as f64
        }
    }
}

/// A finished profile: the windowed timeline, the stall taxonomy and the
/// hop/DRAM-latency distributions of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Window width in cycles.
    pub window_cycles: u64,
    /// Total cycles of the run (including the write-back drain epilogue).
    pub total_cycles: u64,
    /// NeuraCores on the chip.
    pub cores: u64,
    /// NeuraMems on the chip.
    pub mems: u64,
    /// HBM channels (one memory controller per tile).
    pub channels: u64,
    /// The timeline, one entry per window in cycle order.
    pub windows: Vec<ProfileWindow>,
    /// Core-cycles busy over the whole run.
    pub busy: u64,
    /// Core-cycles stalled over the whole run (== `core_stall_cycles`).
    pub stall: u64,
    /// Core-cycles idle during the windowed (execute) phase.
    pub idle: u64,
    /// Core-cycles of the drain epilogue, where only the memory
    /// controllers tick and every core is idle by definition.
    pub epilogue_idle: u64,
    /// Stall core-cycles per [`StallCause`], indexed by `StallCause::index`.
    pub stall_by: [u64; 4],
    /// MMH instructions retired over the run.
    pub mmh_retired: u64,
    /// HACC instructions processed over the run.
    pub hacc_retired: u64,
    /// Exact delivered-packet hop distribution: `hop_counts[h]` packets
    /// crossed exactly `h` links. `Σ h × hop_counts[h]` equals the NoC's
    /// `total_hops`.
    pub hop_counts: Vec<u64>,
    /// Mergeable hop histogram (for percentile reporting and fleet-level
    /// aggregation; small integers bucket exactly).
    pub hops: LatencyHistogram,
    /// Mergeable DRAM request-latency histogram, in cycles.
    pub dram_latency: LatencyHistogram,
    /// Per-channel peak queued-but-unissued requests.
    pub channel_queue_peaks: Vec<u64>,
    /// Peak in-flight HBM transactions (summed over channels).
    pub hbm_in_flight_peak: u64,
}

impl Profile {
    /// Stall core-cycles attributed to `cause` over the whole run.
    pub fn stall_by_cause(&self, cause: StallCause) -> u64 {
        self.stall_by[cause.index()]
    }

    /// Total idle core-cycles including the drain epilogue.
    pub fn idle_total(&self) -> u64 {
        self.idle + self.epilogue_idle
    }

    /// Packets delivered by the NoC (the hop distribution's mass).
    pub fn noc_delivered(&self) -> u64 {
        self.hop_counts.iter().sum()
    }

    /// Total link crossings — must equal `NetworkStats::total_hops`.
    pub fn hops_total(&self) -> u64 {
        self.hop_counts.iter().enumerate().map(|(h, &n)| h as u64 * n).sum()
    }

    /// Stalled fraction of all core-cycles over the run.
    pub fn stall_frac(&self) -> f64 {
        let total = self.cores * self.total_cycles;
        if total == 0 {
            0.0
        } else {
            self.stall as f64 / total as f64
        }
    }

    /// Index and stall fraction of the worst (most-stalled) window; ties
    /// resolve to the earliest window. `None` for an empty timeline.
    pub fn worst_window(&self) -> Option<(usize, f64)> {
        let mut worst: Option<(usize, f64)> = None;
        for (index, window) in self.windows.iter().enumerate() {
            let frac = window.stall_frac();
            if worst.is_none_or(|(_, best)| frac > best) {
                worst = Some((index, frac));
            }
        }
        worst
    }

    /// Checks the profile's conservation invariants, returning the first
    /// violation as a message:
    ///
    /// 1. taxonomy buckets sum exactly to the stall cycles, globally and
    ///    per window;
    /// 2. busy + stall + idle (epilogue included) equals
    ///    `cores × total_cycles`, and each window's split covers exactly
    ///    its observed cycles;
    /// 3. the aggregate counters equal the sums of their windows.
    pub fn check_conservation(&self) -> Result<(), String> {
        let buckets: u64 = self.stall_by.iter().sum();
        if buckets != self.stall {
            return Err(format!(
                "taxonomy buckets sum to {buckets} but core_stall_cycles is {}",
                self.stall
            ));
        }
        let split = self.busy + self.stall + self.idle_total();
        let expected = self.cores * self.total_cycles;
        if split != expected {
            return Err(format!(
                "busy+stall+idle is {split} but cores × total_cycles is {expected}"
            ));
        }
        let mut sums = ProfileWindow::default();
        for (w, window) in self.windows.iter().enumerate() {
            let window_buckets: u64 = window.stall_by.iter().sum();
            if window_buckets != window.stall {
                return Err(format!(
                    "window {w}: buckets sum to {window_buckets} but stall is {}",
                    window.stall
                ));
            }
            let window_split = window.busy + window.stall + window.idle;
            if window_split != self.cores * window.cycles {
                return Err(format!(
                    "window {w}: busy+stall+idle is {window_split} over {} cycles of {} cores",
                    window.cycles, self.cores
                ));
            }
            sums.busy += window.busy;
            sums.stall += window.stall;
            sums.idle += window.idle;
            sums.mmh_retired += window.mmh_retired;
            sums.hacc_retired += window.hacc_retired;
        }
        for (name, aggregate, of_windows) in [
            ("busy", self.busy, sums.busy),
            ("stall", self.stall, sums.stall),
            ("idle", self.idle, sums.idle),
            ("mmh_retired", self.mmh_retired, sums.mmh_retired),
            ("hacc_retired", self.hacc_retired, sums.hacc_retired),
        ] {
            if aggregate != of_windows {
                return Err(format!(
                    "aggregate {name} is {aggregate} but its windows sum to {of_windows}"
                ));
            }
        }
        Ok(())
    }
}

/// Per-cycle scratch state, reset by [`Profiler::begin_cycle`] and folded
/// into the current window by [`Profiler::end_cycle`].
#[derive(Debug, Clone, Copy, Default)]
struct CycleScratch {
    busy: u64,
    stall: u64,
    idle: u64,
    mmh_retired: u64,
    hacc_retired: u64,
    pad_full_stalls: u64,
    noc_backpressure: bool,
    dispatch_starved: bool,
}

/// The recording half: created by a caller, threaded through the
/// accelerator's run loop as `Option<&mut Profiler>`, and consumed with
/// [`Profiler::into_profile`] after the run.
#[derive(Debug)]
pub struct Profiler {
    window_cycles: u64,
    windows: Vec<ProfileWindow>,
    scratch: CycleScratch,
    in_cycle: bool,
    observed_cycles: u64,
    hop_counts: Vec<u64>,
    hops: LatencyHistogram,
    dram_latency: LatencyHistogram,
    channel_queue_peaks: Vec<u64>,
    hbm_in_flight_peak: u64,
    finished: Option<Profile>,
}

/// Default window width: coarse enough that paper-scale runs stay in the
/// hundreds of windows, fine enough that smoke runs still get several.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1024;

impl Profiler {
    /// Creates a profiler with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics when `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "profile window width must be positive");
        Profiler {
            window_cycles,
            windows: Vec::new(),
            scratch: CycleScratch::default(),
            in_cycle: false,
            observed_cycles: 0,
            hop_counts: Vec::new(),
            hops: LatencyHistogram::new(),
            dram_latency: LatencyHistogram::new(),
            channel_queue_peaks: Vec::new(),
            hbm_in_flight_peak: 0,
            finished: None,
        }
    }

    /// The finished profile.
    ///
    /// # Panics
    ///
    /// Panics when the profiler was never run through the accelerator.
    pub fn into_profile(self) -> Profile {
        self.finished.expect("profiler was not run: pass it to a *_profiled entry point first")
    }

    fn current_window(&mut self) -> &mut ProfileWindow {
        self.windows.last_mut().expect("begin_cycle opened a window")
    }

    /// Opens cycle `cycle`, rolling to a new window at each boundary.
    pub(crate) fn begin_cycle(&mut self, cycle: u64) {
        debug_assert!(!self.in_cycle, "begin_cycle without end_cycle");
        self.in_cycle = true;
        self.observed_cycles += 1;
        if self.windows.is_empty() || cycle.is_multiple_of(self.window_cycles) {
            self.windows.push(ProfileWindow { start_cycle: cycle, ..ProfileWindow::default() });
        }
        self.current_window().cycles += 1;
        self.scratch = CycleScratch::default();
    }

    /// Records one core's tick outcome and retire count.
    pub(crate) fn record_core_tick(&mut self, outcome: crate::neuracore::TickOutcome, mmh: u32) {
        use crate::neuracore::TickOutcome;
        match outcome {
            TickOutcome::Busy => self.scratch.busy += 1,
            TickOutcome::Stalled => self.scratch.stall += 1,
            TickOutcome::Idle => self.scratch.idle += 1,
        }
        self.scratch.mmh_retired += u64::from(mmh);
    }

    /// Marks that the NoC refused at least one injection this cycle.
    pub(crate) fn note_noc_backpressure(&mut self) {
        self.scratch.noc_backpressure = true;
    }

    /// Marks that the dispatcher had work but placed nothing this cycle.
    pub(crate) fn note_dispatch_starved(&mut self) {
        self.scratch.dispatch_starved = true;
    }

    /// Records one delivered packet's hop count.
    pub(crate) fn record_hops(&mut self, hops: u32) {
        let h = hops as usize;
        if self.hop_counts.len() <= h {
            self.hop_counts.resize(h + 1, 0);
        }
        self.hop_counts[h] += 1;
        self.hops.record(f64::from(hops));
    }

    /// Samples the NoC's in-flight packet count after its tick.
    pub(crate) fn record_noc_in_flight(&mut self, in_flight: u64) {
        let window = self.current_window();
        window.noc_in_flight_peak = window.noc_in_flight_peak.max(in_flight);
    }

    /// Records the mems' post-tick state: chip-wide pad occupancy, the
    /// cycle's full-stall delta and HACCs processed.
    pub(crate) fn record_mems(&mut self, occupancy: u64, pad_full_delta: u64, hacc_delta: u64) {
        self.scratch.pad_full_stalls += pad_full_delta;
        self.scratch.hacc_retired += hacc_delta;
        let window = self.current_window();
        window.pad_occupancy_peak = window.pad_occupancy_peak.max(occupancy);
    }

    /// Records one completed DRAM request's latency in cycles. Also
    /// called during the drain epilogue (the histogram is aggregate, not
    /// windowed, so late write-backs still count).
    pub(crate) fn record_dram_response(&mut self, latency: u64) {
        self.dram_latency.record(latency as f64);
    }

    /// Samples one channel's queue depth and the running in-flight total.
    pub(crate) fn record_channel(&mut self, channel: usize, queued: u64) {
        if self.channel_queue_peaks.len() <= channel {
            self.channel_queue_peaks.resize(channel + 1, 0);
        }
        self.channel_queue_peaks[channel] = self.channel_queue_peaks[channel].max(queued);
        let window = self.current_window();
        window.hbm_queue_peak = window.hbm_queue_peak.max(queued);
    }

    /// Samples the chip-wide in-flight HBM transaction count.
    pub(crate) fn record_hbm_in_flight(&mut self, in_flight: u64) {
        self.hbm_in_flight_peak = self.hbm_in_flight_peak.max(in_flight);
        let window = self.current_window();
        window.hbm_in_flight_peak = window.hbm_in_flight_peak.max(in_flight);
    }

    /// Closes the cycle: attributes the cycle's stalls to their cause and
    /// folds the scratch counters into the current window.
    pub(crate) fn end_cycle(&mut self) {
        debug_assert!(self.in_cycle, "end_cycle without begin_cycle");
        self.in_cycle = false;
        let scratch = self.scratch;
        let cause = if scratch.pad_full_stalls > 0 {
            StallCause::HashpadFull
        } else if scratch.noc_backpressure {
            StallCause::NocBackpressure
        } else if scratch.dispatch_starved {
            StallCause::DispatchStarvation
        } else {
            StallCause::OperandFetch
        };
        let window = self.current_window();
        window.busy += scratch.busy;
        window.stall += scratch.stall;
        window.idle += scratch.idle;
        window.stall_by[cause.index()] += scratch.stall;
        window.mmh_retired += scratch.mmh_retired;
        window.hacc_retired += scratch.hacc_retired;
        window.pad_full_stalls += scratch.pad_full_stalls;
    }

    /// Seals the profile once the run drains. `total_cycles` includes the
    /// write-back epilogue the windows never saw; its core-cycles become
    /// [`Profile::epilogue_idle`] so busy + stall + idle conserves to
    /// `cores × total_cycles`.
    pub(crate) fn finalize(&mut self, total_cycles: u64, cores: u64, mems: u64, channels: u64) {
        debug_assert!(!self.in_cycle, "finalize inside an open cycle");
        let windows = std::mem::take(&mut self.windows);
        let mut sums = ProfileWindow::default();
        let mut stall_by = [0u64; 4];
        for window in &windows {
            sums.busy += window.busy;
            sums.stall += window.stall;
            sums.idle += window.idle;
            for (bucket, &count) in stall_by.iter_mut().zip(&window.stall_by) {
                *bucket += count;
            }
            sums.mmh_retired += window.mmh_retired;
            sums.hacc_retired += window.hacc_retired;
        }
        let observed = sums.busy + sums.stall + sums.idle;
        let expected = cores * total_cycles;
        assert!(
            observed <= expected,
            "profiler observed {observed} core-cycles but the run only spans {expected}"
        );
        let mut channel_queue_peaks = std::mem::take(&mut self.channel_queue_peaks);
        channel_queue_peaks.resize(channels as usize, 0);
        self.finished = Some(Profile {
            window_cycles: self.window_cycles,
            total_cycles,
            cores,
            mems,
            channels,
            windows,
            busy: sums.busy,
            stall: sums.stall,
            idle: sums.idle,
            epilogue_idle: expected - observed,
            stall_by,
            mmh_retired: sums.mmh_retired,
            hacc_retired: sums.hacc_retired,
            hop_counts: std::mem::take(&mut self.hop_counts),
            hops: std::mem::take(&mut self.hops),
            dram_latency: std::mem::take(&mut self.dram_latency),
            channel_queue_peaks,
            hbm_in_flight_peak: self.hbm_in_flight_peak,
        });
    }
}
