//! NeuraMem: the on-chip hash-based accumulation unit (Figures 8 and 10).
//!
//! Each NeuraMem owns a *HashPad* — an array of hash-lines, each holding a
//! TAG, an accumulating DATA value and a rolling-eviction COUNTER — serviced
//! by a set of hash engines.  `HACC` instructions arriving from the NoC are
//! hashed onto a line; matching tags accumulate, new tags allocate a line,
//! and a line whose counter reaches zero is evicted and written back to HBM
//! (rolling eviction).  Under the barrier-eviction baseline, completed lines
//! stay resident until an explicit row barrier, inflating occupancy and
//! stalling inserts when the pad fills up.

use crate::config::{EvictionPolicy, NeuraMemConfig};
use crate::isa::HaccInstruction;
use neura_sim::{Cycle, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One completed output element evicted from the HashPad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// Output tag.
    pub tag: u64,
    /// Fully accumulated value.
    pub value: f64,
    /// Cycle at which the eviction happened.
    pub evicted_at: u64,
}

/// Statistics exported by a NeuraMem unit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NeuraMemStats {
    /// HACC instructions accepted into the instruction buffer.
    pub haccs_received: u64,
    /// HACC instructions fully processed (accumulated).
    pub haccs_processed: u64,
    /// Hash-lines evicted (== output elements produced).
    pub evictions: u64,
    /// Cycles in which at least one HACC could not proceed because the
    /// HashPad was full.
    pub pad_full_stalls: u64,
    /// Hash collisions resolved by probing.
    pub collisions: u64,
    /// Peak number of occupied hash-lines.
    pub peak_occupancy: usize,
    /// Cycles with at least one instruction processed.
    pub busy_cycles: u64,
    /// Cycles with no work performed.
    pub idle_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct HashLine {
    tag: u64,
    data: f64,
    counter: u32,
}

/// A NeuraMem accumulation unit.
#[derive(Debug)]
pub struct NeuraMem {
    id: usize,
    config: NeuraMemConfig,
    eviction: EvictionPolicy,
    /// Open-addressed HashPad: `None` lines are free.
    pad: Vec<Option<HashLine>>,
    /// Resident-tag index (tag → slot).  Hardware finds the line with the
    /// comparator array; the index keeps the model exact in the presence of
    /// eviction holes without changing the occupancy/capacity behaviour.
    index: std::collections::HashMap<u64, usize>,
    occupied: usize,
    /// Incoming HACC instructions awaiting a hash engine.
    input: VecDeque<HaccInstruction>,
    /// Completed lines awaiting write-back pickup by the accelerator.
    evicted: VecDeque<EvictedLine>,
    /// Lines whose counter reached zero under barrier eviction, waiting for
    /// the next barrier.
    barrier_pending: Vec<usize>,
    stats: NeuraMemStats,
    /// Histogram of HACC completion latency (generation → accumulation).
    hacc_latency: Histogram,
}

impl NeuraMem {
    /// Creates a NeuraMem with the given per-unit configuration.
    pub fn new(id: usize, config: NeuraMemConfig, eviction: EvictionPolicy) -> Self {
        NeuraMem {
            id,
            config,
            eviction,
            pad: vec![None; config.hashlines],
            index: std::collections::HashMap::new(),
            occupied: 0,
            input: VecDeque::new(),
            evicted: VecDeque::new(),
            barrier_pending: Vec::new(),
            stats: NeuraMemStats::default(),
            hacc_latency: Histogram::new(50, 20),
        }
    }

    /// Unit identifier (index within the chip).
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when the instruction buffer can accept another HACC.
    pub fn can_accept(&self) -> bool {
        self.input.len() < self.config.instruction_buffer
    }

    /// Enqueues a HACC instruction.  Returns `false` when the buffer is full
    /// (the packet stays in the network — back-pressure).
    pub fn accept(&mut self, hacc: HaccInstruction) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.input.push_back(hacc);
        self.stats.haccs_received += 1;
        true
    }

    /// Number of buffered HACC instructions not yet processed.
    pub fn backlog(&self) -> usize {
        self.input.len()
    }

    /// Number of currently occupied hash-lines.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Unit statistics.
    pub fn stats(&self) -> &NeuraMemStats {
        &self.stats
    }

    /// Histogram of HACC completion latencies (Figure 15).
    pub fn hacc_latency_histogram(&self) -> &Histogram {
        &self.hacc_latency
    }

    /// Removes all evicted (completed) output elements produced so far.
    pub fn drain_evicted(&mut self) -> Vec<EvictedLine> {
        self.evicted.drain(..).collect()
    }

    /// True when no work remains anywhere in the unit.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty() && self.evicted.is_empty()
    }

    /// True when every hash-line is free (all outputs evicted).
    pub fn pad_is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Row barrier: under barrier eviction, flush every completed line.
    pub fn barrier(&mut self, now: Cycle) {
        if self.eviction == EvictionPolicy::Barrier {
            let pending = std::mem::take(&mut self.barrier_pending);
            for slot in pending {
                self.evict_slot(slot, now);
            }
        }
    }

    /// Final flush at the end of the program: evicts every remaining line
    /// regardless of counter state (used to drain barrier-mode residue and to
    /// guard against malformed counters).
    pub fn flush(&mut self, now: Cycle) {
        for slot in 0..self.pad.len() {
            if self.pad[slot].is_some() {
                self.evict_slot(slot, now);
            }
        }
        self.barrier_pending.clear();
    }

    /// Advances the unit one cycle, processing up to
    /// `hash_engines × comparators` HACC instructions.
    pub fn tick(&mut self, now: Cycle) {
        let throughput = self.config.hash_engines * self.config.comparators.max(1);
        let mut processed = 0usize;
        while processed < throughput {
            let Some(hacc) = self.input.front().copied() else { break };
            if self.apply(hacc, now) {
                self.input.pop_front();
                processed += 1;
            } else {
                // HashPad full: head-of-line stall until an eviction frees a line.
                self.stats.pad_full_stalls += 1;
                break;
            }
        }
        if processed > 0 {
            self.stats.busy_cycles += 1;
        } else {
            self.stats.idle_cycles += 1;
        }
    }

    /// Applies one HACC.  Returns `false` when no hash-line is available.
    fn apply(&mut self, hacc: HaccInstruction, now: Cycle) -> bool {
        // Hit on a resident tag: accumulate and decrement the counter.
        if let Some(&slot) = self.index.get(&hacc.tag) {
            let line = self.pad[slot].as_mut().expect("indexed slot is occupied");
            line.data += hacc.data;
            line.counter = line.counter.saturating_sub(1);
            let done = line.counter == 0;
            let home = (hacc.tag as usize) % self.pad.len();
            if slot != home {
                self.stats.collisions += 1;
            }
            self.finish_hacc(&hacc, now);
            if done {
                self.complete_slot(slot, now);
            }
            return true;
        }
        // Miss: allocate a free line by probing from the tag's home slot.
        if self.occupied >= self.pad.len() {
            return false; // pad completely full of other tags
        }
        let len = self.pad.len();
        let home = (hacc.tag as usize) % len;
        let mut slot = home;
        let mut probes = 0usize;
        while self.pad[slot].is_some() {
            probes += 1;
            slot = (slot + 1) % len;
            debug_assert!(probes <= len, "occupancy check guarantees a free slot");
        }
        if probes > 0 {
            self.stats.collisions += 1;
        }
        let counter = hacc.counter.saturating_sub(1);
        self.pad[slot] = Some(HashLine { tag: hacc.tag, data: hacc.data, counter });
        self.index.insert(hacc.tag, slot);
        self.occupied += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupied);
        self.finish_hacc(&hacc, now);
        if counter == 0 {
            self.complete_slot(slot, now);
        }
        true
    }

    fn finish_hacc(&mut self, hacc: &HaccInstruction, now: Cycle) {
        self.stats.haccs_processed += 1;
        self.hacc_latency.record(now.as_u64().saturating_sub(hacc.generated_at));
    }

    /// Marks a slot's reduction as complete: rolling eviction writes it back
    /// immediately, barrier eviction defers to the next barrier.
    fn complete_slot(&mut self, slot: usize, now: Cycle) {
        match self.eviction {
            EvictionPolicy::Rolling => self.evict_slot(slot, now),
            EvictionPolicy::Barrier => self.barrier_pending.push(slot),
        }
    }

    fn evict_slot(&mut self, slot: usize, now: Cycle) {
        if let Some(line) = self.pad[slot].take() {
            self.index.remove(&line.tag);
            self.occupied -= 1;
            self.stats.evictions += 1;
            self.evicted.push_back(EvictedLine {
                tag: line.tag,
                value: line.data,
                evicted_at: now.as_u64(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(hashlines: usize) -> NeuraMemConfig {
        NeuraMemConfig {
            comparators: 4,
            hash_engines: 4,
            hashlines,
            accumulators: 256,
            ports: 4,
            instruction_buffer: 32,
        }
    }

    fn hacc(tag: u64, data: f64, counter: u32) -> HaccInstruction {
        HaccInstruction::new(tag, data, counter)
    }

    #[test]
    fn single_contribution_evicts_immediately() {
        let mut mem = NeuraMem::new(0, small_config(64), EvictionPolicy::Rolling);
        assert!(mem.accept(hacc(7, 2.5, 1)));
        mem.tick(Cycle(0));
        let out = mem.drain_evicted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 7);
        assert_eq!(out[0].value, 2.5);
        assert!(mem.pad_is_empty());
    }

    #[test]
    fn partial_products_accumulate_until_counter_zero() {
        let mut mem = NeuraMem::new(0, small_config(64), EvictionPolicy::Rolling);
        for v in [1.0, 2.0, 3.0] {
            assert!(mem.accept(hacc(42, v, 3)));
        }
        mem.tick(Cycle(0));
        let out = mem.drain_evicted();
        assert_eq!(out.len(), 1);
        assert!((out[0].value - 6.0).abs() < 1e-12);
        assert_eq!(mem.stats().evictions, 1);
        assert_eq!(mem.stats().haccs_processed, 3);
    }

    #[test]
    fn rolling_eviction_keeps_occupancy_low() {
        let mut mem = NeuraMem::new(0, small_config(1024), EvictionPolicy::Rolling);
        // 100 distinct single-contribution tags: every one evicts right away.
        for t in 0..100u64 {
            assert!(mem.accept(hacc(t, 1.0, 1)));
            mem.tick(Cycle(t));
        }
        assert_eq!(mem.stats().evictions, 100);
        assert!(mem.stats().peak_occupancy <= 1);
    }

    #[test]
    fn barrier_eviction_retains_lines_until_barrier() {
        let mut mem = NeuraMem::new(0, small_config(1024), EvictionPolicy::Barrier);
        // Feed and process incrementally so the instruction buffer never overflows.
        for t in 0..50u64 {
            assert!(mem.accept(hacc(t, 1.0, 1)));
            mem.tick(Cycle(t));
        }
        for c in 50..60u64 {
            mem.tick(Cycle(c));
        }
        assert_eq!(mem.drain_evicted().len(), 0, "nothing leaves before the barrier");
        assert_eq!(mem.occupancy(), 50);
        mem.barrier(Cycle(60));
        assert_eq!(mem.drain_evicted().len(), 50);
        assert!(mem.pad_is_empty());
    }

    #[test]
    fn barrier_policy_has_higher_peak_occupancy_than_rolling() {
        let run = |policy| {
            let mut mem = NeuraMem::new(0, small_config(4096), policy);
            for t in 0..200u64 {
                assert!(mem.accept(hacc(t, 1.0, 1)));
                mem.tick(Cycle(t));
            }
            mem.barrier(Cycle(300));
            mem.stats().peak_occupancy
        };
        assert!(run(EvictionPolicy::Barrier) > run(EvictionPolicy::Rolling));
    }

    #[test]
    fn pad_exhaustion_stalls_and_recovers_after_flush() {
        let mut mem = NeuraMem::new(0, small_config(4), EvictionPolicy::Rolling);
        // Five distinct never-completing tags (counter 2, only one arrival each).
        for t in 0..5u64 {
            assert!(mem.accept(hacc(t, 1.0, 2)));
        }
        for c in 0..10u64 {
            mem.tick(Cycle(c));
        }
        assert!(mem.stats().pad_full_stalls > 0);
        assert_eq!(mem.occupancy(), 4);
        // Flush clears the pad and the stalled instruction can then proceed.
        mem.flush(Cycle(20));
        mem.tick(Cycle(21));
        assert_eq!(mem.backlog(), 0);
    }

    #[test]
    fn colliding_tags_resolve_by_probing() {
        let mut mem = NeuraMem::new(0, small_config(8), EvictionPolicy::Rolling);
        // Tags 1 and 9 collide in an 8-line pad (same home slot).
        assert!(mem.accept(hacc(1, 1.0, 2)));
        assert!(mem.accept(hacc(9, 5.0, 2)));
        assert!(mem.accept(hacc(1, 1.0, 2)));
        assert!(mem.accept(hacc(9, 5.0, 2)));
        for c in 0..4u64 {
            mem.tick(Cycle(c));
        }
        let mut out = mem.drain_evicted();
        out.sort_by_key(|e| e.tag);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tag, 1);
        assert!((out[0].value - 2.0).abs() < 1e-12);
        assert_eq!(out[1].tag, 9);
        assert!((out[1].value - 10.0).abs() < 1e-12);
        assert!(mem.stats().collisions > 0);
    }

    #[test]
    fn instruction_buffer_applies_backpressure() {
        let cfg = NeuraMemConfig { instruction_buffer: 2, ..small_config(16) };
        let mut mem = NeuraMem::new(0, cfg, EvictionPolicy::Rolling);
        assert!(mem.accept(hacc(1, 1.0, 5)));
        assert!(mem.accept(hacc(2, 1.0, 5)));
        assert!(!mem.accept(hacc(3, 1.0, 5)));
        assert_eq!(mem.stats().haccs_received, 2);
    }

    #[test]
    fn throughput_limited_by_hash_engines() {
        let cfg = NeuraMemConfig { hash_engines: 1, comparators: 1, ..small_config(64) };
        let mut mem = NeuraMem::new(0, cfg, EvictionPolicy::Rolling);
        for t in 0..10u64 {
            assert!(mem.accept(hacc(t, 1.0, 1)));
        }
        mem.tick(Cycle(0));
        // Only one instruction can retire per cycle with a single engine.
        assert_eq!(mem.stats().haccs_processed, 1);
        assert_eq!(mem.backlog(), 9);
    }

    #[test]
    fn latency_histogram_records_generation_to_completion() {
        let mut mem = NeuraMem::new(0, small_config(16), EvictionPolicy::Rolling);
        let mut h = hacc(1, 1.0, 1);
        h.generated_at = 10;
        assert!(mem.accept(h));
        mem.tick(Cycle(150));
        assert_eq!(mem.hacc_latency_histogram().count(), 1);
        assert!(mem.hacc_latency_histogram().mean() >= 140.0);
    }
}
