//! The NeuraChip instruction set: `MMH` and `HACC`.
//!
//! NeuraChip extends a conventional ISA with two 128-bit instructions
//! (Figures 7 and 9 of the paper):
//!
//! * `matrix_mult_hash_N` (`MMH1/2/4/8`) — executed by a NeuraCore: pairs up
//!   to `N` stored elements of a column of the adjacency matrix `A` with one
//!   row of the feature matrix `B`, producing up to `N × row_nnz(B)` partial
//!   products, each dispatched as a `HACC`.
//! * `hash_accumulate` (`HACC`) — executed by a NeuraMem: hashes the TAG,
//!   accumulates DATA into the matching hash-line and decrements the rolling
//!   eviction COUNTER.

use serde::{Deserialize, Serialize};

/// Operation codes of the extended ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// `matrix_mult_hash_N` with tile height `N ∈ {1, 2, 4, 8}`.
    Mmh(u8),
    /// `hash_accumulate`.
    Hacc,
}

impl Opcode {
    /// The 8-bit encoding of the opcode.
    pub fn encode(self) -> u8 {
        match self {
            Opcode::Mmh(1) => 0x10,
            Opcode::Mmh(2) => 0x11,
            Opcode::Mmh(4) => 0x12,
            Opcode::Mmh(8) => 0x13,
            Opcode::Mmh(n) => panic!("unsupported MMH tile height {n}"),
            Opcode::Hacc => 0x20,
        }
    }

    /// Decodes an 8-bit opcode.
    pub fn decode(byte: u8) -> Option<Opcode> {
        match byte {
            0x10 => Some(Opcode::Mmh(1)),
            0x11 => Some(Opcode::Mmh(2)),
            0x12 => Some(Opcode::Mmh(4)),
            0x13 => Some(Opcode::Mmh(8)),
            0x20 => Some(Opcode::Hacc),
            _ => None,
        }
    }
}

/// A `matrix_mult_hash_N` instruction (Figure 7: 128 bits).
///
/// The address fields are byte offsets relative to `base_addr`, exactly as in
/// Algorithm 1.  The `work` field carries the decoded task metadata the
/// simulator needs (which output rows / inner index the instruction covers);
/// hardware would re-derive this from the fetched operands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmhInstruction {
    /// Tile height `N` (1, 2, 4 or 8).
    pub tile: u8,
    /// Base address added to all other addresses (Reg 0, 32 bits).
    pub base_addr: u32,
    /// Offset of the matrix-A data elements (Reg 1, 22 bits).
    pub a_data_addr: u32,
    /// Offset of the matrix-B column indices (Reg 2, 22 bits).
    pub b_col_ind_addr: u32,
    /// Offset of the matrix-B data elements (Reg 3, 22 bits).
    pub b_data_addr: u32,
    /// Offset of the rolling-eviction counters (Reg 4, 22 bits).
    pub roll_counter_addr: u32,
    /// Decoded task payload (simulator-side metadata).
    pub work: MmhWork,
}

/// Decoded task metadata carried alongside an [`MmhInstruction`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmhWork {
    /// Shared inner index `k` (column of `A`, row of `B`).
    pub k: usize,
    /// Output rows covered (up to `tile` of them) and the A values.
    pub a_rows: Vec<usize>,
    /// Values of `A` for each entry of `a_rows`.
    pub a_values: Vec<f64>,
    /// Column indices of row `k` of `B`.
    pub b_cols: Vec<usize>,
    /// Values of row `k` of `B`.
    pub b_values: Vec<f64>,
    /// Rolling-eviction counter for each `(a_row, b_col)` partial product,
    /// laid out row-major (`a_rows.len() × b_cols.len()`).
    pub counters: Vec<u32>,
}

impl MmhInstruction {
    /// Number of `HACC` instructions this instruction will dispatch.
    pub fn hacc_count(&self) -> usize {
        self.work.a_rows.len() * self.work.b_cols.len()
    }

    /// Number of operand bytes the NeuraCore must fetch from memory:
    /// A values, B column indices, B values and rolling counters.
    pub fn operand_bytes(&self) -> usize {
        let a = self.work.a_rows.len() * 8;
        let b_idx = self.work.b_cols.len() * 4;
        let b_val = self.work.b_values.len() * 8;
        let ctr = self.work.counters.len() * 4;
        a + b_idx + b_val + ctr
    }

    /// Encodes the 128-bit instruction word (Figure 7).  The register fields
    /// are truncated to their architectural widths (22 bits each).
    pub fn encode(&self) -> u128 {
        let opcode = Opcode::Mmh(self.tile).encode() as u128;
        let reg0 = self.base_addr as u128;
        let reg1 = (self.a_data_addr & 0x3F_FFFF) as u128;
        let reg2 = (self.b_col_ind_addr & 0x3F_FFFF) as u128;
        let reg3 = (self.b_data_addr & 0x3F_FFFF) as u128;
        let reg4 = (self.roll_counter_addr & 0x3F_FFFF) as u128;
        (opcode << 120) | (reg0 << 88) | (reg1 << 66) | (reg2 << 44) | (reg3 << 22) | reg4
    }
}

/// A `hash_accumulate` instruction (Figure 9: 128 bits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaccInstruction {
    /// Output-element tag (Reg 0/1 — the hash key).
    pub tag: u64,
    /// Partial-product value (Reg 2).
    pub data: f64,
    /// Total number of partial products that contribute to this output tag
    /// (the rolling-eviction counter, Reg 3, 16 bits).  The NeuraMem installs
    /// this value on the first arrival, decrements it on every accumulation
    /// including the first, and evicts the hash-line when it reaches zero.
    pub counter: u32,
    /// Cycle at which the producing NeuraCore generated this instruction
    /// (simulator bookkeeping for the Figure 15 latency histogram).
    pub generated_at: u64,
}

impl HaccInstruction {
    /// Architectural size of the instruction in bytes (128 bits).
    pub const BYTES: usize = 16;

    /// Creates a `HACC` with the given tag, value and remaining-contribution count.
    pub fn new(tag: u64, data: f64, counter: u32) -> Self {
        HaccInstruction { tag, data, counter, generated_at: 0 }
    }

    /// Encodes the 128-bit instruction word (Figure 9).
    pub fn encode(&self) -> u128 {
        let opcode = Opcode::Hacc.encode() as u128;
        let tag = (self.tag & 0xFFFF_FFFF) as u128;
        let data_bits = (self.data as f32).to_bits() as u128;
        let counter = (self.counter & 0xFFFF) as u128;
        (opcode << 120) | (tag << 88) | (data_bits << 56) | (counter << 40)
    }

    /// Decodes the architectural fields back out of an encoded word.
    pub fn decode(word: u128) -> Option<Self> {
        let opcode = ((word >> 120) & 0xFF) as u8;
        if Opcode::decode(opcode) != Some(Opcode::Hacc) {
            return None;
        }
        let tag = ((word >> 88) & 0xFFFF_FFFF) as u64;
        let data = f32::from_bits(((word >> 56) & 0xFFFF_FFFF) as u32) as f64;
        let counter = ((word >> 40) & 0xFFFF) as u32;
        Some(HaccInstruction { tag, data, counter, generated_at: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mmh() -> MmhInstruction {
        MmhInstruction {
            tile: 4,
            base_addr: 0x1000,
            a_data_addr: 0x10,
            b_col_ind_addr: 0x20,
            b_data_addr: 0x30,
            roll_counter_addr: 0x40,
            work: MmhWork {
                k: 3,
                a_rows: vec![0, 2, 5],
                a_values: vec![1.0, 2.0, 3.0],
                b_cols: vec![1, 4],
                b_values: vec![0.5, 0.25],
                counters: vec![0; 6],
            },
        }
    }

    #[test]
    fn opcode_round_trip() {
        for op in [Opcode::Mmh(1), Opcode::Mmh(2), Opcode::Mmh(4), Opcode::Mmh(8), Opcode::Hacc] {
            assert_eq!(Opcode::decode(op.encode()), Some(op));
        }
        assert_eq!(Opcode::decode(0xFF), None);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn invalid_mmh_tile_panics_on_encode() {
        Opcode::Mmh(3).encode();
    }

    #[test]
    fn mmh_counts_and_bytes() {
        let mmh = sample_mmh();
        assert_eq!(mmh.hacc_count(), 6);
        // 3 A values (24B) + 2 B indices (8B) + 2 B values (16B) + 6 counters (24B).
        assert_eq!(mmh.operand_bytes(), 24 + 8 + 16 + 24);
    }

    #[test]
    fn mmh_encoding_places_opcode_in_top_byte() {
        let word = sample_mmh().encode();
        assert_eq!(((word >> 120) & 0xFF) as u8, Opcode::Mmh(4).encode());
    }

    #[test]
    fn hacc_encode_decode_round_trip() {
        let hacc = HaccInstruction::new(0x00AB_CDEF, 1.5, 42);
        let decoded = HaccInstruction::decode(hacc.encode()).unwrap();
        assert_eq!(decoded.tag, 0x00AB_CDEF);
        assert_eq!(decoded.counter, 42);
        assert!((decoded.data - 1.5).abs() < 1e-6);
    }

    #[test]
    fn hacc_decode_rejects_wrong_opcode() {
        let word = sample_mmh().encode();
        assert!(HaccInstruction::decode(word).is_none());
    }

    #[test]
    fn hacc_is_16_bytes() {
        assert_eq!(HaccInstruction::BYTES, 16);
    }

    #[test]
    fn mmh4_can_dispatch_up_to_16_haccs() {
        let mut mmh = sample_mmh();
        mmh.work.a_rows = vec![0, 1, 2, 3];
        mmh.work.a_values = vec![1.0; 4];
        mmh.work.b_cols = vec![0, 1, 2, 3];
        mmh.work.b_values = vec![1.0; 4];
        mmh.work.counters = vec![0; 16];
        assert_eq!(mmh.hacc_count(), 16);
    }
}
