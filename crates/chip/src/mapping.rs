//! Compute-mapping algorithms (Section 3.5, Figures 12/13).
//!
//! A mapping algorithm decides which NeuraMem accumulates the partial
//! products of a given output tag (and, symmetrically, which NeuraCore a
//! multiplication task is pushed to).  The paper requires mappings to be
//! *consistent* (same tag → same unit), *cheap to evaluate*, and
//! *sparsity-agnostic*.  Four schemes are modelled:
//!
//! * [`RingMapping`] — round-robin / ring hashing,
//! * [`ModularMapping`] — prime-number modular hashing,
//! * [`RandomTableMapping`] — ideal random mapping with a full lookup table,
//! * [`DrhmMapping`] — the paper's Dynamically Reseeding Hash-based Mapping.

use neura_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Which mapping algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingKind {
    /// Round-robin (ring) hashing.
    Ring,
    /// Prime-number based modular hashing.
    Modular,
    /// Random mapping backed by a full lookup table (idealised).
    RandomTable,
    /// Dynamically Reseeding Hash-based Mapping (the paper's contribution).
    Drhm,
}

impl MappingKind {
    /// All four evaluated mappings, in the order of Figure 13.
    pub const ALL: [MappingKind; 4] =
        [MappingKind::Ring, MappingKind::Modular, MappingKind::RandomTable, MappingKind::Drhm];

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MappingKind::Ring => "ring",
            MappingKind::Modular => "modular",
            MappingKind::RandomTable => "random-table",
            MappingKind::Drhm => "drhm",
        }
    }

    /// Builds the corresponding mapper over `units` target resources.
    pub fn build(&self, units: usize, seed: u64) -> Box<dyn ComputeMapping> {
        match self {
            MappingKind::Ring => Box::new(RingMapping::new(units)),
            MappingKind::Modular => Box::new(ModularMapping::new(units)),
            MappingKind::RandomTable => Box::new(RandomTableMapping::new(units, seed)),
            MappingKind::Drhm => Box::new(DrhmMapping::new(units, seed)),
        }
    }
}

/// A consistent assignment of tags to compute/accumulation units.
///
/// `row` is the output row the tag belongs to (the row of the input sparse
/// matrix whose computation produced it).  DRHM derives its seed γ from the
/// row — the paper's "compact lookup table" of per-row seeds — so that every
/// partial product of a given output element maps to the same NeuraMem no
/// matter when it is generated, while different rows still get statistically
/// independent placements.  The other mappings ignore `row`.
pub trait ComputeMapping: std::fmt::Debug + Send {
    /// Maps a tag (belonging to output row `row`) to a unit index in `[0, units)`.
    fn map(&mut self, tag: u64, row: u64) -> usize;

    /// Number of target units.
    fn units(&self) -> usize;

    /// Memory overhead of the mapping state in bytes (the paper's argument
    /// for DRHM over a full random table).
    fn state_bytes(&self) -> usize;
}

/// Round-robin / ring hashing: `tag mod units`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingMapping {
    units: usize,
}

impl RingMapping {
    /// Creates a ring mapping over `units` resources.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "mapping needs at least one unit");
        RingMapping { units }
    }
}

impl ComputeMapping for RingMapping {
    fn map(&mut self, tag: u64, _row: u64) -> usize {
        (tag % self.units as u64) as usize
    }
    fn units(&self) -> usize {
        self.units
    }
    fn state_bytes(&self) -> usize {
        8
    }
}

/// Prime-number modular hashing: `(tag · p) mod q mod units` with fixed primes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModularMapping {
    units: usize,
}

const MODULAR_PRIME_MULTIPLIER: u64 = 2_654_435_761; // Knuth's multiplicative constant
const MODULAR_PRIME_MODULUS: u64 = 4_294_967_291; // largest 32-bit prime

impl ModularMapping {
    /// Creates a prime-modular mapping over `units` resources.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "mapping needs at least one unit");
        ModularMapping { units }
    }
}

impl ComputeMapping for ModularMapping {
    fn map(&mut self, tag: u64, _row: u64) -> usize {
        let hashed = tag.wrapping_mul(MODULAR_PRIME_MULTIPLIER) % MODULAR_PRIME_MODULUS;
        (hashed % self.units as u64) as usize
    }
    fn units(&self) -> usize {
        self.units
    }
    fn state_bytes(&self) -> usize {
        16
    }
}

/// Idealised random mapping: every distinct tag gets an independent uniform
/// unit, remembered in a lookup table to stay consistent.  Sparsity-agnostic
/// but with memory growing linearly in the number of distinct tags — the
/// impracticality the paper points out.
#[derive(Debug)]
pub struct RandomTableMapping {
    units: usize,
    rng: DeterministicRng,
    table: std::collections::HashMap<u64, usize>,
}

impl RandomTableMapping {
    /// Creates a random-table mapping over `units` resources.
    pub fn new(units: usize, seed: u64) -> Self {
        assert!(units > 0, "mapping needs at least one unit");
        RandomTableMapping { units, rng: DeterministicRng::new(seed), table: Default::default() }
    }
}

impl ComputeMapping for RandomTableMapping {
    fn map(&mut self, tag: u64, _row: u64) -> usize {
        let units = self.units;
        let rng = &mut self.rng;
        *self.table.entry(tag).or_insert_with(|| rng.next_below(units as u64) as usize)
    }
    fn units(&self) -> usize {
        self.units
    }
    fn state_bytes(&self) -> usize {
        // One (tag, unit) pair per distinct tag.
        self.table.len() * (8 + 8)
    }
}

/// Dynamically Reseeding Hash-based Mapping (DRHM).
///
/// Implements the lower-k-bit variant of Equation 3:
/// `H_l(TAG, γ) = ((TAG << k) >> k) · γ mod N`, where the seed `γ` changes
/// for every row of the input sparse matrix.  The paper stores the per-row
/// seeds in a compact lookup table; this implementation derives γ for a row
/// on demand from the base seed with a SplitMix64-style mixer, which is
/// functionally identical (same seed is always recovered for the same row)
/// with O(1) state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrhmMapping {
    units: usize,
    /// Number of upper bits masked away (`k` in Equation 3).
    k: u32,
    base_seed: u64,
}

impl DrhmMapping {
    /// Creates a DRHM mapping over `units` resources with the default `k = 12`.
    pub fn new(units: usize, seed: u64) -> Self {
        Self::with_k(units, seed, 12)
    }

    /// Creates a DRHM mapping with an explicit `k` (number of upper TAG bits ignored).
    pub fn with_k(units: usize, seed: u64, k: u32) -> Self {
        assert!(units > 0, "mapping needs at least one unit");
        assert!(k < 32, "k must leave at least one low bit");
        DrhmMapping { units, k, base_seed: seed }
    }

    /// The seed γ used for a given input row (always odd, so the
    /// multiplicative hash never degenerates).
    pub fn gamma_for_row(&self, row: u64) -> u64 {
        let mut z = self.base_seed ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) | 1
    }

    /// Lower-k-bit hash of Equation 3 for an arbitrary γ (exposed for tests
    /// and for the upper/lower-bit comparison experiment).
    ///
    /// The `· γ mod N` of Equation 3 is realised as fixed-point
    /// multiplicative hashing (multiply by the odd seed, keep the upper half
    /// of the product, reduce modulo `N`).  A plain low-bit modulo would
    /// ignore γ whenever `N` is a power of two, which defeats the reseeding;
    /// taking the upper product bits keeps the constant-time lookup while
    /// making every γ produce a genuinely different placement.
    pub fn hash_lower(tag32: u32, gamma: u64, k: u32, units: usize) -> usize {
        let masked = ((tag32 << k) >> k) as u64;
        let mixed = masked.wrapping_mul(gamma);
        (((mixed >> 32) ^ mixed) % units as u64) as usize
    }

    /// Upper-k-bit hash of Equation 4.
    pub fn hash_upper(tag32: u32, gamma: u64, k: u32, units: usize) -> usize {
        let masked = ((tag32 >> k) << k) as u64;
        let mixed = masked.wrapping_mul(gamma);
        (((mixed >> 32) ^ mixed) % units as u64) as usize
    }
}

impl ComputeMapping for DrhmMapping {
    fn map(&mut self, tag: u64, row: u64) -> usize {
        Self::hash_lower(tag as u32, self.gamma_for_row(row), self.k, self.units)
    }

    fn units(&self) -> usize {
        self.units
    }

    fn state_bytes(&self) -> usize {
        // The base seed and k: constant regardless of workload size.
        8 + 4
    }
}

/// Builds the per-unit workload histogram produced by mapping every tag.
///
/// `rows[i]` lists the tags generated while computing input row `i`; the row
/// index is what drives DRHM's seed selection.  The returned vector has one
/// entry per unit and is the data behind Figures 12/13.
pub fn workload_histogram(mapping: &mut dyn ComputeMapping, rows: &[Vec<u64>]) -> Vec<u64> {
    let mut histogram = vec![0u64; mapping.units()];
    for (row_idx, row) in rows.iter().enumerate() {
        for &tag in row {
            histogram[mapping.map(tag, row_idx as u64)] += 1;
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::stats::imbalance;

    fn strided_rows(rows: usize, stride: u64, per_row: usize) -> Vec<Vec<u64>> {
        (0..rows as u64)
            .map(|r| (0..per_row as u64).map(|i| r * 1000 + i * stride).collect())
            .collect()
    }

    #[test]
    fn mappings_are_consistent_for_a_tag() {
        for kind in MappingKind::ALL {
            let mut m = kind.build(16, 7);
            let a = m.map(12345, 3);
            let b = m.map(12345, 3);
            assert_eq!(a, b, "{} must map the same tag consistently", kind.name());
            assert!(a < 16);
        }
    }

    #[test]
    fn ring_mapping_is_modulo() {
        let mut m = RingMapping::new(8);
        assert_eq!(m.map(0, 0), 0);
        assert_eq!(m.map(9, 0), 1);
        assert_eq!(m.map(16, 0), 0);
    }

    #[test]
    fn drhm_uses_a_different_seed_per_row() {
        let m = DrhmMapping::new(64, 3);
        let gammas: std::collections::HashSet<u64> =
            (0..32u64).map(|row| m.gamma_for_row(row)).collect();
        assert!(gammas.len() > 28, "per-row seeds must be (almost) all distinct");
        // The same row always yields the same seed (the compact lookup table).
        assert_eq!(m.gamma_for_row(7), m.gamma_for_row(7));
        let mut m = m;
        // And therefore the same (tag, row) pair always maps identically.
        assert_eq!(m.map(777, 5), m.map(777, 5));
    }

    #[test]
    fn drhm_placement_varies_across_rows() {
        let mut m = DrhmMapping::new(64, 3);
        let placements: std::collections::HashSet<usize> =
            (0..16u64).map(|row| m.map(777, row)).collect();
        assert!(placements.len() > 4, "the same tag pattern must spread across rows");
    }

    #[test]
    fn drhm_state_is_constant_size_random_table_grows() {
        let mut drhm = DrhmMapping::new(32, 1);
        let mut table = RandomTableMapping::new(32, 1);
        for tag in 0..10_000u64 {
            drhm.map(tag, tag / 100);
            table.map(tag, tag / 100);
        }
        assert!(drhm.state_bytes() < 64);
        assert!(table.state_bytes() >= 10_000 * 8);
    }

    #[test]
    fn strided_tags_create_ring_hot_spots_but_not_drhm() {
        // Tags that are multiples of the unit count all land on unit 0 for
        // ring hashing — the hot-spot pathology of Figure 12(a).
        let units = 16usize;
        let rows = strided_rows(64, units as u64, 32);

        let mut ring = RingMapping::new(units);
        let ring_hist = workload_histogram(&mut ring, &rows);
        let (ring_peak, _) = imbalance(&ring_hist);

        let mut drhm = DrhmMapping::new(units, 11);
        let drhm_hist = workload_histogram(&mut drhm, &rows);
        let (drhm_peak, _) = imbalance(&drhm_hist);

        assert!(
            ring_peak > 2.0 * drhm_peak,
            "ring peak/mean {ring_peak} should dwarf DRHM {drhm_peak}"
        );
    }

    #[test]
    fn drhm_balance_is_close_to_random_table() {
        let units = 32usize;
        let rows = strided_rows(128, 64, 64);
        let mut drhm = DrhmMapping::new(units, 5);
        let mut random = RandomTableMapping::new(units, 5);
        let (drhm_peak, _) = imbalance(&workload_histogram(&mut drhm, &rows));
        let (rand_peak, _) = imbalance(&workload_histogram(&mut random, &rows));
        assert!(
            drhm_peak < rand_peak * 2.0,
            "DRHM imbalance {drhm_peak} should be comparable to random {rand_peak}"
        );
    }

    #[test]
    fn lower_bit_hash_uses_low_bits_upper_uses_high() {
        // Two tags differing only in the upper bits map identically under the
        // lower-bit hash, and vice versa.
        let gamma = 0x9E3779B97F4A7C15 | 1;
        let a = DrhmMapping::hash_lower(0x0000_1234, gamma, 12, 64);
        let b = DrhmMapping::hash_lower(0xFFF0_1234 & 0x000F_FFFF, gamma, 12, 64);
        assert_eq!(a, b);
        let c = DrhmMapping::hash_upper(0x1234_0000, gamma, 12, 64);
        let d = DrhmMapping::hash_upper(0x1234_0FFF, gamma, 12, 64);
        assert_eq!(c, d);
    }

    #[test]
    fn histogram_conserves_work() {
        let rows = strided_rows(10, 3, 17);
        let total_tags: u64 = rows.iter().map(|r| r.len() as u64).sum();
        for kind in MappingKind::ALL {
            let mut m = kind.build(8, 2);
            let hist = workload_histogram(m.as_mut(), &rows);
            assert_eq!(hist.iter().sum::<u64>(), total_tags, "{}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        RingMapping::new(0);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(MappingKind::Drhm.name(), "drhm");
        assert_eq!(MappingKind::ALL.len(), 4);
    }
}
