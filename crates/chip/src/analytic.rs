//! Analytic fast-path cost model — the cheap tier of the two-tier chip
//! model.
//!
//! The cycle-accurate [`Accelerator`](crate::accelerator::Accelerator) is
//! the truth oracle: it prices one SpGEMM workload by simulating every
//! NeuraCore dispatch, hashpad probe and HBM transaction, which costs
//! milliseconds-to-seconds per (config, workload) pair. That is far too
//! slow to price millions of distinct serve requests or to screen a
//! 100× tuner grid. This module provides the fast tier: a closed-form
//! estimate `cycles ≈ f(nnz, bloat, tile size, cores/mems per tile, HBM
//! preset)` whose coefficients were fitted *offline* from cycle-level runs
//! (see `crates/bench/src/bin/xval.rs --fit`) and checked in as data.
//! Pricing a request is a handful of floating-point operations —
//! nanoseconds instead of a simulation.
//!
//! # Model form
//!
//! Per (tile size × HBM preset) — nine groups — the model is **additive**
//! over seven mechanistic features, with a hinge so the workload term can
//! never drive the estimate below the group's fixed overhead:
//!
//! ```text
//! cycles = c0 + max(0,  c_instr · mmh_instructions[mmh_tile] / total_cores
//!                     + c_cols  · active_cols
//!                     + c_pp    · partial_products / total_cores
//!                     + c_hub   · max_row_pp
//!                     + c_out   · output_nnz / total_mems
//!                     + c_nnz   · nnz / total_cores
//!                     + c_rows  · rows)
//! ```
//!
//! The features mirror the architecture's serial and parallel axes: MMH
//! instructions per core (issue/dispatch throughput at the configured
//! tile height), active columns (DRHM reseed boundaries — the instruction
//! stream's serialisation points), partial products per core (multiply
//! work), the heaviest single row (the critical path one core must chew
//! through alone), output non-zeros per NeuraMem (hashpad accumulation),
//! streamed edges per core, and rows (per-row epilogue work). Log-linear
//! forms were tried first and plateau around 25–50% worst-case error:
//! a product of powers cannot express the *additive/bottleneck* structure
//! of an event-driven pipeline where fixed overhead, per-instruction cost
//! and hub serialisation stack linearly. The additive form fits every
//! group to within the golden bounds.
//!
//! Cores and mems enter through feature denominators, so one coefficient
//! group prices every cores-per-tile/mems sweep variation; the HBM preset
//! indexes the group table because memory timing changes the *shape* of
//! the cost surface (row-miss exposure is workload-dependent), not just
//! its scale. Frequency never appears: cycle counts are
//! frequency-independent, and [`AnalyticModel::seconds`] converts through
//! [`ChipConfig::seconds_per_cycle`] exactly like the simulator.
//!
//! # Guarantees
//!
//! Estimates are strictly positive, finite and deterministic (pure f64
//! arithmetic, no global state). Monotonicity is structural where it is
//! promised: `c_nnz` is constrained non-negative during fitting, so the
//! estimate is monotone non-decreasing in `nnz` at fixed everything-else,
//! and every feature is linear in its workload field, so scaling a whole
//! request by k ≥ 1 scales the hinge argument by k and the estimate never
//! decreases (`max(0, k·S)` is non-decreasing in k). The remaining
//! coefficients keep free signs — that freedom is what lets the fit hit
//! the error bounds — so *pointwise* monotonicity in every individual
//! field is deliberately not claimed. The fit quality is pinned by the
//! `xval` golden: mean absolute relative error ≤ 5% and worst-case ≤ 15%
//! against the cycle oracle across all 20 paper datasets at paper scale
//! (`just xval-paper`), and `crates/chip/tests/cost_model_properties.rs`
//! re-checks positivity, determinism, monotonicity and a seeded sample of
//! the error bound on every test run.

use crate::config::{ChipConfig, TileSize};
use neura_mem::HbmPreset;
use neura_sparse::{bloat, CsrMatrix};

/// Bytes per stored non-zero (4-byte row index + 4-byte column index +
/// 4-byte value), matching the DRAM traffic accounting of the simulator.
pub const BYTES_PER_NNZ: u64 = 12;

/// Structural features of one SpGEMM workload — everything the analytic
/// model reads about the *workload* (configuration features are taken
/// from the [`ChipConfig`] at pricing time).
///
/// Computing them is one symbolic pass over the operands
/// (O(partial products) integer work), thousands of times cheaper than a
/// cycle-level simulation; once computed, any number of configurations
/// can be priced against them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadFeatures {
    /// Rows of the left operand (graph nodes).
    pub rows: u64,
    /// Non-zeros of the left operand (graph edges).
    pub nnz: u64,
    /// Intermediate partial products of the multiplication (the "bloat"
    /// numerator: every scalar multiply the kernel performs).
    pub partial_products: u64,
    /// Non-zeros of the output matrix after accumulation.
    pub output_nnz: u64,
    /// Partial products of the heaviest single output row — the
    /// critical-path row a single NeuraCore must chew through, however
    /// many cores sit idle. Hub-dominated graphs (scale-free, community)
    /// concentrate work here; banded matrices spread it evenly.
    pub max_row_pp: u64,
    /// Productive columns of the left operand (non-empty, paired with a
    /// non-empty right-operand row): the compiler emits one DRHM reseed
    /// boundary per column it processes, so this counts the serialisation
    /// points of the instruction stream.
    pub active_cols: u64,
    /// `MMH<t>` instructions the compiler emits at tile heights 1, 2, 4
    /// and 8 (`Σ ceil(col_nnz / t)` over productive columns): the
    /// per-instruction overheads (operand fetch, issue, DRAM round-trips)
    /// scale with this, not with raw nnz. Indexed by [`mmh_tile_index`].
    pub mmh_instructions: [u64; 4],
}

/// Index into [`WorkloadFeatures::mmh_instructions`] for a configured MMH
/// tile height (1, 2, 4 or 8 — the heights the compiler accepts).
pub fn mmh_tile_index(mmh_tile: u8) -> usize {
    match mmh_tile {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        other => panic!("MMH tile height must be 1, 2, 4 or 8 (got {other})"),
    }
}

impl WorkloadFeatures {
    /// Extracts features for the square product `a · a` (the paper's
    /// benchmark workload) via a symbolic pass.
    pub fn from_square(a: &CsrMatrix) -> Self {
        let report = bloat::analyze_square(a);
        Self::from_bloat(a, a, a.nnz() as u64, max_row_pp(a, a), &report)
    }

    /// Extracts features for a general product `a · b`.
    pub fn from_pair(a: &CsrMatrix, b: &CsrMatrix) -> Self {
        let report = bloat::analyze(a, b);
        Self::from_bloat(a, b, (a.nnz() + b.nnz()) as u64 / 2, max_row_pp(a, b), &report)
    }

    fn from_bloat(
        a: &CsrMatrix,
        b: &CsrMatrix,
        nnz: u64,
        max_row_pp: u64,
        report: &bloat::BloatReport,
    ) -> Self {
        let (active_cols, mmh_instructions) = compiler_shape(a, b);
        WorkloadFeatures {
            rows: a.rows() as u64,
            nnz,
            partial_products: report.intermediate_partial_products,
            output_nnz: report.output_nnz as u64,
            max_row_pp,
            active_cols,
            mmh_instructions,
        }
    }

    /// Multiplication bloat: partial products per output non-zero (≥ 1
    /// for any non-empty product).
    pub fn bloat_factor(&self) -> f64 {
        self.partial_products as f64 / (self.output_nnz.max(1)) as f64
    }

    /// Floating-point operations of the multiplication (one multiply and
    /// one accumulate per partial product) — identical to
    /// `WorkloadProfile::flops` in `neura_baselines`.
    pub fn flops(&self) -> u64 {
        2 * self.partial_products
    }

    /// Bytes streamed from DRAM for both operands plus the written
    /// output, at [`BYTES_PER_NNZ`] bytes per element.
    pub fn streamed_bytes(&self) -> u64 {
        BYTES_PER_NNZ * (2 * self.nnz + self.output_nnz)
    }
}

/// Counts the instruction-stream shape the compiler would emit for the
/// product `a · b`: productive columns (columns of `a` that pair with a
/// non-empty row of `b` — the compiler skips the rest, and each one
/// processed is a DRHM reseed boundary) and `Σ_col ceil(col_nnz / t)` MMH
/// instructions over those columns at each tile height. O(nnz) — one
/// counting pass over the column indices.
fn compiler_shape(a: &CsrMatrix, b: &CsrMatrix) -> (u64, [u64; 4]) {
    let mut col_nnz = vec![0u64; a.cols()];
    for &c in a.col_idx() {
        col_nnz[c] += 1;
    }
    let mut active = 0u64;
    let mut instructions = [0u64; 4];
    for (k, &n) in col_nnz.iter().enumerate() {
        if n == 0 || k >= b.rows() || b.row_nnz(k) == 0 {
            continue;
        }
        active += 1;
        for (slot, height) in instructions.iter_mut().zip([1u64, 2, 4, 8]) {
            *slot += n.div_ceil(height);
        }
    }
    (active, instructions)
}

/// Partial products contributed by each row of `a` against `b`, reduced
/// to the heaviest row. O(nnz) — no hashing, just fan-out counting.
fn max_row_pp(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    (0..a.rows())
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter().map(|&k| b.row_nnz(k) as u64).sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// Fitted additive coefficients for one (tile size × HBM preset) group.
///
/// Only `nnz_per_core` carries a sign constraint (non-negative, enforced
/// by [`AnalyticModel::validate`]) — that, plus the hinge in
/// [`AnalyticModel::cycles`], is what backs the monotonicity guarantees.
/// The other coefficients keep free signs: the fit needs negative
/// corrections (e.g. output rows that overlap partial-product streaming)
/// to reach the error bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCoeffs {
    /// Tile size this group was fitted for.
    pub tile: TileSize,
    /// HBM preset this group was fitted for.
    pub hbm: HbmPreset,
    /// Fixed overhead `c0` in cycles (≥ 1; also the positivity floor).
    pub intercept: f64,
    /// Cycles per MMH instruction per NeuraCore (at the config's MMH tile
    /// height).
    pub instr_per_core: f64,
    /// Cycles per active column (DRHM reseed boundary).
    pub active_cols: f64,
    /// Cycles per partial product per NeuraCore.
    pub pp_per_core: f64,
    /// Cycles per partial product of the heaviest row (hub critical
    /// path).
    pub max_row_pp: f64,
    /// Cycles per output non-zero per NeuraMem.
    pub out_per_mem: f64,
    /// Cycles per input non-zero per NeuraCore (constrained ≥ 0).
    pub nnz_per_core: f64,
    /// Cycles per output row (write-back epilogue).
    pub rows: f64,
}

impl GroupCoeffs {
    /// Predicted cycles for the given feature vector: intercept plus the
    /// hinged workload term.
    fn predict(&self, z: &[f64; FEATURES]) -> f64 {
        let workload = self.instr_per_core * z[0]
            + self.active_cols * z[1]
            + self.pp_per_core * z[2]
            + self.max_row_pp * z[3]
            + self.out_per_mem * z[4]
            + self.nnz_per_core * z[5]
            + self.rows * z[6];
        self.intercept + workload.max(0.0)
    }
}

/// Number of (non-intercept) features the model reads.
pub const FEATURES: usize = 7;

/// Computes the additive feature vector for a (config, workload) pair,
/// in [`GroupCoeffs`] coefficient order.
///
/// Public so the `xval` fitting harness fits against exactly the features
/// the shipped model prices with.
pub fn feature_vector(config: &ChipConfig, w: &WorkloadFeatures) -> [f64; FEATURES] {
    let cores = config.total_cores() as f64;
    let mems = config.total_mems() as f64;
    [
        w.mmh_instructions[mmh_tile_index(config.mmh_tile)] as f64 / cores,
        w.active_cols as f64,
        w.partial_products as f64 / cores,
        w.max_row_pp as f64,
        w.output_nnz as f64 / mems,
        w.nnz as f64 / cores,
        w.rows as f64,
    ]
}

/// Number of coefficient groups: every [`TileSize`] × every
/// [`HbmPreset`].
pub const GROUPS: usize = TileSize::ALL.len() * HbmPreset::ALL.len();

/// Resolves a config's HBM timing back to the preset whose group prices
/// it: the exact preset when the timing matches one (the only case the
/// sweep/tuner surfaces produce), otherwise the preset with the nearest
/// channel width and miss latency, so hand-built custom timings still get
/// a sane estimate instead of a panic.
pub fn hbm_group_preset(config: &ChipConfig) -> HbmPreset {
    if let Some(preset) = HbmPreset::of(&config.hbm) {
        return preset;
    }
    let distance = |preset: &HbmPreset| {
        let t = preset.timing();
        let width =
            (t.bytes_per_cycle as f64).ln() - (config.hbm.bytes_per_cycle.max(1) as f64).ln();
        let miss = (t.row_miss_latency + t.base_latency).max(1) as f64;
        let lat = miss.ln()
            - ((config.hbm.row_miss_latency + config.hbm.base_latency).max(1) as f64).ln();
        width * width + lat * lat
    };
    HbmPreset::ALL
        .into_iter()
        .min_by(|a, b| distance(a).total_cmp(&distance(b)))
        .expect("HbmPreset::ALL is non-empty")
}

/// The closed-form cost model: one fitted coefficient group per
/// (tile size × HBM preset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticModel {
    /// Coefficient groups in tile-major order: for each tile size in
    /// [`TileSize::ALL`], every preset in [`HbmPreset::ALL`].
    pub groups: [GroupCoeffs; GROUPS],
}

/// Coefficients fitted offline by `cargo run --release --bin xval -- --fit`
/// over the (20 datasets × size-matched tile × 3 HBM presets × shrink ∈
/// {1, 2, 4, 8}) cycle-level sample grid (2026-08-09). The fit is a
/// weighted least squares in relative-error space (weight `1/cycles²`)
/// with paper-scale (shrink-1) cells up-weighted 128×, iteratively
/// re-solved with `nnz_per_core` clamped to zero when it goes negative.
/// Validation on the paper-scale grid: see `baselines/xval-smoke.json`
/// and the `xval` golden (mean abs rel error ≤ 5%, worst ≤ 15%).
const CALIBRATED_GROUPS: [GroupCoeffs; GROUPS] = [
    GroupCoeffs {
        tile: TileSize::Tile4,
        hbm: HbmPreset::Hbm2,
        intercept: 189.45178126489063,
        instr_per_core: 219.15966260530635,
        active_cols: -19.568362968928586,
        pp_per_core: -0.8274691096989739,
        max_row_pp: -1.5834071359818587,
        out_per_mem: 1.8018273950020853,
        nnz_per_core: 0.0,
        rows: 2.5499017385296527,
    },
    GroupCoeffs {
        tile: TileSize::Tile4,
        hbm: HbmPreset::Hbm2DualStack,
        intercept: 196.46527956292874,
        instr_per_core: 211.49101349095486,
        active_cols: -16.120725974905117,
        pp_per_core: -0.8429983492300448,
        max_row_pp: -1.8299981179736173,
        out_per_mem: 2.0793937996800738,
        nnz_per_core: 0.0,
        rows: 1.191768603604106,
    },
    GroupCoeffs {
        tile: TileSize::Tile4,
        hbm: HbmPreset::Ddr4,
        intercept: 209.75181837500554,
        instr_per_core: 198.29030010969086,
        active_cols: -10.750028753867953,
        pp_per_core: -0.6760408588243614,
        max_row_pp: -2.1933239129618474,
        out_per_mem: 3.359472580249233,
        nnz_per_core: 5.358906688852521,
        rows: -0.5139343697662798,
    },
    GroupCoeffs {
        tile: TileSize::Tile16,
        hbm: HbmPreset::Hbm2,
        intercept: 684.7864365650631,
        instr_per_core: -1029.2708087791907,
        active_cols: 27.643512561083373,
        pp_per_core: 5.33257757585511,
        max_row_pp: -0.4270192309591952,
        out_per_mem: 18.05981718603346,
        nnz_per_core: 183.45947269297974,
        rows: -6.235422753623388,
    },
    GroupCoeffs {
        tile: TileSize::Tile16,
        hbm: HbmPreset::Hbm2DualStack,
        intercept: 681.3615818983917,
        instr_per_core: -1134.1824576982626,
        active_cols: 27.29573118734583,
        pp_per_core: 5.038288734815938,
        max_row_pp: -0.6914379125119494,
        out_per_mem: 17.515481205132048,
        nnz_per_core: 216.92186075812123,
        rows: -5.1188311054225455,
    },
    GroupCoeffs {
        tile: TileSize::Tile16,
        hbm: HbmPreset::Ddr4,
        intercept: 779.1704125185685,
        instr_per_core: -308.4576027095432,
        active_cols: 16.19005057163252,
        pp_per_core: 4.3784226952797995,
        max_row_pp: -0.40704081031943207,
        out_per_mem: 23.13177372230158,
        nnz_per_core: 31.164622660724962,
        rows: -7.346213164888635,
    },
    GroupCoeffs {
        tile: TileSize::Tile64,
        hbm: HbmPreset::Hbm2,
        intercept: 1017.3040060182893,
        instr_per_core: -44512.266208287576,
        active_cols: 187.98482606472433,
        pp_per_core: -91.19692842796623,
        max_row_pp: 13.802367039995966,
        out_per_mem: 224.39650451972616,
        nnz_per_core: 10357.284970200286,
        rows: -38.10711892958107,
    },
    GroupCoeffs {
        tile: TileSize::Tile64,
        hbm: HbmPreset::Hbm2DualStack,
        intercept: 998.8043250604121,
        instr_per_core: -44442.422974620866,
        active_cols: 187.942489294035,
        pp_per_core: -91.48650690409002,
        max_row_pp: 13.856503721036555,
        out_per_mem: 225.14366882782917,
        nnz_per_core: 10337.784992574092,
        rows: -38.227579063575725,
    },
    GroupCoeffs {
        tile: TileSize::Tile64,
        hbm: HbmPreset::Ddr4,
        intercept: 1124.4411328543868,
        instr_per_core: -49969.119698980714,
        active_cols: 208.36229435396976,
        pp_per_core: -101.73116162006316,
        max_row_pp: 14.61180793925178,
        out_per_mem: 251.9568125812633,
        nnz_per_core: 11689.867983621789,
        rows: -41.344538267153794,
    },
];

/// The shipped model with the checked-in calibrated coefficients.
pub const CALIBRATED: AnalyticModel = AnalyticModel { groups: CALIBRATED_GROUPS };

impl AnalyticModel {
    /// Returns the calibrated model (checked-in fitted coefficients).
    pub fn calibrated() -> &'static AnalyticModel {
        &CALIBRATED
    }

    /// Builds a model from explicit coefficient groups (used by the
    /// fitting harness to evaluate candidate fits). Panics if the groups
    /// are out of order or violate an invariant.
    pub fn from_groups(groups: [GroupCoeffs; GROUPS]) -> Self {
        let model = AnalyticModel { groups };
        model.validate();
        model
    }

    /// Asserts the structural invariants: groups in tile-major
    /// [`TileSize::ALL`] × [`HbmPreset::ALL`] order, finite coefficients,
    /// intercept ≥ 1 (positivity floor) and `nnz_per_core` ≥ 0 (the
    /// nnz-monotonicity guarantee).
    pub fn validate(&self) {
        let mut expect = TileSize::ALL
            .iter()
            .flat_map(|&tile| HbmPreset::ALL.into_iter().map(move |hbm| (tile, hbm)));
        for group in &self.groups {
            let (tile, hbm) = expect.next().expect("GROUPS matches the product size");
            assert_eq!(
                (group.tile, group.hbm),
                (tile, hbm),
                "groups must be tile-major over TileSize::ALL × HbmPreset::ALL",
            );
            for c in [
                group.intercept,
                group.instr_per_core,
                group.active_cols,
                group.pp_per_core,
                group.max_row_pp,
                group.out_per_mem,
                group.nnz_per_core,
                group.rows,
            ] {
                assert!(c.is_finite(), "non-finite coefficient in {tile:?}/{hbm:?} group");
            }
            assert!(
                group.intercept >= 1.0,
                "intercept must be ≥ 1 for strict positivity ({tile:?}/{hbm:?})",
            );
            assert!(
                group.nnz_per_core >= 0.0,
                "nnz coefficient must be non-negative for nnz monotonicity ({tile:?}/{hbm:?})",
            );
        }
    }

    /// Coefficient group for a (tile size, HBM preset) pair.
    pub fn group(&self, tile: TileSize, hbm: HbmPreset) -> &GroupCoeffs {
        let tile_index = TileSize::ALL
            .iter()
            .position(|t| *t == tile)
            .expect("TileSize::ALL covers every variant");
        let hbm_index = HbmPreset::ALL
            .iter()
            .position(|p| *p == hbm)
            .expect("HbmPreset::ALL covers every variant");
        &self.groups[tile_index * HbmPreset::ALL.len() + hbm_index]
    }

    /// Estimated execution cycles for `workload` on `config`. Strictly
    /// positive and finite for any valid config; monotone non-decreasing
    /// in `nnz` and under proportional scaling of the whole workload.
    pub fn cycles(&self, config: &ChipConfig, workload: &WorkloadFeatures) -> f64 {
        let z = feature_vector(config, workload);
        let group = self.group(config.tile_size, hbm_group_preset(config));
        group.predict(&z).max(1.0)
    }

    /// Estimated cycles rounded to an integer cycle count (≥ 1), the
    /// shape `neura_serve::ClassCost` stores.
    pub fn class_cycles(&self, config: &ChipConfig, workload: &WorkloadFeatures) -> u64 {
        let estimate = self.cycles(config, workload).round();
        if estimate >= u64::MAX as f64 {
            u64::MAX
        } else {
            (estimate as u64).max(1)
        }
    }

    /// Estimated wall-clock seconds: cycles × the config's cycle time,
    /// exactly the conversion the cycle-level simulator applies.
    pub fn seconds(&self, config: &ChipConfig, workload: &WorkloadFeatures) -> f64 {
        self.cycles(config, workload) * config.seconds_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_mem::HbmPreset;

    fn sample_workload() -> WorkloadFeatures {
        WorkloadFeatures {
            rows: 1_000,
            nnz: 10_000,
            partial_products: 250_000,
            output_nnz: 60_000,
            max_row_pp: 2_500,
            active_cols: 900,
            mmh_instructions: [10_000, 5_400, 3_100, 1_900],
        }
    }

    #[test]
    fn calibrated_model_is_valid() {
        AnalyticModel::calibrated().validate();
    }

    #[test]
    fn estimates_are_positive_and_finite_for_every_tile_and_preset() {
        let w = sample_workload();
        for tile in TileSize::ALL {
            for preset in HbmPreset::ALL {
                let config = ChipConfig::for_tile_size(tile).with_hbm_preset(preset);
                let cycles = AnalyticModel::calibrated().cycles(&config, &w);
                assert!(cycles.is_finite() && cycles >= 1.0, "{tile:?}/{preset:?}");
                assert!(AnalyticModel::calibrated().class_cycles(&config, &w) >= 1);
            }
        }
    }

    #[test]
    fn seconds_scale_inversely_with_frequency() {
        let w = sample_workload();
        let slow = ChipConfig::tile_16().with_frequency_ghz(1.0);
        let fast = ChipConfig::tile_16().with_frequency_ghz(2.0);
        let model = AnalyticModel::calibrated();
        assert_eq!(model.cycles(&slow, &w), model.cycles(&fast, &w));
        let ratio = model.seconds(&slow, &w) / model.seconds(&fast, &w);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_workload_never_prices_cheaper() {
        let small = sample_workload();
        let big = WorkloadFeatures {
            rows: small.rows * 4,
            nnz: small.nnz * 4,
            partial_products: small.partial_products * 4,
            output_nnz: small.output_nnz * 4,
            max_row_pp: small.max_row_pp * 4,
            active_cols: small.active_cols * 4,
            mmh_instructions: small.mmh_instructions.map(|i| i * 4),
        };
        for tile in TileSize::ALL {
            let config = ChipConfig::for_tile_size(tile);
            let model = AnalyticModel::calibrated();
            assert!(model.cycles(&config, &big) >= model.cycles(&config, &small));
        }
    }

    #[test]
    fn features_match_symbolic_analysis() {
        let a = neura_sparse::gen::GraphGenerator::power_law(64, 256, 2.4, 7).generate().to_csr();
        let w = WorkloadFeatures::from_square(&a);
        let report = bloat::analyze_square(&a);
        assert_eq!(w.rows, a.rows() as u64);
        assert_eq!(w.nnz, a.nnz() as u64);
        assert_eq!(w.partial_products, report.intermediate_partial_products);
        assert_eq!(w.output_nnz, report.output_nnz as u64);
        assert!(w.bloat_factor() >= 1.0);
        assert_eq!(w.flops(), 2 * report.intermediate_partial_products);
        assert!(w.max_row_pp >= w.partial_products.div_ceil(w.rows.max(1)));
        assert!(w.max_row_pp <= w.partial_products);
        assert!(w.active_cols <= w.rows);
        assert!(
            w.mmh_instructions[0] <= w.nnz,
            "height-1 MMH = one instruction per nnz in a productive column"
        );
        assert!(w.mmh_instructions[3] >= w.active_cols, "at least one instruction per column");
        let program = crate::compiler::compile_spgemm(&a.to_csc(), &a, 4);
        assert_eq!(
            w.mmh_instructions[mmh_tile_index(4)],
            program.instruction_count() as u64,
            "feature mirrors the compiler's instruction stream exactly"
        );
    }
}
