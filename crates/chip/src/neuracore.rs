//! NeuraCore: the multiplication engine (Figure 6).
//!
//! A NeuraCore is a simple in-order core with several independent pipelines.
//! Each pipeline walks the Figure-6 sequence for one `MMH` instruction:
//! decode, register allocation, operand fetch from HBM (through the tile's
//! memory controller), partial-product computation, and finally dispatch of
//! one `HACC` instruction per partial product toward the NeuraMems.
//!
//! The core interacts with the rest of the chip through explicit hand-offs:
//! [`NeuraCore::tick`] returns the memory requests it wants to issue and the
//! `HACC` instructions it produced this cycle; the accelerator forwards the
//! former to the memory controller and the latter onto the NoC, and calls
//! [`NeuraCore::memory_response`] when data returns.

use crate::config::NeuraCoreConfig;
use crate::isa::{HaccInstruction, MmhInstruction};
use neura_mem::MemoryRequest;
use neura_sim::{Cycle, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Statistics exported by a NeuraCore.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NeuraCoreStats {
    /// MMH instructions accepted from the dispatcher.
    pub mmh_accepted: u64,
    /// MMH instructions fully executed.
    pub mmh_completed: u64,
    /// HACC instructions generated.
    pub haccs_generated: u64,
    /// Memory read requests issued.
    pub memory_requests: u64,
    /// Cycles in which at least one pipeline was waiting on memory.
    pub stall_cycles: u64,
    /// Cycles in which at least one pipeline did useful work.
    pub busy_cycles: u64,
    /// Cycles in which the whole core was idle.
    pub idle_cycles: u64,
    /// Cycles in which HACC output was blocked by NoC back-pressure.
    pub output_blocked_cycles: u64,
}

impl NeuraCoreStats {
    /// Cycles per completed MMH instruction.
    pub fn cpi(&self) -> f64 {
        if self.mmh_completed == 0 {
            0.0
        } else {
            (self.busy_cycles + self.stall_cycles + self.idle_cycles) as f64
                / self.mmh_completed as f64
        }
    }
}

/// A memory request produced by a pipeline, tagged with its origin so the
/// accelerator can route the response back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreMemoryRequest {
    /// Index of the pipeline that issued the request.
    pub pipeline: usize,
    /// The request itself.
    pub request: MemoryRequest,
}

/// How a core spent one tick — exactly one of the three, with the same
/// precedence the cycle counters use (`busy` wins over `stalled` wins
/// over `idle`). The profiler reads this off [`CoreTickOutput`] so stall
/// attribution never needs to diff the stats block mid-run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// At least one pipeline decoded or computed this cycle.
    Busy,
    /// Every active pipeline was waiting on outstanding memory responses.
    Stalled,
    /// No pipeline had work.
    #[default]
    Idle,
}

/// Output of one [`NeuraCore::tick`] call.
#[derive(Debug, Default)]
pub struct CoreTickOutput {
    /// Memory read requests to forward to the tile's memory controller.
    pub memory_requests: Vec<CoreMemoryRequest>,
    /// HACC instructions produced this cycle (already stamped with `generated_at`).
    pub haccs: Vec<HaccInstruction>,
    /// How the core spent the tick (mirrors the busy/stall/idle counters).
    pub outcome: TickOutcome,
    /// MMH instructions retired this tick (pipelines that finished Compute).
    pub mmh_retired: u32,
}

#[derive(Debug)]
enum PipelineState {
    Idle,
    Decode { instr: MmhInstruction, remaining: u64, started: u64 },
    WaitMem { instr: MmhInstruction, outstanding: usize, started: u64 },
    Compute { instr: MmhInstruction, produced: usize, started: u64 },
}

#[derive(Debug)]
struct Pipeline {
    state: PipelineState,
}

/// The NeuraCore multiplication engine.
#[derive(Debug)]
pub struct NeuraCore {
    id: usize,
    tile: usize,
    config: NeuraCoreConfig,
    instx: VecDeque<MmhInstruction>,
    pipelines: Vec<Pipeline>,
    /// Generated HACCs awaiting injection into the NoC (bounded by ports × 8).
    outbox: VecDeque<HaccInstruction>,
    /// Number of output columns of the current program (for tag computation).
    out_cols: u64,
    stats: NeuraCoreStats,
    cpi_histogram: Histogram,
    next_pipeline: usize,
}

impl NeuraCore {
    /// Creates a NeuraCore belonging to tile `tile`.
    pub fn new(id: usize, tile: usize, config: NeuraCoreConfig) -> Self {
        let pipelines =
            (0..config.pipelines).map(|_| Pipeline { state: PipelineState::Idle }).collect();
        NeuraCore {
            id,
            tile,
            config,
            instx: VecDeque::new(),
            pipelines,
            outbox: VecDeque::new(),
            out_cols: 1,
            stats: NeuraCoreStats::default(),
            cpi_histogram: Histogram::new(25, 20),
            next_pipeline: 0,
        }
    }

    /// Unit identifier (index within the chip).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tile this core belongs to (selects the memory channel).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Prepares the core for a new program by setting the output-matrix width
    /// used for tag computation and clearing residual state.
    pub fn prepare(&mut self, out_cols: u64) {
        self.out_cols = out_cols.max(1);
        self.instx.clear();
        self.outbox.clear();
        for p in &mut self.pipelines {
            p.state = PipelineState::Idle;
        }
    }

    /// True when the instruction buffer can accept another MMH instruction.
    pub fn can_accept(&self) -> bool {
        self.instx.len() < self.config.instruction_buffer
    }

    /// Number of instructions waiting plus executing (dispatcher load metric).
    pub fn load(&self) -> usize {
        self.instx.len()
            + self.pipelines.iter().filter(|p| !matches!(p.state, PipelineState::Idle)).count()
    }

    /// Accepts an MMH instruction from the dispatcher.
    ///
    /// Returns `false` when the instruction buffer is full.
    pub fn accept(&mut self, instr: MmhInstruction) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.instx.push_back(instr);
        self.stats.mmh_accepted += 1;
        true
    }

    /// Notifies the core that one of pipeline `pipeline`'s memory requests
    /// completed.
    pub fn memory_response(&mut self, pipeline: usize) {
        if let Some(p) = self.pipelines.get_mut(pipeline) {
            if let PipelineState::WaitMem { outstanding, .. } = &mut p.state {
                *outstanding = outstanding.saturating_sub(1);
            }
        }
    }

    /// Core statistics.
    pub fn stats(&self) -> &NeuraCoreStats {
        &self.stats
    }

    /// Per-instruction cycle-count histogram (Figure 14).
    pub fn cpi_histogram(&self) -> &Histogram {
        &self.cpi_histogram
    }

    /// True when no instruction is buffered, executing, or waiting for output.
    pub fn is_idle(&self) -> bool {
        self.instx.is_empty()
            && self.outbox.is_empty()
            && self.pipelines.iter().all(|p| matches!(p.state, PipelineState::Idle))
    }

    /// Advances the core one cycle.
    ///
    /// `output_credit` bounds how many HACCs may be handed to the NoC this
    /// cycle (router injection back-pressure).
    pub fn tick(&mut self, now: Cycle, output_credit: usize) -> CoreTickOutput {
        let mut output = CoreTickOutput::default();
        let cycle = now.as_u64();
        let mut any_busy = false;
        let mut any_stalled = false;

        // Shared multiplier budget across pipelines for this cycle.
        let mut multiplier_budget = self.config.multipliers;
        // Outbox cap: allow a few cycles worth of buffering before blocking.
        let outbox_cap = self.config.ports * 8;

        let pipeline_count = self.pipelines.len();
        for offset in 0..pipeline_count {
            // Round-robin start index so pipeline 0 is not structurally favoured.
            let idx = (self.next_pipeline + offset) % pipeline_count;
            let pipeline = &mut self.pipelines[idx];
            match &mut pipeline.state {
                PipelineState::Idle => {
                    if let Some(instr) = self.instx.pop_front() {
                        pipeline.state =
                            PipelineState::Decode { instr, remaining: 1, started: cycle };
                        any_busy = true;
                    }
                }
                PipelineState::Decode { instr, remaining, started } => {
                    any_busy = true;
                    if *remaining > 0 {
                        *remaining -= 1;
                    } else {
                        // Issue the operand fetches: A data, B column indices,
                        // B data and the rolling counters (Algorithm 1).
                        let base = instr.base_addr as u64;
                        let requests = [
                            (instr.a_data_addr as u64, instr.work.a_rows.len() * 8),
                            (instr.b_col_ind_addr as u64, instr.work.b_cols.len() * 4),
                            (instr.b_data_addr as u64, instr.work.b_values.len() * 8),
                            (instr.roll_counter_addr as u64, instr.work.counters.len() * 4),
                        ];
                        for (addr, bytes) in requests {
                            output.memory_requests.push(CoreMemoryRequest {
                                pipeline: idx,
                                request: MemoryRequest::read(base + addr, bytes.max(4)),
                            });
                        }
                        self.stats.memory_requests += 4;
                        let instr = std::mem::replace(
                            instr,
                            MmhInstruction {
                                tile: 1,
                                base_addr: 0,
                                a_data_addr: 0,
                                b_col_ind_addr: 0,
                                b_data_addr: 0,
                                roll_counter_addr: 0,
                                work: crate::isa::MmhWork {
                                    k: 0,
                                    a_rows: Vec::new(),
                                    a_values: Vec::new(),
                                    b_cols: Vec::new(),
                                    b_values: Vec::new(),
                                    counters: Vec::new(),
                                },
                            },
                        );
                        let started = *started;
                        pipeline.state = PipelineState::WaitMem { instr, outstanding: 4, started };
                    }
                }
                PipelineState::WaitMem { instr, outstanding, started } => {
                    if *outstanding == 0 {
                        let instr = std::mem::replace(
                            instr,
                            MmhInstruction {
                                tile: 1,
                                base_addr: 0,
                                a_data_addr: 0,
                                b_col_ind_addr: 0,
                                b_data_addr: 0,
                                roll_counter_addr: 0,
                                work: crate::isa::MmhWork {
                                    k: 0,
                                    a_rows: Vec::new(),
                                    a_values: Vec::new(),
                                    b_cols: Vec::new(),
                                    b_values: Vec::new(),
                                    counters: Vec::new(),
                                },
                            },
                        );
                        let started = *started;
                        pipeline.state = PipelineState::Compute { instr, produced: 0, started };
                        any_busy = true;
                    } else {
                        any_stalled = true;
                    }
                }
                PipelineState::Compute { instr, produced, started } => {
                    any_busy = true;
                    let total = instr.hacc_count();
                    while *produced < total
                        && multiplier_budget > 0
                        && self.outbox.len() < outbox_cap
                    {
                        let b_len = instr.work.b_cols.len();
                        let a_idx = *produced / b_len;
                        let b_idx = *produced % b_len;
                        let row = instr.work.a_rows[a_idx];
                        let col = instr.work.b_cols[b_idx];
                        let value = instr.work.a_values[a_idx] * instr.work.b_values[b_idx];
                        let counter = instr.work.counters[*produced];
                        let tag = row as u64 * self.out_cols + col as u64;
                        let mut hacc = HaccInstruction::new(tag, value, counter);
                        hacc.generated_at = cycle;
                        self.outbox.push_back(hacc);
                        self.stats.haccs_generated += 1;
                        *produced += 1;
                        multiplier_budget -= 1;
                    }
                    if *produced >= total {
                        self.stats.mmh_completed += 1;
                        output.mmh_retired += 1;
                        self.cpi_histogram.record(cycle.saturating_sub(*started) + 1);
                        pipeline.state = PipelineState::Idle;
                    } else if self.outbox.len() >= outbox_cap {
                        self.stats.output_blocked_cycles += 1;
                    }
                }
            }
        }
        self.next_pipeline = (self.next_pipeline + 1) % pipeline_count.max(1);

        // Drain the outbox up to the NoC injection credit.
        let to_send = output_credit.min(self.outbox.len());
        for _ in 0..to_send {
            output.haccs.push(self.outbox.pop_front().expect("outbox length checked"));
        }

        if any_busy {
            self.stats.busy_cycles += 1;
            output.outcome = TickOutcome::Busy;
        } else if any_stalled {
            self.stats.stall_cycles += 1;
            output.outcome = TickOutcome::Stalled;
        } else {
            self.stats.idle_cycles += 1;
            output.outcome = TickOutcome::Idle;
        }
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MmhWork;

    fn core_config() -> NeuraCoreConfig {
        NeuraCoreConfig {
            pipeline_registers: 8,
            pipelines: 2,
            multipliers: 4,
            address_generators: 2,
            ports: 4,
            instruction_buffer: 4,
        }
    }

    fn mmh(tile: u8, rows: &[usize], cols: &[usize]) -> MmhInstruction {
        MmhInstruction {
            tile,
            base_addr: 0,
            a_data_addr: 0x100,
            b_col_ind_addr: 0x200,
            b_data_addr: 0x300,
            roll_counter_addr: 0x400,
            work: MmhWork {
                k: 0,
                a_rows: rows.to_vec(),
                a_values: vec![2.0; rows.len()],
                b_cols: cols.to_vec(),
                b_values: vec![3.0; cols.len()],
                counters: vec![1; rows.len() * cols.len()],
            },
        }
    }

    /// Drives the core until idle, acknowledging all memory requests after
    /// `mem_latency` cycles.  Returns all generated HACCs.
    fn run_to_completion(
        core: &mut NeuraCore,
        mem_latency: u64,
        max_cycles: u64,
    ) -> Vec<HaccInstruction> {
        let mut haccs = Vec::new();
        let mut pending: Vec<(u64, usize)> = Vec::new(); // (ready_cycle, pipeline)
        for c in 0..max_cycles {
            let out = core.tick(Cycle(c), 16);
            for req in out.memory_requests {
                pending.push((c + mem_latency, req.pipeline));
            }
            let (ready, rest): (Vec<_>, Vec<_>) = pending.into_iter().partition(|&(t, _)| t <= c);
            pending = rest;
            for (_, pipeline) in ready {
                core.memory_response(pipeline);
            }
            haccs.extend(out.haccs);
            if core.is_idle() && pending.is_empty() {
                break;
            }
        }
        haccs
    }

    #[test]
    fn executes_a_single_mmh_and_produces_all_haccs() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(16);
        assert!(core.accept(mmh(4, &[0, 1, 2, 3], &[0, 1, 2, 3])));
        let haccs = run_to_completion(&mut core, 10, 500);
        assert_eq!(haccs.len(), 16);
        assert!(core.is_idle());
        assert_eq!(core.stats().mmh_completed, 1);
        assert_eq!(core.stats().haccs_generated, 16);
        // All partial products are 2.0 * 3.0.
        assert!(haccs.iter().all(|h| (h.data - 6.0).abs() < 1e-12));
        // Tags use row * out_cols + col.
        assert!(haccs.iter().any(|h| h.tag == 3 * 16 + 2));
    }

    #[test]
    fn instruction_buffer_enforces_capacity() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(4);
        for _ in 0..4 {
            assert!(core.accept(mmh(1, &[0], &[0])));
        }
        assert!(!core.accept(mmh(1, &[0], &[0])));
        assert_eq!(core.stats().mmh_accepted, 4);
    }

    #[test]
    fn memory_latency_creates_stall_cycles() {
        let mut fast = NeuraCore::new(0, 0, core_config());
        fast.prepare(8);
        fast.accept(mmh(4, &[0, 1], &[0, 1]));
        run_to_completion(&mut fast, 2, 500);

        let mut slow = NeuraCore::new(1, 0, core_config());
        slow.prepare(8);
        slow.accept(mmh(4, &[0, 1], &[0, 1]));
        run_to_completion(&mut slow, 100, 1_000);

        assert!(slow.stats().stall_cycles > fast.stats().stall_cycles);
    }

    #[test]
    fn cpi_histogram_records_completed_instructions() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(8);
        for _ in 0..3 {
            core.accept(mmh(2, &[0, 1], &[0, 1, 2]));
        }
        run_to_completion(&mut core, 20, 2_000);
        assert_eq!(core.cpi_histogram().count(), 3);
        assert!(core.cpi_histogram().mean() > 20.0);
        assert!(core.stats().cpi() > 0.0);
    }

    #[test]
    fn output_credit_limits_hacc_injection_per_cycle() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(8);
        core.accept(mmh(4, &[0, 1, 2, 3], &[0, 1, 2, 3]));
        // Run with zero output credit: HACCs accumulate internally, none escape.
        let mut produced = 0;
        let mut pending: Vec<(u64, usize)> = Vec::new();
        for c in 0..200u64 {
            let out = core.tick(Cycle(c), 0);
            for req in out.memory_requests {
                pending.push((c + 5, req.pipeline));
            }
            let (ready, rest): (Vec<_>, Vec<_>) = pending.into_iter().partition(|&(t, _)| t <= c);
            pending = rest;
            for (_, p) in ready {
                core.memory_response(p);
            }
            produced += out.haccs.len();
        }
        assert_eq!(produced, 0);
        assert!(!core.is_idle(), "HACCs are stuck in the outbox");
        // Granting credit drains them.
        let mut drained = 0;
        for c in 200..400u64 {
            drained += core.tick(Cycle(c), 4).haccs.len();
        }
        assert_eq!(drained, 16);
    }

    #[test]
    fn load_counts_buffered_and_executing_instructions() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(8);
        assert_eq!(core.load(), 0);
        core.accept(mmh(1, &[0], &[0]));
        core.accept(mmh(1, &[1], &[0]));
        assert_eq!(core.load(), 2);
    }

    #[test]
    fn four_memory_requests_per_mmh() {
        let mut core = NeuraCore::new(0, 0, core_config());
        core.prepare(8);
        core.accept(mmh(4, &[0, 1, 2, 3], &[0, 1]));
        let mut requests = 0;
        let mut pending: Vec<(u64, usize)> = Vec::new();
        for c in 0..50u64 {
            let out = core.tick(Cycle(c), 16);
            requests += out.memory_requests.len();
            for req in out.memory_requests {
                pending.push((c + 1, req.pipeline));
            }
            let (ready, rest): (Vec<_>, Vec<_>) = pending.into_iter().partition(|&(t, _)| t <= c);
            pending = rest;
            for (_, p) in ready {
                core.memory_response(p);
            }
        }
        assert_eq!(requests, 4);
        assert_eq!(core.stats().memory_requests, 4);
    }
}
