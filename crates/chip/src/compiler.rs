//! The NeuraCompiler: lowers SpGEMM / GCN-aggregation workloads onto the
//! NeuraChip ISA.
//!
//! The compiler mirrors the paper's NeuraCompiler module: it takes the
//! adjacency matrix in CSC form and the feature (or second adjacency) matrix
//! in CSR form, tiles the Gustavson dataflow into `MMH<tile>` tasks, lays the
//! operands out in a virtual address space, and — crucially for the
//! rolling-eviction mechanism — precomputes the contribution count of every
//! output element so each partial product can carry its eviction counter.

use crate::isa::{MmhInstruction, MmhWork};
use neura_sparse::{CscMatrix, CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Virtual-address-space layout used by the compiler.
pub mod layout {
    /// Base address of matrix A's value array (CSC order).
    pub const A_DATA_BASE: u64 = 0x0000_0000;
    /// Base address of matrix B's column-index array (CSR order).
    pub const B_COL_IDX_BASE: u64 = 0x4000_0000;
    /// Base address of matrix B's value array (CSR order).
    pub const B_DATA_BASE: u64 = 0x8000_0000;
    /// Base address of the rolling-counter array.
    pub const COUNTER_BASE: u64 = 0xC000_0000;
    /// Base address of the output matrix (indexed by output tag).
    pub const OUTPUT_BASE: u64 = 0xE000_0000;
}

/// A compiled workload: the instruction stream plus its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// The `MMH` instruction stream in dispatch order.
    pub instructions: Vec<MmhInstruction>,
    /// Indices into `instructions` marking the end of each processed column
    /// of `A` (the DRHM reseed boundaries).
    pub row_boundaries: Vec<usize>,
    /// Shape of the output matrix (rows, cols).
    pub output_shape: (usize, usize),
    /// Number of `HACC` instructions the program will generate.
    pub total_partial_products: u64,
    /// Number of distinct output elements (non-zeros of the result).
    pub output_nnz: usize,
    /// Contribution count (reduction fan-in) per output tag.
    pub fanin: HashMap<u64, u32>,
    /// Tile height used for the MMH instructions.
    pub tile: u8,
    /// Total operand bytes the NeuraCores must read from HBM.
    pub input_bytes: u64,
    /// Total bytes the NeuraMems will write back for the output matrix.
    pub output_bytes: u64,
}

impl Program {
    /// Number of `MMH` instructions.
    pub fn instruction_count(&self) -> usize {
        self.instructions.len()
    }

    /// The output tag of element `(row, col)`.
    pub fn tag_of(&self, row: usize, col: usize) -> u64 {
        (row as u64) * self.output_shape.1 as u64 + col as u64
    }

    /// Decodes an output tag back into `(row, col)`.
    pub fn coords_of(&self, tag: u64) -> (usize, usize) {
        let cols = self.output_shape.1 as u64;
        ((tag / cols) as usize, (tag % cols) as usize)
    }
}

/// Compiles the SpGEMM `C = A × B` into an `MMH<tile>` instruction stream.
///
/// `A` is consumed in CSC form (streamed column by column, `tile` stored
/// elements at a time) and `B` in CSR form, matching Section 3.1.
///
/// # Panics
///
/// Panics if the shapes are incompatible or `tile` is not 1, 2, 4 or 8.
pub fn compile_spgemm(a: &CscMatrix, b: &CsrMatrix, tile: u8) -> Program {
    assert!(matches!(tile, 1 | 2 | 4 | 8), "MMH tile height must be 1, 2, 4 or 8");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");

    let out_cols = b.cols() as u64;
    // Pass 1: symbolic SpGEMM to obtain the contribution count of every
    // output element (the rolling-eviction counters).
    let mut fanin: HashMap<u64, u32> = HashMap::new();
    for k in 0..a.cols() {
        let (a_rows, _) = a.col(k);
        let (b_cols, _) = b.row(k);
        for &i in a_rows {
            for &j in b_cols {
                *fanin.entry(i as u64 * out_cols + j as u64).or_insert(0) += 1;
            }
        }
    }

    // Pass 2: emit the tiled instruction stream.
    let mut instructions = Vec::new();
    let mut row_boundaries = Vec::new();
    let mut total_partial_products = 0u64;
    let mut input_bytes = 0u64;
    let mut a_cursor = 0u64; // index into A's value array (CSC order)

    for k in 0..a.cols() {
        let (a_rows, a_vals) = a.col(k);
        let (b_cols, b_vals) = b.row(k);
        if a_rows.is_empty() || b_cols.is_empty() {
            a_cursor += a_rows.len() as u64;
            if !instructions.is_empty() {
                row_boundaries.push(instructions.len());
            }
            continue;
        }
        let b_row_start = b.row_ptr()[k] as u64;
        for chunk_start in (0..a_rows.len()).step_by(tile as usize) {
            let chunk_end = (chunk_start + tile as usize).min(a_rows.len());
            let rows_chunk = &a_rows[chunk_start..chunk_end];
            let vals_chunk = &a_vals[chunk_start..chunk_end];
            let mut counters = Vec::with_capacity(rows_chunk.len() * b_cols.len());
            for &i in rows_chunk {
                for &j in b_cols {
                    let tag = i as u64 * out_cols + j as u64;
                    counters.push(fanin[&tag]);
                }
            }
            let work = MmhWork {
                k,
                a_rows: rows_chunk.to_vec(),
                a_values: vals_chunk.to_vec(),
                b_cols: b_cols.to_vec(),
                b_values: b_vals.to_vec(),
                counters,
            };
            let instr = MmhInstruction {
                tile,
                base_addr: 0,
                a_data_addr: (layout::A_DATA_BASE + (a_cursor + chunk_start as u64) * 8) as u32,
                b_col_ind_addr: (layout::B_COL_IDX_BASE + b_row_start * 4) as u32,
                b_data_addr: (layout::B_DATA_BASE + b_row_start * 8) as u32,
                roll_counter_addr: (layout::COUNTER_BASE.wrapping_add(total_partial_products * 4))
                    as u32,
                work: instr_work_placeholder(),
            };
            // `instr_work_placeholder` keeps construction order readable; fill now.
            let mut instr = instr;
            instr.work = work;
            total_partial_products += instr.hacc_count() as u64;
            input_bytes += instr.operand_bytes() as u64;
            instructions.push(instr);
        }
        a_cursor += a_rows.len() as u64;
        row_boundaries.push(instructions.len());
    }

    let output_nnz = fanin.len();
    Program {
        instructions,
        row_boundaries,
        output_shape: (a.rows(), b.cols()),
        total_partial_products,
        output_nnz,
        fanin,
        tile,
        input_bytes,
        output_bytes: output_nnz as u64 * 8,
    }
}

fn instr_work_placeholder() -> MmhWork {
    MmhWork {
        k: 0,
        a_rows: Vec::new(),
        a_values: Vec::new(),
        b_cols: Vec::new(),
        b_values: Vec::new(),
        counters: Vec::new(),
    }
}

/// Compiles the GCN aggregation `A × X` where `X` is a dense feature matrix.
///
/// The dense feature matrix is expressed as a fully-populated CSR so that the
/// same tiled-Gustavson lowering applies; every row of `X` then has
/// `feature_dim` stored elements, which is exactly how the paper's
/// aggregation-phase SpGEMM treats dense features.
pub fn compile_aggregation(a: &CscMatrix, features: &DenseMatrix, tile: u8) -> Program {
    let features_csr = dense_to_csr(features);
    compile_spgemm(a, &features_csr, tile)
}

/// Converts a dense matrix to CSR keeping every entry (including zeros) so
/// the structural fan-in of the aggregation matches the dense computation.
fn dense_to_csr(m: &DenseMatrix) -> CsrMatrix {
    let rows = m.rows();
    let cols = m.cols();
    let row_ptr: Vec<usize> = (0..=rows).map(|r| r * cols).collect();
    let col_idx: Vec<usize> = (0..rows).flat_map(|_| 0..cols).collect();
    let values: Vec<f64> = (0..rows).flat_map(|r| m.row(r).to_vec()).collect();
    CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .expect("dense layout is structurally valid CSR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::gen::{feature_matrix, GraphGenerator};
    use neura_sparse::spgemm;

    fn small_graph(seed: u64) -> CsrMatrix {
        GraphGenerator::power_law(60, 400, 2.1, seed).generate().to_csr()
    }

    #[test]
    fn partial_product_count_matches_reference() {
        let a = small_graph(1);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        let (_, stats) = spgemm::multiply_counting(&a, &a);
        assert_eq!(program.total_partial_products, stats.multiplications);
        assert_eq!(program.output_nnz, stats.output_nnz);
    }

    #[test]
    fn fanin_sums_to_partial_products() {
        let a = small_graph(2);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        let fanin_sum: u64 = program.fanin.values().map(|&f| f as u64).sum();
        assert_eq!(fanin_sum, program.total_partial_products);
        assert!(program.fanin.values().all(|&f| f >= 1));
    }

    #[test]
    fn every_instruction_respects_tile_height() {
        let a = small_graph(3);
        for tile in [1u8, 2, 4, 8] {
            let program = compile_spgemm(&a.to_csc(), &a, tile);
            assert!(program
                .instructions
                .iter()
                .all(|i| i.work.a_rows.len() <= tile as usize && !i.work.a_rows.is_empty()));
            assert!(program.instructions.iter().all(|i| i.tile == tile));
        }
    }

    #[test]
    fn larger_tiles_need_fewer_instructions() {
        let a = small_graph(4);
        let p1 = compile_spgemm(&a.to_csc(), &a, 1);
        let p4 = compile_spgemm(&a.to_csc(), &a, 4);
        let p8 = compile_spgemm(&a.to_csc(), &a, 8);
        assert!(p4.instruction_count() <= p1.instruction_count());
        assert!(p8.instruction_count() <= p4.instruction_count());
        assert_eq!(p1.total_partial_products, p8.total_partial_products);
    }

    #[test]
    fn counters_match_fanin_for_each_partial_product() {
        let a = small_graph(5);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        for instr in &program.instructions {
            let mut idx = 0;
            for &i in &instr.work.a_rows {
                for &j in &instr.work.b_cols {
                    let tag = program.tag_of(i, j);
                    assert_eq!(instr.work.counters[idx], program.fanin[&tag]);
                    idx += 1;
                }
            }
        }
    }

    #[test]
    fn row_boundaries_are_monotonic_and_end_at_last_instruction() {
        let a = small_graph(6);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        assert!(program.row_boundaries.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            *program.row_boundaries.last().unwrap(),
            program.instruction_count(),
            "the final boundary closes the program"
        );
    }

    #[test]
    fn tag_round_trip() {
        let a = small_graph(7);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        for &(r, c) in &[(0usize, 0usize), (3, 17), (59, 59)] {
            let tag = program.tag_of(r, c);
            assert_eq!(program.coords_of(tag), (r, c));
        }
    }

    #[test]
    fn aggregation_lowering_covers_dense_features() {
        let a = small_graph(8);
        let x = feature_matrix(a.cols(), 8, 3);
        let program = compile_aggregation(&a.to_csc(), &x, 4);
        // Every (non-empty row of A) × feature column pair is an output element.
        assert_eq!(program.total_partial_products, a.nnz() as u64 * 8);
        assert_eq!(program.output_shape, (a.rows(), 8));
    }

    #[test]
    fn input_bytes_accounts_for_all_operands() {
        let a = small_graph(9);
        let program = compile_spgemm(&a.to_csc(), &a, 4);
        let manual: u64 = program.instructions.iter().map(|i| i.operand_bytes() as u64).sum();
        assert_eq!(program.input_bytes, manual);
        assert_eq!(program.output_bytes, program.output_nnz as u64 * 8);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = CsrMatrix::identity(4).to_csc();
        let b = CsrMatrix::identity(5);
        compile_spgemm(&a, &b, 4);
    }
}
