//! NeuraChip configurations (Tables 2 and 3 of the paper).

use crate::mapping::MappingKind;
pub use neura_mem::HbmPreset;
use neura_mem::HbmTiming;
use serde::{Deserialize, Serialize};

/// The three evaluated tile sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileSize {
    /// Tile-4: 1 NeuraCore and 1 NeuraMem per tile.
    Tile4,
    /// Tile-16: 4 NeuraCores and 4 NeuraMems per tile (headline configuration).
    Tile16,
    /// Tile-64: 16 NeuraCores and 16 NeuraMems per tile.
    Tile64,
}

impl TileSize {
    /// All evaluated tile sizes, smallest first.
    pub const ALL: [TileSize; 3] = [TileSize::Tile4, TileSize::Tile16, TileSize::Tile64];

    /// Display name as used in the paper ("Tile-4", …).
    pub fn name(&self) -> &'static str {
        match self {
            TileSize::Tile4 => "Tile-4",
            TileSize::Tile16 => "Tile-16",
            TileSize::Tile64 => "Tile-64",
        }
    }

    /// Compact lower-case label ("t4", "t16", "t64") — the single spelling
    /// used by config fingerprints, fleet-mix IDs and artifact record IDs.
    pub fn label(&self) -> &'static str {
        match self {
            TileSize::Tile4 => "t4",
            TileSize::Tile16 => "t16",
            TileSize::Tile64 => "t64",
        }
    }
}

/// Per-NeuraCore configuration (Table 2, "NeuraCore" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuraCoreConfig {
    /// Pipeline registers per pipeline.
    pub pipeline_registers: usize,
    /// Number of pipelines.
    pub pipelines: usize,
    /// Number of multipliers (partial products computable per cycle, per core).
    pub multipliers: usize,
    /// Number of address generators.
    pub address_generators: usize,
    /// Router ports.
    pub ports: usize,
    /// Capacity of the instruction buffer feeding the core.
    pub instruction_buffer: usize,
}

/// Per-NeuraMem configuration (Table 2, "NeuraMem" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuraMemConfig {
    /// TAG comparators per hash engine.
    pub comparators: usize,
    /// Number of hash engines.
    pub hash_engines: usize,
    /// Hash-lines in the HashPad.
    pub hashlines: usize,
    /// Accumulators (HACC instructions retired per cycle, per unit).
    pub accumulators: usize,
    /// Router ports.
    pub ports: usize,
    /// Capacity of the instruction buffer feeding the unit.
    pub instruction_buffer: usize,
}

impl NeuraMemConfig {
    /// HashPad size in bytes: each hash-line stores TAG (4B), DATA (4B),
    /// COUNTER (2B) plus an ID/valid byte, rounded to 12 bytes per line.
    pub fn hashpad_bytes(&self) -> usize {
        self.hashlines * 12
    }
}

/// Whether completed hash-lines are evicted immediately (rolling) or held
/// until a row barrier (the `HACC-BE` baseline of Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Rolling eviction (`HACC-RE`): evict as soon as the counter hits zero.
    Rolling,
    /// Barrier eviction (`HACC-BE`): evict completed lines only at row barriers.
    Barrier,
}

/// Full accelerator configuration (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Which named tile size this configuration corresponds to.
    pub tile_size: TileSize,
    /// Number of tiles (always 8 — one per HBM channel).
    pub tiles: usize,
    /// NeuraCores per tile.
    pub cores_per_tile: usize,
    /// NeuraMems per tile.
    pub mems_per_tile: usize,
    /// Routers per tile.
    pub routers_per_tile: usize,
    /// Per-core configuration.
    pub core: NeuraCoreConfig,
    /// Per-mem configuration.
    pub mem: NeuraMemConfig,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// HBM timing per channel.
    pub hbm: HbmTiming,
    /// Memory-controller queue capacity.
    pub mem_queue_capacity: usize,
    /// Router packet-buffer capacity.
    pub router_buffer: usize,
    /// Compute-mapping algorithm for accumulation placement.
    pub mapping: MappingKind,
    /// Eviction policy of the hash pads.
    pub eviction: EvictionPolicy,
    /// Tile height of the MMH instruction (1, 2, 4 or 8).
    pub mmh_tile: u8,
    /// Seed for every stochastic decision (DRHM reseeds, random mapping).
    pub seed: u64,
}

impl ChipConfig {
    /// The Tile-4 configuration of Tables 2/3.
    pub fn tile_4() -> Self {
        ChipConfig {
            tile_size: TileSize::Tile4,
            tiles: 8,
            cores_per_tile: 1,
            mems_per_tile: 1,
            routers_per_tile: 4,
            core: NeuraCoreConfig {
                pipeline_registers: 4,
                pipelines: 2,
                multipliers: 2,
                address_generators: 1,
                ports: 4,
                instruction_buffer: 8,
            },
            mem: NeuraMemConfig {
                comparators: 1,
                hash_engines: 2,
                hashlines: 4096,
                accumulators: 128,
                ports: 4,
                instruction_buffer: 16,
            },
            frequency_ghz: 1.0,
            hbm: HbmTiming::hbm2(),
            mem_queue_capacity: 64,
            router_buffer: 16,
            mapping: MappingKind::Drhm,
            eviction: EvictionPolicy::Rolling,
            mmh_tile: 4,
            seed: 0xC0FFEE,
        }
    }

    /// The Tile-16 configuration (the paper's headline chip).
    pub fn tile_16() -> Self {
        ChipConfig {
            tile_size: TileSize::Tile16,
            tiles: 8,
            cores_per_tile: 4,
            mems_per_tile: 4,
            routers_per_tile: 8,
            core: NeuraCoreConfig {
                pipeline_registers: 8,
                pipelines: 4,
                multipliers: 4,
                address_generators: 2,
                ports: 4,
                instruction_buffer: 16,
            },
            mem: NeuraMemConfig {
                comparators: 4,
                hash_engines: 4,
                hashlines: 2048,
                accumulators: 256,
                ports: 4,
                instruction_buffer: 32,
            },
            ..Self::tile_4()
        }
    }

    /// The Tile-64 configuration.
    pub fn tile_64() -> Self {
        ChipConfig {
            tile_size: TileSize::Tile64,
            tiles: 8,
            cores_per_tile: 16,
            mems_per_tile: 16,
            routers_per_tile: 32,
            core: NeuraCoreConfig {
                pipeline_registers: 16,
                pipelines: 8,
                multipliers: 8,
                address_generators: 2,
                ports: 4,
                instruction_buffer: 32,
            },
            mem: NeuraMemConfig {
                comparators: 8,
                hash_engines: 8,
                hashlines: 2048,
                accumulators: 512,
                ports: 4,
                instruction_buffer: 64,
            },
            ..Self::tile_4()
        }
    }

    /// Configuration for a named tile size.
    pub fn for_tile_size(tile: TileSize) -> Self {
        match tile {
            TileSize::Tile4 => Self::tile_4(),
            TileSize::Tile16 => Self::tile_16(),
            TileSize::Tile64 => Self::tile_64(),
        }
    }

    /// Overrides the compute-mapping algorithm.
    pub fn with_mapping(mut self, mapping: MappingKind) -> Self {
        self.mapping = mapping;
        self
    }

    /// Overrides the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Overrides the MMH tile height.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is not one of 1, 2, 4, 8.
    pub fn with_mmh_tile(mut self, tile: u8) -> Self {
        assert!(matches!(tile, 1 | 2 | 4 | 8), "MMH tile height must be 1, 2, 4 or 8");
        self.mmh_tile = tile;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the NeuraCore count per tile.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores_per_tile(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "a tile needs at least one NeuraCore");
        self.cores_per_tile = cores;
        self
    }

    /// Overrides the NeuraMem count per tile.
    ///
    /// # Panics
    ///
    /// Panics if `mems` is zero.
    pub fn with_mems_per_tile(mut self, mems: usize) -> Self {
        assert!(mems >= 1, "a tile needs at least one NeuraMem");
        self.mems_per_tile = mems;
        self
    }

    /// Overrides the router packet-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero (a router must buffer at least one packet).
    pub fn with_router_buffer(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "router buffer needs at least one slot");
        self.router_buffer = slots;
        self
    }

    /// Overrides the memory-controller queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_mem_queue_capacity(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "memory queue needs at least one slot");
        self.mem_queue_capacity = slots;
        self
    }

    /// Overrides the clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn with_frequency_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be finite and positive");
        self.frequency_ghz = ghz;
        self
    }

    /// Overrides the HBM timing with a named preset.
    pub fn with_hbm_preset(mut self, preset: HbmPreset) -> Self {
        self.hbm = preset.timing();
        self
    }

    /// Total NeuraCores in the chip.
    pub fn total_cores(&self) -> usize {
        self.tiles * self.cores_per_tile
    }

    /// Total NeuraMems in the chip.
    pub fn total_mems(&self) -> usize {
        self.tiles * self.mems_per_tile
    }

    /// Total routers in the chip.
    pub fn total_routers(&self) -> usize {
        self.tiles * self.routers_per_tile
    }

    /// Total pipelines across all NeuraCores.
    pub fn total_pipelines(&self) -> usize {
        self.total_cores() * self.core.pipelines
    }

    /// Total hash engines across all NeuraMems.
    pub fn total_hash_engines(&self) -> usize {
        self.total_mems() * self.mem.hash_engines
    }

    /// Total TAG comparators across all NeuraMems.
    pub fn total_comparators(&self) -> usize {
        self.total_hash_engines() * self.mem.comparators
    }

    /// Total HashPad capacity in megabytes (Table 3 row "Total HashPad Size").
    pub fn total_hashpad_mb(&self) -> f64 {
        self.total_mems() as f64 * self.mem.hashpad_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Register-file bits per pipeline (Table 3 row "Pipeline Register File").
    pub fn register_file_bits_per_pipeline(&self) -> usize {
        self.core.pipeline_registers * 128
    }

    /// Peak sustained throughput in GFLOP/s as reported in Table 5
    /// (8 / 32 / 128 GFLOPs for Tile-4/16/64).
    ///
    /// The paper counts one retired partial product per NeuraCore per cycle —
    /// the rate at which HACCs can be absorbed by the NeuraMems — rather than
    /// the raw multiplier count, so the figure scales with the core count.
    pub fn peak_gflops(&self) -> f64 {
        self.total_cores() as f64 * self.frequency_ghz
    }

    /// Aggregate HBM bandwidth in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.hbm.peak_bandwidth_gbps(self.frequency_ghz) * self.tiles as f64
    }

    /// Wall-clock seconds of one clock cycle at the configured frequency —
    /// the conversion the serving layer uses to turn memoised cycle costs
    /// into service times.
    ///
    /// # Panics
    ///
    /// Panics when the frequency is not finite and positive. The builder
    /// ([`Self::with_frequency_ghz`]) rejects such values at construction,
    /// but the field is public, so the conversion re-validates: a zero or
    /// NaN frequency here would silently turn every downstream service
    /// time into `inf`/NaN.
    pub fn seconds_per_cycle(&self) -> f64 {
        assert!(
            self.frequency_ghz.is_finite() && self.frequency_ghz > 0.0,
            "chip frequency must be finite and positive (got {})",
            self.frequency_ghz
        );
        1.0 / (self.frequency_ghz * 1e9)
    }

    /// A stable, human-readable fingerprint of every field that influences
    /// simulated behaviour. Two configurations share a fingerprint exactly
    /// when they are behaviourally identical, so memoised per-workload
    /// costs (the serving layer's cost tables) can be keyed by fingerprint
    /// and shared across fleet groups that run the same silicon.
    ///
    /// The encoding is positional and versioned only by the field set:
    /// adding a config field must extend the fingerprint.
    pub fn fingerprint(&self) -> String {
        let core = &self.core;
        let mem = &self.mem;
        let hbm = match HbmPreset::of(&self.hbm) {
            Some(preset) => preset.name().to_string(),
            None => format!(
                "hbm{}.{}.{}.{}.{}.{}.{}.{}",
                self.hbm.row_hit_latency,
                self.hbm.row_miss_latency,
                self.hbm.row_conflict_latency,
                self.hbm.burst_bytes,
                self.hbm.bytes_per_cycle,
                self.hbm.banks_per_channel,
                self.hbm.row_bytes,
                self.hbm.base_latency
            ),
        };
        format!(
            "n{}x{}c{}m{}r{}-core{}.{}.{}.{}.{}.{}-mem{}.{}.{}.{}.{}.{}-f{:?}-{}-q{}-rb{}-{}-{}-mmh{}-s{}",
            self.tiles,
            self.tile_size.label(),
            self.cores_per_tile,
            self.mems_per_tile,
            self.routers_per_tile,
            core.pipeline_registers,
            core.pipelines,
            core.multipliers,
            core.address_generators,
            core.ports,
            core.instruction_buffer,
            mem.comparators,
            mem.hash_engines,
            mem.hashlines,
            mem.accumulators,
            mem.ports,
            mem.instruction_buffer,
            self.frequency_ghz,
            hbm,
            self.mem_queue_capacity,
            self.router_buffer,
            self.mapping.name(),
            match self.eviction {
                EvictionPolicy::Rolling => "re",
                EvictionPolicy::Barrier => "be",
            },
            self.mmh_tile,
            self.seed
        )
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::tile_16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_component_counts() {
        let t4 = ChipConfig::tile_4();
        assert_eq!(t4.total_cores(), 8);
        assert_eq!(t4.total_mems(), 8);
        assert_eq!(t4.total_routers(), 32);

        let t16 = ChipConfig::tile_16();
        assert_eq!(t16.total_cores(), 32);
        assert_eq!(t16.total_mems(), 32);
        assert_eq!(t16.total_routers(), 64);
        assert_eq!(t16.total_pipelines(), 128);

        let t64 = ChipConfig::tile_64();
        assert_eq!(t64.total_cores(), 128);
        assert_eq!(t64.total_mems(), 128);
        assert_eq!(t64.total_routers(), 256);
        assert_eq!(t64.total_pipelines(), 1024);
    }

    #[test]
    fn table3_hash_engine_counts() {
        assert_eq!(ChipConfig::tile_4().total_hash_engines(), 16);
        assert_eq!(ChipConfig::tile_16().total_hash_engines(), 128);
        assert_eq!(ChipConfig::tile_64().total_hash_engines(), 1024);
        assert_eq!(ChipConfig::tile_16().total_comparators(), 512);
        assert_eq!(ChipConfig::tile_64().total_comparators(), 8192);
    }

    #[test]
    fn table3_register_file_bits() {
        assert_eq!(ChipConfig::tile_4().register_file_bits_per_pipeline(), 512);
        assert_eq!(ChipConfig::tile_16().register_file_bits_per_pipeline(), 1024);
        assert_eq!(ChipConfig::tile_64().register_file_bits_per_pipeline(), 2048);
    }

    #[test]
    fn hashpad_sizes_scale_like_table3() {
        // Table 3: 0.75 MB / 3 MB / 12 MB. Our 12-byte hash-line estimate
        // lands within a factor of ~2 of those values; the *ratios* must match.
        let t4 = ChipConfig::tile_4().total_hashpad_mb();
        let t16 = ChipConfig::tile_16().total_hashpad_mb();
        let t64 = ChipConfig::tile_64().total_hashpad_mb();
        assert!(t4 < t16 && t16 < t64, "HashPad capacity must grow with tile size");
        assert!((t64 / t16 - 4.0).abs() < 0.1, "Tile-64 pad should be 4x Tile-16");
    }

    #[test]
    fn peak_performance_matches_table5() {
        // Table 5 lists 8 / 32 / 128 GFLOPs for Tile-4/16/64.
        assert!((ChipConfig::tile_4().peak_gflops() - 8.0).abs() < 1e-9);
        assert!((ChipConfig::tile_16().peak_gflops() - 32.0).abs() < 1e-9);
        assert!((ChipConfig::tile_64().peak_gflops() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_is_128_gbps() {
        assert!((ChipConfig::tile_16().peak_bandwidth_gbps() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_per_cycle_inverts_the_frequency() {
        assert!((ChipConfig::tile_16().seconds_per_cycle() - 1e-9).abs() < 1e-24);
        let fast = ChipConfig::tile_16().with_frequency_ghz(2.0);
        assert!((fast.seconds_per_cycle() - 0.5e-9).abs() < 1e-24);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = ChipConfig::tile_16()
            .with_mapping(MappingKind::Ring)
            .with_eviction(EvictionPolicy::Barrier)
            .with_mmh_tile(8)
            .with_seed(42);
        assert_eq!(cfg.mapping, MappingKind::Ring);
        assert_eq!(cfg.eviction, EvictionPolicy::Barrier);
        assert_eq!(cfg.mmh_tile, 8);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    #[should_panic(expected = "MMH tile height")]
    fn invalid_mmh_tile_rejected() {
        ChipConfig::tile_4().with_mmh_tile(3);
    }

    #[test]
    fn structural_builders_override_the_new_axes() {
        let cfg = ChipConfig::tile_16()
            .with_cores_per_tile(8)
            .with_mems_per_tile(2)
            .with_router_buffer(32)
            .with_mem_queue_capacity(128)
            .with_frequency_ghz(1.5)
            .with_hbm_preset(HbmPreset::Hbm2DualStack);
        assert_eq!(cfg.cores_per_tile, 8);
        assert_eq!(cfg.mems_per_tile, 2);
        assert_eq!(cfg.router_buffer, 32);
        assert_eq!(cfg.mem_queue_capacity, 128);
        assert!((cfg.frequency_ghz - 1.5).abs() < 1e-12);
        assert_eq!(cfg.hbm, HbmPreset::Hbm2DualStack.timing());
        assert_eq!(cfg.total_cores(), 64);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_frequency_rejected() {
        ChipConfig::tile_16().with_frequency_ghz(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn seconds_per_cycle_rejects_a_corrupted_frequency() {
        // The builder already rejects bad values, but the field is public —
        // the conversion must guard too, so service times can never be
        // inf/NaN.
        let mut cfg = ChipConfig::tile_16();
        cfg.frequency_ghz = f64::NAN;
        cfg.seconds_per_cycle();
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn seconds_per_cycle_rejects_a_zero_frequency() {
        let mut cfg = ChipConfig::tile_16();
        cfg.frequency_ghz = 0.0;
        cfg.seconds_per_cycle();
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_configs() {
        for tile in TileSize::ALL {
            let config = ChipConfig::for_tile_size(tile);
            assert_eq!(
                config.fingerprint(),
                config.fingerprint(),
                "fingerprint is a pure function"
            );
        }
        assert_ne!(ChipConfig::tile_4().fingerprint(), ChipConfig::tile_16().fingerprint());
        assert_ne!(ChipConfig::tile_16().fingerprint(), ChipConfig::tile_64().fingerprint());
        // Every behavioural override must move the fingerprint.
        let base = ChipConfig::tile_16();
        for changed in [
            base.clone().with_mmh_tile(8),
            base.clone().with_mapping(MappingKind::Ring),
            base.clone().with_eviction(EvictionPolicy::Barrier),
            base.clone().with_cores_per_tile(8),
            base.clone().with_mems_per_tile(2),
            base.clone().with_router_buffer(32),
            base.clone().with_mem_queue_capacity(128),
            base.clone().with_frequency_ghz(1.5),
            base.clone().with_hbm_preset(HbmPreset::Hbm2DualStack),
            base.clone().with_seed(7),
        ] {
            assert_ne!(base.fingerprint(), changed.fingerprint());
        }
        // ... and identical configurations share one.
        assert_eq!(base.fingerprint(), ChipConfig::tile_16().fingerprint());
        assert!(base.fingerprint().contains("hbm2"), "named presets appear by name");
    }

    #[test]
    fn for_tile_size_round_trips() {
        for tile in TileSize::ALL {
            assert_eq!(ChipConfig::for_tile_size(tile).tile_size, tile);
        }
        assert_eq!(TileSize::Tile16.name(), "Tile-16");
    }
}
