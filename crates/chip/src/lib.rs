//! The NeuraChip accelerator model — the paper's primary contribution.
//!
//! NeuraChip is a decoupled spatial accelerator for GNN/SpGEMM workloads:
//! multiplication is performed by *NeuraCores*, accumulation of the resulting
//! partial products by *NeuraMems* with on-chip hash tables, and the two are
//! connected by a 2D-torus NoC.  Load balance is provided by a Dynamically
//! Reseeding Hash-based Mapping (DRHM) and memory bloat is controlled with a
//! rolling-eviction scheme on the hash pads.
//!
//! The crate is organised bottom-up:
//!
//! * [`isa`] — the `MMH1/2/4/8` and `HACC` instruction formats (Figures 7, 9),
//! * [`mapping`] — ring, prime-modular, random-table and DRHM compute
//!   mappings (Section 3.5, Figures 12/13),
//! * [`config`] — Tile-4 / Tile-16 / Tile-64 configurations (Tables 2, 3),
//! * [`compiler`] — lowering of SpGEMM / GCN aggregation workloads into
//!   instruction streams with rolling-eviction counters,
//! * [`neuracore`] — the quad-pipeline multiplication engine (Figure 6),
//! * [`neuramem`] — the hash-engine accumulation unit with rolling or
//!   barrier eviction (Figures 8, 10),
//! * [`dispatcher`] — push-based task distribution to NeuraCores,
//! * [`accelerator`] — the full chip assembly and cycle-level execution,
//! * [`analytic`] — the closed-form fast-path cost model fitted from
//!   cycle-level runs (two-tier pricing: analytic estimate, cycle oracle),
//! * [`profile`] — the opt-in chip profiler: windowed cycle attribution,
//!   a stall taxonomy with conservation invariants, hop/DRAM-latency
//!   distributions (zero-cost and byte-identical when off),
//! * [`gcn`] — GCN layer execution (aggregation + combination),
//! * [`power`] — the area/power/efficiency model behind Tables 4 and 5.
//!
//! # Quick start
//!
//! ```
//! use neura_chip::accelerator::Accelerator;
//! use neura_chip::config::ChipConfig;
//! use neura_sparse::gen::GraphGenerator;
//!
//! let a = GraphGenerator::erdos_renyi(64, 0.08, 1).generate().to_csr();
//! let mut chip = Accelerator::new(ChipConfig::tile_4());
//! let run = chip.run_spgemm(&a, &a).expect("simulation succeeds");
//! assert!(run.report.total_cycles > 0);
//! // The simulated accelerator produces numerically correct results.
//! let reference = neura_sparse::spgemm::gustavson(&a, &a);
//! assert_eq!(run.product.nnz(), reference.nnz());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod analytic;
pub mod compiler;
pub mod config;
pub mod dispatcher;
pub mod gcn;
pub mod isa;
pub mod mapping;
pub mod neuracore;
pub mod neuramem;
pub mod power;
pub mod profile;

pub use accelerator::{Accelerator, ExecutionReport, SpgemmRun};
pub use analytic::{AnalyticModel, WorkloadFeatures};
pub use config::{ChipConfig, TileSize};
pub use mapping::MappingKind;
pub use profile::{Profile, ProfileWindow, Profiler, StallCause};
