//! The pinned mixed-class scenario behind the heterogeneous-fleet claim:
//! at equal total shards *and* equal aggregate peak throughput, a
//! class-affinity Tile-64 + Tile-4 fleet beats the homogeneous Tile-16
//! fleet on p99 latency — and class-*blind* dispatch squanders the same
//! silicon.
//!
//! Costs are pinned to the chips' Table-5 peak throughputs (8 / 32 / 128
//! GFLOP/s for Tile-4/16/64): a request of `w` flops takes `w / peak`
//! seconds, the throughput-bound regime the paper's scaling argument
//! describes. That keeps the scenario deterministic and meaningful at
//! smoke scale, where cycle-level simulations of tiny graphs stop
//! separating the tile sizes. Both fleets aggregate 160 GFLOP/s over five
//! shards; the only difference is how the silicon is carved up — exactly
//! the variable the dispatch policy exploits.

use neura_chip::config::{ChipConfig, TileSize};
use neura_serve::{
    simulate_stream, ArrivalProcess, ClassCost, CostTable, DispatchKind, FleetMix, Policy,
    RequestClass, StreamSpec,
};

/// Flops of the two request classes: a heavy GNN query and a light one.
const BIG_FLOPS: u64 = 48_000_000;
const SMALL_FLOPS: u64 = 1_600_000;

/// Service on each tile = flops / peak throughput. All three chips run at
/// 1 GHz, so `cycles = flops / flops_per_cycle` (8 / 32 / 128, Table 5).
fn peak_costs() -> CostTable {
    let mut costs = CostTable::new();
    for (tile, flops_per_cycle) in
        [(TileSize::Tile4, 8u64), (TileSize::Tile16, 32), (TileSize::Tile64, 128)]
    {
        let fp = costs.register(&ChipConfig::for_tile_size(tile));
        for (dataset, flops) in [(0usize, BIG_FLOPS), (1usize, SMALL_FLOPS)] {
            costs.insert(
                &fp,
                RequestClass { dataset, shrink: 1 },
                ClassCost { cycles: flops / flops_per_cycle, flops },
            );
        }
    }
    costs
}

/// The pinned stream: a 50/50 big/small mix at 1600 req/s for one
/// simulated second (~1600 requests) — about 25% load on the homogeneous
/// fleet and 30% on the lone Tile-64, so queueing is present but the tail
/// is governed by placement, not saturation.
fn pinned_stream() -> Vec<neura_serve::Request> {
    StreamSpec {
        arrival: ArrivalProcess::Poisson,
        rps: 1600.0,
        duration_s: 1.0,
        mix_size: 2,
        shrinks: vec![1],
        seed: 0xBEEF,
    }
    .generate()
}

#[test]
fn class_affinity_hetero_fleet_beats_equal_shard_homogeneous_on_p99() {
    let stream = pinned_stream();
    assert!(stream.len() > 1000, "the pinned stream must carry real load");
    let costs = peak_costs();

    let hetero = FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)]);
    let homogeneous = FleetMix::uniform(TileSize::Tile16, 5);
    assert_eq!(hetero.total_shards(), homogeneous.total_shards(), "equal shard counts");
    let peak = |mix: &FleetMix| -> f64 {
        mix.groups.iter().map(|g| g.config.peak_gflops() * g.shards as f64).sum()
    };
    assert!(
        (peak(&hetero) - peak(&homogeneous)).abs() < 1e-9,
        "equal aggregate peak throughput (160 GFLOP/s): the comparison is about carving, not size"
    );

    let p99 = |mix: &FleetMix, dispatch: DispatchKind| {
        simulate_stream(&stream, Policy::Fifo, &mix.groups, dispatch, None, &costs)
            .latency_percentile_s(99.0)
    };
    let hetero_affinity = p99(&hetero, DispatchKind::ClassAffinity);
    let hetero_blind = p99(&hetero, DispatchKind::LeastLoaded);
    let hom = p99(&homogeneous, DispatchKind::LeastLoaded);

    // The headline claim: big classes ride the Tile-64, so the mixed fleet
    // cuts the tail well below what five mid-size chips manage.
    assert!(
        hetero_affinity < hom * 0.75,
        "class-affinity hetero p99 {hetero_affinity} must beat homogeneous p99 {hom} clearly"
    );
    // And the fleet alone is not enough: blind least-loaded dispatch lands
    // big requests on Tile-4 shards (4x slower than Tile-16), making the
    // same silicon *worse* than the homogeneous fleet.
    assert!(
        hetero_blind > hom,
        "class-blind dispatch on the mixed fleet ({hetero_blind}) should lag homogeneous ({hom})"
    );
    // Greedy cost-aware dispatch (lowest service time among *idle* shards,
    // never waiting) improves the mean — it never picks a slower idle
    // shard than least-loaded would — but still overflows big requests
    // onto Tile-4 silicon whenever the Tile-64 is busy, so its *tail* hits
    // the same ~6 ms overflow wall. Only affinity's willingness to queue
    // for the right silicon rescues the p99.
    let cost_out = simulate_stream(
        &stream,
        Policy::Fifo,
        &hetero.groups,
        DispatchKind::CostAware,
        None,
        &costs,
    );
    let blind_out = simulate_stream(
        &stream,
        Policy::Fifo,
        &hetero.groups,
        DispatchKind::LeastLoaded,
        None,
        &costs,
    );
    assert!(
        cost_out.mean_latency_s() < blind_out.mean_latency_s(),
        "cost-aware dispatch must improve the mean over class-blind dispatch ({} vs {})",
        cost_out.mean_latency_s(),
        blind_out.mean_latency_s()
    );
    assert!(
        hetero_affinity < cost_out.latency_percentile_s(99.0),
        "waiting for the right silicon must beat greedy placement on the tail"
    );
}

#[test]
fn per_group_accounting_splits_the_mixed_fleet() {
    let stream = pinned_stream();
    let costs = peak_costs();
    let hetero = FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)]);
    let outcome = simulate_stream(
        &stream,
        Policy::Fifo,
        &hetero.groups,
        DispatchKind::ClassAffinity,
        None,
        &costs,
    );
    let groups = &outcome.group_stats;
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0].name, "t64");
    assert_eq!(groups[1].name, "t4");
    let total: u64 = groups.iter().map(|g| g.requests).sum();
    assert_eq!(total as usize, stream.len());
    assert!(groups[0].requests > 0 && groups[1].requests > 0, "both groups pull weight");
    // Shard-seconds: every provisioned shard is paid for over the makespan.
    assert!(
        (outcome.shard_seconds() - 5.0 * outcome.makespan_s).abs() < 1e-9,
        "fixed 5-shard fleet costs 5 shard-seconds per second"
    );
    // Affinity keeps almost all big-class work on the Tile-64: its busy
    // time dominates despite being one shard out of five.
    assert!(groups[0].busy_s > groups[1].busy_s);
}
