//! Seam-hazard tests of the parallel-in-time engine: hand-built schedules
//! where the nastiest timer interactions — a batch flush deadline, an
//! autoscaler check and a request arrival — land *exactly on* or straddle
//! an epoch boundary, and the epoch replay must still fire them in serial
//! order (outcome *and* trace byte-equal to the serial engine). Every
//! time constant here is a power-of-two fraction of a second, so deadline
//! and boundary times are exactly representable and the coincidences are
//! exact, not approximate. Also covers: fragments that drain long before
//! their boundary (idempotent terminal accrual), more epochs than events,
//! closed-loop epoch identity, and the lane decomposition's thread
//! invariance and conservation.

use neura_chip::config::ChipConfig;
use neura_serve::{
    simulate_config, simulate_config_parallel, simulate_config_traced,
    simulate_config_traced_parallel, simulate_stream_config, simulate_stream_config_parallel,
    simulate_stream_config_traced, simulate_stream_config_traced_parallel, AutoscalePolicy,
    ClassCost, ClosedLoopSpec, CostTable, DispatchKind, EnginePlan, Policy, Request, RequestClass,
    ServeConfig, ShardGroup, Workload,
};

/// Synthetic Tile-16 costs for datasets {0, 1} × shrinks {1, 2}.
fn costs() -> CostTable {
    let mut table = CostTable::new();
    let fp = table.register(&ChipConfig::tile_16());
    for dataset in 0..2usize {
        for shrink in [1usize, 2] {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            table.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    table
}

fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
    vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

fn request(id: usize, arrival_s: f64, dataset: usize, shrink: usize) -> Request {
    Request { id, arrival_s, class: RequestClass { dataset, shrink }, tenant: 0 }
}

/// The hand-built boundary-straddling schedule. With `EPOCH_S = 1/64`:
///
/// - the t = 0 burst under-fills the batch, so its flush deadline is
///   `0 + TIMEOUT = 1/64` — *exactly* the first epoch boundary;
/// - a request arrives at exactly `1/64` too, coinciding with both the
///   deadline and the boundary;
/// - the autoscaler checks every `1/256`, so a check also lands exactly
///   on every boundary (`1/64 = 4/256`), with more checks straddling it
///   on both sides;
/// - a straggler at `3/256` arrives *just* before the first boundary, so
///   in-flight work and a non-empty backlog carry across the seam.
const EPOCH_S: f64 = 1.0 / 64.0;
const TIMEOUT_S: f64 = 1.0 / 64.0;
const CHECK_S: f64 = 1.0 / 256.0;
const PROVISION_S: f64 = 1.0 / 128.0;

fn boundary_schedule() -> Vec<Request> {
    let mut stream = vec![
        // A burst at t = 0 that under-fills the max batch: flush happens
        // on the timeout, exactly at the first epoch boundary.
        request(0, 0.0, 0, 1),
        request(1, 0.0, 0, 1),
        request(2, 0.0, 1, 2),
        // Just before the boundary: queued work straddles the seam.
        request(3, 3.0 / 256.0, 1, 1),
        // Exactly on the boundary, coinciding with the flush deadline.
        request(4, 1.0 / 64.0, 0, 2),
        // Just after it.
        request(5, 5.0 / 256.0, 0, 1),
    ];
    // A sparse tail across several more boundaries keeps the autoscaler
    // scaling both ways and the backlog draining and refilling.
    for k in 0..12usize {
        stream.push(request(6 + k, 1.0 / 32.0 + k as f64 * 3.0 / 256.0, k % 2, 1 + k % 2));
    }
    stream
}

#[test]
fn batch_deadline_and_autoscale_check_fire_in_serial_order_at_the_boundary() {
    let costs = costs();
    let fleet = tile16_fleet(1);
    let autoscale = AutoscalePolicy::new(1, 3)
        .with_check_interval_s(CHECK_S)
        .with_provision_delay_s(PROVISION_S)
        .with_up_backlog_per_shard(2.0);
    let mut cfg =
        ServeConfig::new(Policy::batch(8, TIMEOUT_S), &fleet, DispatchKind::LeastLoaded, &costs);
    cfg.autoscale = Some(&autoscale);
    let stream = boundary_schedule();

    let (serial, serial_trace) = simulate_stream_config_traced(&stream, &cfg);
    // Epoch boundaries at every multiple of 1/64 — each one coincides
    // with a batch flush deadline and an autoscaler check, and the first
    // with an arrival as well.
    for plan in [
        EnginePlan::serial().with_epoch_s(EPOCH_S),
        EnginePlan::serial().with_epoch_s(EPOCH_S).with_threads(1),
        EnginePlan::serial().with_epochs(5),
        EnginePlan::serial().with_epochs(2).with_threads(8),
    ] {
        let (epoch, epoch_trace) = simulate_stream_config_traced_parallel(&stream, &cfg, &plan);
        assert_eq!(serial, epoch, "outcome must not depend on the epoch plan {plan:?}");
        assert_eq!(serial_trace, epoch_trace, "trace order must survive the seam {plan:?}");
        assert_eq!(epoch, simulate_stream_config_parallel(&stream, &cfg, &plan));
    }
    // The schedule really exercises what it claims: batching happened and
    // the autoscaler really moved.
    assert!(serial.batch_sizes.iter().any(|&b| b > 1), "the burst must batch");
    assert!(!serial.scale_events.is_empty(), "the autoscaler must act");
    assert_eq!(serial.requests(), stream.len());
}

#[test]
fn fragments_that_drain_before_their_boundary_stay_identical() {
    let costs = costs();
    let fleet = tile16_fleet(2);
    let cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
    // Two tight clusters separated by a long quiet gap: with many epochs,
    // whole fragments drain to idle long before their boundary, and the
    // fragments after the last arrival re-enter an already-drained state
    // (the terminal accrual must be idempotent).
    let mut stream: Vec<Request> = (0..6).map(|i| request(i, 0.0, i % 2, 1)).collect();
    for i in 0..6usize {
        stream.push(request(6 + i, 0.75 + i as f64 * 1.0 / 1024.0, i % 2, 2));
    }
    let serial = simulate_stream_config(&stream, &cfg);
    for epochs in [2usize, 3, 7, 64, 1024] {
        let plan = EnginePlan::serial().with_epochs(epochs);
        assert_eq!(
            serial,
            simulate_stream_config_parallel(&stream, &cfg, &plan),
            "draining early must not perturb the merge at {epochs} epochs"
        );
    }
}

#[test]
fn closed_loop_epochs_match_the_serial_replay() {
    let costs = costs();
    let fleet = tile16_fleet(2);
    let cfg = ServeConfig::new(Policy::Sjf, &fleet, DispatchKind::LeastLoaded, &costs);
    let workload = Workload::Closed(ClosedLoopSpec {
        clients: 12,
        think_s: 0.002,
        duration_s: 0.5,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 7,
    });
    let (serial, serial_trace) = simulate_config_traced(&workload, &cfg);
    for epochs in [2usize, 5, 16] {
        let plan = EnginePlan::serial().with_epochs(epochs);
        let (epoch, epoch_trace) = simulate_config_traced_parallel(&workload, &cfg, &plan);
        assert_eq!(serial, epoch, "closed-loop epochs must merge exactly ({epochs})");
        assert_eq!(serial_trace, epoch_trace);
        let _ = plan;
    }
}

#[test]
fn shedding_across_seams_conserves_every_request() {
    let costs = costs();
    let fleet = tile16_fleet(1);
    let mut cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
    cfg.queue_bound = Some(2);
    // An overloading burst right before each boundary: admissions and
    // sheds happen on both sides of every seam.
    let mut stream = Vec::new();
    for k in 0..8usize {
        let base = k as f64 * 1.0 / 64.0;
        for j in 0..12usize {
            stream.push(request(stream.len(), base + j as f64 / 8192.0, j % 2, 1));
        }
    }
    let serial = simulate_stream_config(&stream, &cfg);
    assert!(!serial.shed.is_empty(), "the bound must actually shed");
    for epochs in [2usize, 4, 8] {
        let plan = EnginePlan::serial().with_epochs(epochs);
        let epoch = simulate_stream_config_parallel(&stream, &cfg, &plan);
        assert_eq!(serial, epoch);
        // Conservation across seams: every request is served or shed
        // exactly once, never both, never dropped.
        assert_eq!(epoch.requests() + epoch.shed.len(), stream.len());
        let served: Vec<usize> =
            (0..stream.len()).filter(|&id| epoch.latencies_s[id] >= 0.0).collect();
        assert!(served.iter().all(|id| !epoch.shed.contains(id)));
    }
}

#[test]
fn lane_decomposition_is_thread_invariant_and_conserves_requests() {
    let costs = costs();
    let fleet = tile16_fleet(6);
    let cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
    let workload = Workload::Closed(ClosedLoopSpec {
        clients: 25,
        think_s: 0.001,
        duration_s: 0.25,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 99,
    });
    let lanes = EnginePlan::serial().with_lanes(3);
    let (pinned, pinned_trace) =
        simulate_config_traced_parallel(&workload, &cfg, &lanes.clone().with_threads(1));
    for threads in [2usize, 8] {
        let (pooled, pooled_trace) =
            simulate_config_traced_parallel(&workload, &cfg, &lanes.clone().with_threads(threads));
        assert_eq!(pinned, pooled, "a fixed lane count must be thread invariant");
        assert_eq!(pinned_trace, pooled_trace);
    }
    // One lane is the serial engine exactly.
    assert_eq!(
        simulate_config(&workload, &cfg),
        simulate_config_parallel(&workload, &cfg, &EnginePlan::serial().with_lanes(1)),
    );
    // Conservation and closed-loop invariants hold on the merged outcome.
    assert_eq!(pinned.latencies_s.len(), pinned.requests(), "closed loops never shed");
    assert!(pinned.latencies_s.iter().all(|&l| l.is_finite() && l > 0.0));
    assert_eq!(pinned.batch_sizes.iter().sum::<usize>(), pinned.requests());
    assert_eq!(
        pinned.shard_stats.iter().map(|s| s.requests).sum::<u64>() as usize,
        pinned.requests()
    );
    assert!(pinned.max_in_flight() <= 25);
    // Lanes partition the fleet: the merged slot layout still spans all
    // six shards and every lane's shards did work.
    assert_eq!(pinned.shard_stats.len(), 6);
    assert!(pinned.shard_stats.iter().all(|s| s.requests > 0));
}

#[test]
fn ineligible_scenarios_fall_back_to_epochs_under_a_lane_plan() {
    let costs = costs();
    let fleet = tile16_fleet(2);
    let autoscale = AutoscalePolicy::new(1, 3).with_check_interval_s(CHECK_S);
    let mut cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
    cfg.autoscale = Some(&autoscale);
    // Autoscaling makes the closed loop ineligible for lanes: the plan's
    // lane request must quietly degrade to the (exact) epoch path.
    let workload = Workload::Closed(ClosedLoopSpec {
        clients: 8,
        think_s: 0.001,
        duration_s: 0.25,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 3,
    });
    let serial = simulate_config(&workload, &cfg);
    let plan = EnginePlan::serial().with_lanes(4).with_epochs(3);
    assert_eq!(serial, simulate_config_parallel(&workload, &cfg, &plan));
}
