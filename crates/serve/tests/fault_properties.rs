//! Property tests of the fault-injection layer: under arbitrary crash /
//! provisioning-failure / degraded-silicon regimes every request is still
//! accounted exactly once (served or shed, with crashed in-flight work
//! re-dispatched); recovery from a crash always waits out the autoscaler's
//! provisioning delay; total provisioning failure pins the fleet at its
//! floor; degraded silicon never improves the tail; and fault-injected
//! replays stay deterministic.

use neura_chip::config::ChipConfig;
use neura_serve::{
    simulate_stream_config, ArrivalProcess, AutoscalePolicy, ClassCost, CostTable, DispatchKind,
    FaultSpec, Policy, RequestClass, ServeConfig, ShardGroup, StreamSpec,
};
use proptest::prelude::*;

/// A synthetic cost table covering every class a generated stream can
/// draw on Tile-16 silicon (same spread as `serve_properties`).
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new();
    let fp = costs.register(&ChipConfig::tile_16());
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    costs
}

fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
    vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 1.0,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

fn arb_fault(window_s: f64) -> impl Strategy<Value = FaultSpec> {
    (0u64..1_000, 0usize..=3, 0usize..3, 1.0f64..3.0, 0usize..2).prop_map(
        move |(seed, crashes, pf_pick, multiplier, degrade)| {
            let mut spec = FaultSpec::new(seed, window_s)
                .with_crashes(crashes)
                .with_provision_fail([0.0, 0.3, 1.0][pf_pick]);
            if degrade == 1 {
                spec = spec.with_degraded(0, multiplier);
            }
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the fault regime throws at the fleet — crashes mid-batch,
    /// failed scale-ups, slow silicon — every request is served exactly
    /// once: crashed in-flight work returns to the queue head and
    /// completes on a surviving shard, and the whole replay is a pure
    /// function of its inputs.
    #[test]
    fn faults_conserve_every_request(
        spec in arb_stream(),
        fault in arb_fault(1.0),
        shards in 2usize..=4,
        elastic in 0usize..2,
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let groups = tile16_fleet(shards);
        let autoscale = AutoscalePolicy::new(1, shards.max(2))
            .with_check_interval_s(0.005)
            .with_provision_delay_s(0.02);
        let mut cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_faults(&fault);
        if elastic == 1 {
            cfg = cfg.with_autoscale(&autoscale);
        }
        let outcome = simulate_stream_config(&stream, &cfg);

        prop_assert_eq!(outcome.offered(), stream.len());
        prop_assert_eq!(outcome.shed.len(), 0);
        prop_assert_eq!(outcome.requests(), stream.len());
        prop_assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), stream.len());
        let shard_total: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        prop_assert_eq!(shard_total as usize, stream.len());
        prop_assert!(outcome.latencies_s.iter().all(|l| l.is_finite() && *l > 0.0));
        prop_assert!(outcome.crash_events.len() <= fault.crashes,
            "{} crashes landed from a budget of {}",
            outcome.crash_events.len(), fault.crashes);
        let redispatched: usize = outcome.crash_events.iter().map(|c| c.redispatched).sum();
        prop_assert_eq!(outcome.redispatched(), redispatched);
        for crash in &outcome.crash_events {
            prop_assert!(crash.at_s >= 0.0 && crash.at_s <= fault.window_s);
            prop_assert!(crash.shard < shards);
            prop_assert_eq!(crash.group, 0);
        }
        // Pure function of the inputs: replaying changes nothing.
        prop_assert_eq!(outcome, simulate_stream_config(&stream, &cfg));
    }

    /// Post-crash recovery is bounded below by the provisioning delay:
    /// the autoscaler can decide instantly, but replacement capacity only
    /// lands one full delay later.
    #[test]
    fn recovery_waits_out_the_provisioning_delay(
        seed in 0u64..500,
        crashes in 1usize..=3,
        delay_ms in 5.0f64..40.0,
    ) {
        let spec = StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: 500.0,
            duration_s: 1.0,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        };
        let stream = spec.generate();
        let costs = synthetic_costs(2, &[1, 2]);
        let groups = tile16_fleet(2);
        let autoscale = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.002)
            .with_provision_delay_s(delay_ms / 1e3)
            .with_up_backlog_per_shard(1.0);
        let fault = FaultSpec::new(seed, 0.5).with_crashes(crashes);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_autoscale(&autoscale)
            .with_faults(&fault);
        let outcome = simulate_stream_config(&stream, &cfg);
        prop_assert_eq!(outcome.requests(), stream.len());
        for recovery in outcome.recovery_times_s() {
            prop_assert!(recovery >= delay_ms / 1e3 - 1e-9,
                "recovered in {recovery}s, under the {}s provisioning delay", delay_ms / 1e3);
        }
    }

    /// With every provisioning attempt failing, the fleet never grows: no
    /// scale-up ever takes effect, failures are counted, and the load is
    /// still served (slowly) by the surviving floor.
    #[test]
    fn total_provisioning_failure_pins_the_fleet_at_its_floor(seed in 0u64..500) {
        let spec = StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: 800.0,
            duration_s: 1.0,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        };
        let stream = spec.generate();
        let costs = synthetic_costs(2, &[1, 2]);
        let groups = tile16_fleet(1);
        let autoscale = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.002)
            .with_provision_delay_s(0.005)
            .with_up_backlog_per_shard(1.0);
        let fault = FaultSpec::new(seed, 1.0).with_provision_fail(1.0);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_autoscale(&autoscale)
            .with_faults(&fault);
        let outcome = simulate_stream_config(&stream, &cfg);
        prop_assert!(outcome.scale_events.iter().all(|e| e.delta < 0),
            "a scale-up took effect despite pf=1.0");
        prop_assert!(outcome.provision_failures > 0,
            "an overloaded single shard must attempt to scale");
        prop_assert_eq!(outcome.requests(), stream.len());
        for stats in &outcome.group_stats {
            prop_assert_eq!(stats.peak_active, 1);
        }
    }

    /// Degraded silicon never improves the tail: the same stream on the
    /// same fleet with a service multiplier `m >= 1` has p99 at least as
    /// high as the healthy run.
    #[test]
    fn degraded_silicon_never_improves_p99(
        spec in arb_stream(),
        multiplier in 1.5f64..4.0,
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let groups = tile16_fleet(2);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
        let healthy = simulate_stream_config(&stream, &cfg);
        let fault = FaultSpec::new(1, 1.0).with_degraded(0, multiplier);
        let degraded = simulate_stream_config(&stream, &cfg.with_faults(&fault));
        prop_assert_eq!(degraded.requests(), stream.len());
        let healthy_p99 = healthy.latency_percentile_s(99.0);
        let degraded_p99 = degraded.latency_percentile_s(99.0);
        prop_assert!(degraded_p99 >= healthy_p99 - 1e-12,
            "degraded p99 {degraded_p99} beat healthy p99 {healthy_p99}");
    }
}
