//! Property tests of the serving layer: generated streams are sorted,
//! deterministic per seed and respect the configured rate; batches never
//! exceed the configured maximum; every request is served exactly once by
//! every policy; and adding shards at a fixed arrival rate never worsens
//! tail latency.

use neura_serve::{
    simulate, ArrivalProcess, ClassCost, CostTable, Policy, RequestClass, StreamSpec,
};
use proptest::prelude::*;

/// A synthetic cost table covering every class a generated stream can draw:
/// heavier datasets and lighter shrinks cost more, with enough spread that
/// SJF reordering and batching amortisation are exercised.
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new(1e-9);
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(RequestClass { dataset, shrink }, ClassCost { cycles, flops: cycles });
        }
    }
    costs
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 1.0,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (0usize..3, 1usize..=6, 0.0f64..0.02).prop_map(|(kind, max_batch, timeout_s)| match kind {
        0 => Policy::Fifo,
        1 => Policy::Sjf,
        _ => Policy::batch(max_batch, timeout_s),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streams are time-sorted, reproducible per seed, and land within a
    /// generous tolerance band of the configured mean rate.
    #[test]
    fn streams_are_sorted_deterministic_and_rate_respecting(spec in arb_stream()) {
        let stream = spec.generate();
        // Same spec, same stream.
        prop_assert_eq!(&stream, &spec.generate());
        prop_assert!(stream.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, request) in stream.iter().enumerate() {
            prop_assert_eq!(request.id, i);
            prop_assert!(request.arrival_s >= 0.0 && request.arrival_s < spec.duration_s);
            prop_assert!(request.class.dataset < spec.mix_size);
            prop_assert!(spec.shrinks.contains(&request.class.shrink));
        }
        // ≥ 200 expected arrivals: ±35% is > 5 sigma for a Poisson count.
        let expected = spec.rps * spec.duration_s;
        let n = stream.len() as f64;
        prop_assert!(
            (n - expected).abs() < expected * 0.35,
            "{} arrivals vs {} expected", n, expected
        );
    }

    /// Every policy serves every request exactly once, with non-negative
    /// latency, and batches never exceed the configured maximum.
    #[test]
    fn every_request_is_served_exactly_once(spec in arb_stream(), policy in arb_policy(), shards in 1usize..=4) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let outcome = simulate(&stream, policy, shards, &costs);

        prop_assert_eq!(outcome.requests(), stream.len());
        // Every request appears in exactly one batch.
        prop_assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), stream.len());
        let shard_total: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        prop_assert_eq!(shard_total as usize, stream.len());
        for (id, &latency) in outcome.latencies_s.iter().enumerate() {
            let service = costs.service_seconds(stream[id].class, 1);
            prop_assert!(latency.is_finite() && latency > 0.0);
            prop_assert!(latency >= service * 0.999 - 1e-12,
                "request {} finished faster ({}) than its own service time ({})",
                id, latency, service);
        }
        if let Policy::BatchByDataset { max_batch, .. } = policy {
            prop_assert!(outcome.batch_sizes.iter().all(|&b| b >= 1 && b <= max_batch));
            // Batches are class-pure: amortisation never mixes datasets.
            // (Checked indirectly: per-batch service uses the head request's
            // class, so the simulate() API only stays honest if grouping is
            // by class — the unit tests pin the grouping itself.)
        } else {
            prop_assert!(outcome.batch_sizes.iter().all(|&b| b == 1));
        }
    }

    /// Work conservation: at a fixed arrival stream, adding shards never
    /// worsens p99 latency under FIFO (the acceptance property the `serve`
    /// binary's smoke check also pins).
    #[test]
    fn more_shards_never_worsen_fifo_p99(spec in arb_stream()) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let p99: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&shards| simulate(&stream, Policy::Fifo, shards, &costs).latency_percentile_s(99.0))
            .collect();
        prop_assert!(p99[0] >= p99[1] - 1e-9, "s1 {} vs s2 {}", p99[0], p99[1]);
        prop_assert!(p99[1] >= p99[2] - 1e-9, "s2 {} vs s4 {}", p99[1], p99[2]);
    }

    /// Arms of a comparison replay identical streams: the outcome under one
    /// policy is a pure function of (stream, policy, shards, costs).
    #[test]
    fn simulation_is_deterministic(spec in arb_stream(), policy in arb_policy()) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let a = simulate(&stream, policy, 2, &costs);
        let b = simulate(&stream, policy, 2, &costs);
        prop_assert_eq!(a, b);
    }
}
