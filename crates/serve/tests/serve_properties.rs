//! Property tests of the serving layer: generated streams are sorted,
//! deterministic per seed and respect the configured rate; batches never
//! exceed the configured maximum; every request is served exactly once by
//! every policy and dispatch combination; adding shards at a fixed arrival
//! rate never worsens tail latency; closed loops never exceed their client
//! count in flight; and the autoscaler stays within its bounds and only
//! changes the fleet after the provisioning delay.

use neura_chip::config::ChipConfig;
use neura_serve::{
    simulate, simulate_stream, ArrivalProcess, AutoscalePolicy, ClassCost, ClosedLoopSpec,
    CostTable, DispatchKind, Policy, RequestClass, ShardGroup, StreamSpec, Workload,
};
use proptest::prelude::*;

/// A synthetic cost table covering every class a generated stream can draw
/// on Tile-16 silicon: heavier datasets and lighter shrinks cost more,
/// with enough spread that SJF reordering and batching amortisation are
/// exercised.
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new();
    let fp = costs.register(&ChipConfig::tile_16());
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    costs
}

/// A homogeneous Tile-16 fleet of `n` shards.
fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
    vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 1.0,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (0usize..3, 1usize..=6, 0.0f64..0.02).prop_map(|(kind, max_batch, timeout_s)| match kind {
        0 => Policy::Fifo,
        1 => Policy::Sjf,
        _ => Policy::batch(max_batch, timeout_s),
    })
}

fn arb_dispatch() -> impl Strategy<Value = DispatchKind> {
    (0usize..3).prop_map(|kind| DispatchKind::ALL[kind])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streams are time-sorted, reproducible per seed, and land within a
    /// generous tolerance band of the configured mean rate.
    #[test]
    fn streams_are_sorted_deterministic_and_rate_respecting(spec in arb_stream()) {
        let stream = spec.generate();
        // Same spec, same stream.
        prop_assert_eq!(&stream, &spec.generate());
        prop_assert!(stream.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, request) in stream.iter().enumerate() {
            prop_assert_eq!(request.id, i);
            prop_assert!(request.arrival_s >= 0.0 && request.arrival_s < spec.duration_s);
            prop_assert!(request.class.dataset < spec.mix_size);
            prop_assert!(spec.shrinks.contains(&request.class.shrink));
        }
        // ≥ 200 expected arrivals: ±35% is > 5 sigma for a Poisson count.
        let expected = spec.rps * spec.duration_s;
        let n = stream.len() as f64;
        prop_assert!(
            (n - expected).abs() < expected * 0.35,
            "{} arrivals vs {} expected", n, expected
        );
    }

    /// Every policy/dispatch combination serves every request exactly
    /// once, with non-negative latency, and batches never exceed the
    /// configured maximum.
    #[test]
    fn every_request_is_served_exactly_once(
        spec in arb_stream(),
        policy in arb_policy(),
        dispatch in arb_dispatch(),
        shards in 1usize..=4,
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let outcome =
            simulate_stream(&stream, policy, &tile16_fleet(shards), dispatch, None, &costs);

        prop_assert_eq!(outcome.requests(), stream.len());
        // Every request appears in exactly one batch.
        prop_assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), stream.len());
        let shard_total: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        prop_assert_eq!(shard_total as usize, stream.len());
        let group_total: u64 = outcome.group_stats.iter().map(|g| g.requests).sum();
        prop_assert_eq!(group_total as usize, stream.len());
        let fp = ChipConfig::tile_16().fingerprint();
        for (id, &latency) in outcome.latencies_s.iter().enumerate() {
            let service = costs.service_seconds(&fp, stream[id].class, 1);
            prop_assert!(latency.is_finite() && latency > 0.0);
            prop_assert!(latency >= service * 0.999 - 1e-12,
                "request {} finished faster ({}) than its own service time ({})",
                id, latency, service);
        }
        if let Policy::BatchByDataset { max_batch, .. } = policy {
            prop_assert!(outcome.batch_sizes.iter().all(|&b| b >= 1 && b <= max_batch));
        } else {
            prop_assert!(outcome.batch_sizes.iter().all(|&b| b == 1));
        }
    }

    /// Work conservation: at a fixed arrival stream, adding shards never
    /// worsens p99 latency under FIFO (the acceptance property the `serve`
    /// binary's smoke check also pins).
    #[test]
    fn more_shards_never_worsen_fifo_p99(spec in arb_stream()) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let p99: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                simulate_stream(
                    &stream,
                    Policy::Fifo,
                    &tile16_fleet(shards),
                    DispatchKind::LeastLoaded,
                    None,
                    &costs,
                )
                .latency_percentile_s(99.0)
            })
            .collect();
        prop_assert!(p99[0] >= p99[1] - 1e-9, "s1 {} vs s2 {}", p99[0], p99[1]);
        prop_assert!(p99[1] >= p99[2] - 1e-9, "s2 {} vs s4 {}", p99[1], p99[2]);
    }

    /// Arms of a comparison replay identical streams: the outcome under
    /// one policy is a pure function of
    /// (stream, policy, fleet, dispatch, costs).
    #[test]
    fn simulation_is_deterministic(
        spec in arb_stream(),
        policy in arb_policy(),
        dispatch in arb_dispatch(),
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let fleet = tile16_fleet(2);
        let a = simulate_stream(&stream, policy, &fleet, dispatch, None, &costs);
        let b = simulate_stream(&stream, policy, &fleet, dispatch, None, &costs);
        prop_assert_eq!(a, b);
    }

    /// A closed loop never has more requests in flight than it has
    /// clients, every request is served, and the replay is deterministic.
    #[test]
    fn closed_loop_in_flight_never_exceeds_the_client_count(
        clients in 1usize..=16,
        think_ms in 0.0f64..5.0,
        policy in arb_policy(),
        shards in 1usize..=3,
        seed in 0u64..500,
    ) {
        let spec = ClosedLoopSpec {
            clients,
            think_s: think_ms / 1e3,
            duration_s: 0.25,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        };
        let costs = synthetic_costs(2, &[1, 2]);
        let workload = Workload::Closed(spec);
        let fleet = tile16_fleet(shards);
        let outcome =
            simulate(&workload, policy, &fleet, DispatchKind::LeastLoaded, None, &costs);
        prop_assert!(outcome.max_in_flight() <= clients,
            "{} in flight with {} clients", outcome.max_in_flight(), clients);
        prop_assert!(outcome.requests() >= 1, "staggered starts land inside the horizon");
        prop_assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), outcome.requests());
        prop_assert!(outcome.latencies_s.iter().all(|l| l.is_finite() && *l > 0.0));
        // No request is issued at or beyond the horizon.
        prop_assert!(outcome.arrivals_s.iter().all(|&t| t < 0.25));
        let again = simulate(&workload, policy, &fleet, DispatchKind::LeastLoaded, None, &costs);
        prop_assert_eq!(outcome, again);
    }

    /// The autoscaled fleet stays within `[min, max]` shards *per group*
    /// at all times — even with several decisions in flight across a
    /// multi-group fleet — and every size change takes effect exactly one
    /// provisioning delay after its decision.
    #[test]
    fn autoscaler_respects_bounds_and_provisioning_delay(
        spec in arb_stream(),
        min in 1usize..=2,
        extra in 1usize..=3,
        groups in 1usize..=2,
        delay_ms in 1.0f64..40.0,
    ) {
        let max = min + extra;
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let policy = AutoscalePolicy::new(min, max)
            .with_check_interval_s(0.005)
            .with_provision_delay_s(delay_ms / 1e3)
            .with_up_backlog_per_shard(2.0);
        // Same silicon under distinct group names: the groups share their
        // cost memo (one fingerprint) but scale independently.
        let fleet: Vec<ShardGroup> = (0..groups)
            .map(|g| ShardGroup::new(format!("g{g}"), ChipConfig::tile_16(), min))
            .collect();
        let outcome = simulate_stream(
            &stream,
            Policy::Fifo,
            &fleet,
            DispatchKind::LeastLoaded,
            Some(&policy),
            &costs,
        );
        // Replay the events: every group's running count starts at `min`,
        // stays inside its own bounds, and every effect lags its decision
        // by exactly the delay.
        let mut active = vec![min as i64; groups];
        for event in &outcome.scale_events {
            prop_assert!(
                (event.effect_s - event.decision_s - delay_ms / 1e3).abs() < 1e-9,
                "effect at {} for a decision at {} (delay {})",
                event.effect_s, event.decision_s, delay_ms / 1e3
            );
            active[event.group] += event.delta;
            prop_assert_eq!(active.iter().sum::<i64>() as usize, event.active_total);
            let group_active = active[event.group];
            prop_assert!(group_active >= min as i64 && group_active <= max as i64,
                "group {} at {} shards, outside [{min}, {max}]", event.group, group_active);
        }
        for stats in &outcome.group_stats {
            prop_assert!(stats.peak_active <= max);
        }
        // Elasticity loses no requests.
        prop_assert_eq!(outcome.requests(), stream.len());
    }
}
