//! Property tests of the production-traffic scenario layer: shaped
//! streams thin deterministically and stay sorted; a queue bound the
//! backlog never reaches changes nothing; shed rate is monotone in
//! offered load while the bound caps admitted p99 and queue depth at 3x
//! capacity; token-bucket rate limits bound every tenant's admitted
//! throughput; and every library scenario arm — faults, autoscaler and
//! all — is byte-identical across runner thread counts.

use neura_chip::config::ChipConfig;
use neura_serve::scenario::TENANT_BURST_S;
use neura_serve::{
    simulate_config, simulate_stream, simulate_stream_config, ArrivalProcess, AutoscalePolicy,
    ClassCost, CostTable, DispatchKind, Policy, RateShape, RequestClass, ScenarioSpec, ServeConfig,
    ServeOutcome, ShapedStream, ShardGroup, StreamSpec, TenantMix, TenantSpec, Workload,
};
use proptest::prelude::*;

/// A synthetic cost table covering every class a generated stream can
/// draw on Tile-16 silicon (same spread as `serve_properties`).
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new();
    let fp = costs.register(&ChipConfig::tile_16());
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    costs
}

fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
    vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

/// Mean service time of one request across the synthetic classes.
fn mean_service_s(costs: &CostTable, mix_size: usize, shrinks: &[usize]) -> f64 {
    let fp = ChipConfig::tile_16().fingerprint();
    let classes: Vec<RequestClass> = (0..mix_size)
        .flat_map(|dataset| shrinks.iter().map(move |&shrink| RequestClass { dataset, shrink }))
        .collect();
    classes.iter().map(|&c| costs.service_seconds(&fp, c, 1)).sum::<f64>() / classes.len() as f64
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 1.0,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

fn arb_shapes() -> impl Strategy<Value = Vec<RateShape>> {
    (0usize..4, (1.0f64..6.0, 0.0f64..0.9), (0.0f64..0.8, 0.05f64..0.2, 1.0f64..6.0)).prop_map(
        |(pick, (cycles, depth), (start, width, boost))| {
            let diurnal = RateShape::Diurnal { cycles: cycles.round(), depth };
            let flash = RateShape::Flash { start, width, boost };
            match pick {
                0 => Vec::new(),
                1 => vec![diurnal],
                2 => vec![flash],
                _ => vec![diurnal, flash],
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shaped streams are a pure function of their spec: generated twice
    /// they match, survivors stay time-sorted with positional IDs, no
    /// arrival escapes the horizon, and thinning can only ever *remove*
    /// requests relative to the peak-rate base stream.
    #[test]
    fn shaped_streams_thin_deterministically(base in arb_stream(), shapes in arb_shapes()) {
        let shaped = ShapedStream { base: base.clone(), shapes: shapes.clone(), tenants: None };
        let stream = shaped.generate();
        prop_assert_eq!(&stream, &shaped.generate());
        prop_assert!(stream.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, request) in stream.iter().enumerate() {
            prop_assert_eq!(request.id, i);
            prop_assert!(request.arrival_s >= 0.0 && request.arrival_s < base.duration_s);
            prop_assert_eq!(request.tenant, 0);
        }
        let peak: f64 = shapes.iter().map(RateShape::peak).product();
        let raw = StreamSpec { rps: base.rps * peak, ..base }.generate();
        prop_assert!(stream.len() <= raw.len(), "thinning never adds requests");
    }

    /// A queue bound the backlog never reaches is a no-op: the bounded
    /// outcome equals the unbounded one byte for byte, with zero shed.
    #[test]
    fn bounds_above_the_backlog_peak_shed_nothing(
        spec in arb_stream(),
        shards in 1usize..=3,
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let groups = tile16_fleet(shards);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
        let unbounded = simulate_stream_config(&stream, &cfg);
        let bounded = simulate_stream_config(
            &stream,
            &cfg.with_queue_bound(unbounded.queue_depth_max + 1),
        );
        prop_assert_eq!(bounded.shed.len(), 0);
        prop_assert_eq!(bounded, unbounded);
    }

    /// The overload pins: shed rate grows monotonically with offered load,
    /// and at 3x capacity the bounded queue caps both the admitted p99
    /// (ten bound-lengths of the costliest request, a horizon-independent
    /// constant) and the queue depth, while every request stays
    /// exactly-once accounted.
    #[test]
    fn shedding_bounds_admitted_p99_and_depth_at_3x_capacity(seed in 0u64..500) {
        let mix_size = 2;
        let shrinks = vec![1, 2, 4];
        let costs = synthetic_costs(mix_size, &shrinks);
        let shards = 2;
        let groups = tile16_fleet(shards);
        let capacity_rps = shards as f64 / mean_service_s(&costs, mix_size, &shrinks);
        let bound = 32usize;
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_queue_bound(bound);
        let mut shed_rates = Vec::new();
        let mut at_3x: Option<ServeOutcome> = None;
        for load in [0.5, 1.0, 3.0] {
            let stream = StreamSpec {
                arrival: ArrivalProcess::Poisson,
                rps: load * capacity_rps,
                duration_s: 0.5,
                mix_size,
                shrinks: shrinks.clone(),
                seed,
            }
            .generate();
            let outcome = simulate_stream_config(&stream, &cfg);
            prop_assert_eq!(outcome.offered(), stream.len());
            prop_assert_eq!(outcome.requests() + outcome.shed.len(), stream.len());
            prop_assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), outcome.requests());
            let shard_total: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
            prop_assert_eq!(shard_total as usize, outcome.requests());
            prop_assert!(outcome.queue_depth_max <= bound, "the bound caps the backlog");
            shed_rates.push(outcome.shed_rate());
            if load == 3.0 {
                at_3x = Some(outcome);
            }
        }
        // Monotone in load, with a hair of slack for Poisson noise.
        prop_assert!(shed_rates[0] <= shed_rates[1] + 0.02, "{shed_rates:?}");
        prop_assert!(shed_rates[1] <= shed_rates[2] + 0.02, "{shed_rates:?}");
        let at_3x = at_3x.expect("the 3x arm ran");
        prop_assert!(at_3x.shed_rate() > 0.3, "3x capacity must shed hard, got {}",
            at_3x.shed_rate());
        let fp = ChipConfig::tile_16().fingerprint();
        let max_service = (0..mix_size)
            .flat_map(|d| shrinks.iter().map(move |&s| RequestClass { dataset: d, shrink: s }))
            .map(|c| costs.service_seconds(&fp, c, 1))
            .fold(0.0f64, f64::max);
        let p99_cap = (bound as f64 + shards as f64) * max_service;
        let p99 = at_3x.latency_percentile_s(99.0);
        prop_assert!(p99 <= p99_cap, "admitted p99 {p99} above the shedding cap {p99_cap}");
    }

    /// Token-bucket rate limits hold: a limited tenant never admits more
    /// than its burst allowance plus `rate x horizon` requests, however
    /// hard it offers.
    #[test]
    fn tenant_rate_limits_bound_admitted_throughput(
        seed in 0u64..500,
        limit_rps in 50.0f64..400.0,
        pressure in 2.0f64..6.0,
    ) {
        let duration_s = 0.5;
        let base = StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: limit_rps * pressure,
            duration_s,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        };
        let mix = TenantMix::new(vec![TenantSpec {
            name: "limited".to_string(),
            weight: 1.0,
            rate_limit_rps: Some(limit_rps),
            slo_s: None,
        }]);
        let workload = Workload::Shaped(ShapedStream::tenants_only(base, mix));
        let costs = synthetic_costs(2, &[1, 2]);
        let groups = tile16_fleet(4);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
        let outcome = simulate_config(&workload, &cfg);
        let tenant = &outcome.tenant_outcomes[0];
        prop_assert_eq!(tenant.offered as usize, outcome.offered());
        let admitted = tenant.offered - tenant.shed;
        let burst = (limit_rps * TENANT_BURST_S).max(1.0);
        let cap = burst + limit_rps * duration_s + 1.0;
        prop_assert!((admitted as f64) <= cap,
            "tenant admitted {admitted} requests against a cap of {cap}");
        prop_assert_eq!(outcome.shed_limit, tenant.shed);
    }
}

/// Every library scenario arm — rate shapes, tenants, queue bound, faults
/// and the autoscaler included — produces the identical outcome whether
/// the lab runner fans out over 2 or 8 threads, and on repeat runs. This
/// is the in-crate twin of the `serve` artifact byte-identity check.
#[test]
fn library_scenario_arms_are_identical_across_runner_threads() {
    use neura_lab::Runner;

    let mix_size = 2;
    let shrinks = vec![1, 2, 4];
    let costs = synthetic_costs(mix_size, &shrinks);
    let shards = 2;
    let capacity_rps = shards as f64 / mean_service_s(&costs, mix_size, &shrinks);
    let duration_s = 0.3;
    let library = ScenarioSpec::library();
    assert!(library.len() >= 5, "the sweep promises at least 5 named arms");

    let run_all = |threads: usize| -> Vec<ServeOutcome> {
        Runner::new(threads).run(&library, |index, scenario: &ScenarioSpec| {
            let seed = neura_lab::spec::derive_seed(77, scenario.name);
            let base = StreamSpec {
                arrival: ArrivalProcess::Poisson,
                rps: scenario.load * capacity_rps,
                duration_s,
                mix_size,
                shrinks: shrinks.clone(),
                seed,
            };
            let workload = Workload::Shaped(scenario.shaped(base));
            let groups = tile16_fleet(shards);
            let autoscale = AutoscalePolicy::new(1, 4)
                .with_check_interval_s(0.002)
                .with_provision_delay_s(0.01);
            let fault = scenario.fault_spec(seed, duration_s);
            let mut cfg =
                ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
            if scenario.elastic {
                cfg = cfg.with_autoscale(&autoscale);
            }
            cfg.queue_bound = scenario.queue_bound;
            cfg.faults = fault.as_ref();
            let outcome = simulate_config(&workload, &cfg);
            assert_eq!(
                outcome.requests() + outcome.shed.len(),
                outcome.offered(),
                "scenario {:?} (arm {index}) loses requests",
                scenario.name
            );
            outcome
        })
    };

    let two = run_all(2);
    let eight = run_all(8);
    assert_eq!(two, eight, "outcomes diverge across runner thread counts");
    assert_eq!(two, run_all(2), "outcomes diverge across repeat runs");
}

/// The plain-stream entry points agree with the config entry points, so
/// the legacy `simulate_stream` callers and the `ServeConfig` callers can
/// never drift apart.
#[test]
fn config_and_legacy_entry_points_agree() {
    let spec = StreamSpec {
        arrival: ArrivalProcess::Poisson,
        rps: 400.0,
        duration_s: 0.5,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 3,
    };
    let stream = spec.generate();
    let costs = synthetic_costs(2, &[1, 2]);
    let groups = tile16_fleet(2);
    let legacy =
        simulate_stream(&stream, Policy::Fifo, &groups, DispatchKind::LeastLoaded, None, &costs);
    let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
    assert_eq!(legacy, simulate_stream_config(&stream, &cfg));
}
