//! Property tests of the telemetry layer: tracing never changes the
//! outcome; windowed counters conserve requests (arrivals split exactly
//! into admitted + shed, and cumulative admitted − served equals the
//! in-flight count at every window close); histogram percentiles track
//! an exact sort within the documented relative-error bound and merging
//! split streams equals the concatenated histogram; the flash-crowd
//! scenario's worst window p99 strictly exceeds the run aggregate; crash
//! recovery in the timeline waits out the provisioning delay; and traced
//! timelines are identical across runner thread counts.

use neura_chip::config::ChipConfig;
use neura_serve::{
    simulate_config, simulate_config_traced, simulate_stream_config, simulate_stream_config_traced,
    ArrivalProcess, AutoscalePolicy, ClassCost, CostTable, DispatchKind, LatencyHistogram, Policy,
    RequestClass, ScenarioSpec, ServeConfig, ServeOutcome, StreamSpec, Timeline, Workload,
    RELATIVE_ERROR_BOUND,
};
use proptest::prelude::*;

/// A synthetic cost table covering every class a generated stream can
/// draw on Tile-16 silicon (same spread as `scenario_properties`).
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new();
    let fp = costs.register(&ChipConfig::tile_16());
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    costs
}

fn tile16_fleet(n: usize) -> Vec<neura_serve::ShardGroup> {
    vec![neura_serve::ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

/// Mean service time of one request across the synthetic classes.
fn mean_service_s(costs: &CostTable, mix_size: usize, shrinks: &[usize]) -> f64 {
    let fp = ChipConfig::tile_16().fingerprint();
    let classes: Vec<RequestClass> = (0..mix_size)
        .flat_map(|dataset| shrinks.iter().map(move |&shrink| RequestClass { dataset, shrink }))
        .collect();
    classes.iter().map(|&c| costs.service_seconds(&fp, c, 1)).sum::<f64>() / classes.len() as f64
}

/// The autoscaler's provisioning delay shared by every scenario run in
/// this file, so the crash-recovery assertion can name its lower bound.
const PROVISION_DELAY_S: f64 = 0.01;

/// Runs one library scenario traced — the same calibration the
/// `scenario_properties` thread-identity test uses — and windows the
/// trace.
fn run_library_scenario_traced(scenario: &ScenarioSpec, window_s: f64) -> (ServeOutcome, Timeline) {
    let mix_size = 2;
    let shrinks = vec![1, 2, 4];
    let costs = synthetic_costs(mix_size, &shrinks);
    let shards = 2;
    let capacity_rps = shards as f64 / mean_service_s(&costs, mix_size, &shrinks);
    let duration_s = 0.3;
    let seed = neura_lab::spec::derive_seed(77, scenario.name);
    let base = StreamSpec {
        arrival: ArrivalProcess::Poisson,
        rps: scenario.load * capacity_rps,
        duration_s,
        mix_size,
        shrinks: shrinks.clone(),
        seed,
    };
    let workload = Workload::Shaped(scenario.shaped(base));
    let groups = tile16_fleet(shards);
    let autoscale = AutoscalePolicy::new(1, 4)
        .with_check_interval_s(0.002)
        .with_provision_delay_s(PROVISION_DELAY_S);
    let fault = scenario.fault_spec(seed, duration_s);
    let mut cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
    if scenario.elastic {
        cfg = cfg.with_autoscale(&autoscale);
    }
    cfg.queue_bound = scenario.queue_bound;
    cfg.faults = fault.as_ref();
    let (outcome, trace) = simulate_config_traced(&workload, &cfg);
    let timeline = Timeline::build(&trace, &outcome, window_s);
    (outcome, timeline)
}

/// Exact nearest-rank percentile by sorting, the histogram's ground
/// truth.
fn exact_percentile(values: &[f64], pct: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 0.5,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tracing is pure observation: the traced entry points return the
    /// identical outcome the untraced ones do, and the trace accounts
    /// every arrival exactly once (admit xor shed) with as many
    /// completions as served requests.
    #[test]
    fn tracing_never_changes_the_outcome(
        spec in arb_stream(),
        shards in 1usize..=3,
        bound in 0usize..64,
    ) {
        use neura_serve::TraceEvent;
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let groups = tile16_fleet(shards);
        let mut cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
        // Bounds under 4 stand in for "no bound": the generated range
        // covers both admission-control arms without an Option strategy.
        cfg.queue_bound = (bound >= 4).then_some(bound);
        let untraced = simulate_stream_config(&stream, &cfg);
        let (traced, trace) = simulate_stream_config_traced(&stream, &cfg);
        prop_assert_eq!(&traced, &untraced);

        let count = |pred: &dyn Fn(&TraceEvent) -> bool| trace.events.iter().filter(|e| pred(e)).count();
        prop_assert_eq!(count(&|e| matches!(e, TraceEvent::Arrival { .. })), untraced.offered());
        prop_assert_eq!(count(&|e| matches!(e, TraceEvent::Admit { .. })), untraced.requests());
        prop_assert_eq!(count(&|e| matches!(e, TraceEvent::Shed { .. })), untraced.shed.len());
        prop_assert_eq!(count(&|e| matches!(e, TraceEvent::Complete { .. })), untraced.requests());
        prop_assert!(
            trace.events.windows(2).all(|w| w[0].at_s() <= w[1].at_s()),
            "trace events must be time-sorted"
        );
    }

    /// The conservation law of the windowed view: inside every window,
    /// arrivals split exactly into admitted + shed (and shed into its two
    /// reasons); across windows, cumulative admitted − cumulative served
    /// equals the in-flight count at each window close, ending at zero;
    /// and the window totals reproduce the outcome's aggregates.
    #[test]
    fn windowed_counters_conserve_requests(
        scenario_index in 0usize..6,
        window_count in 3usize..60,
    ) {
        let library = ScenarioSpec::library();
        let scenario = &library[scenario_index];
        let window_s = 0.3 / window_count as f64;
        let (outcome, timeline) = run_library_scenario_traced(scenario, window_s);

        let mut admitted_cum = 0u64;
        let mut served_cum = 0u64;
        for window in &timeline.windows {
            prop_assert_eq!(window.arrivals, window.admitted + window.shed);
            prop_assert_eq!(window.shed, window.shed_queue + window.shed_limit);
            admitted_cum += window.admitted;
            served_cum += window.served;
            prop_assert_eq!((admitted_cum - served_cum) as usize, window.in_flight_end);
            prop_assert_eq!(window.served, window.histogram.count());
        }
        let last = timeline.windows.last().expect("at least one window");
        prop_assert_eq!(last.in_flight_end, 0);

        let total = |f: &dyn Fn(&neura_serve::WindowStats) -> u64| -> u64 {
            timeline.windows.iter().map(f).sum()
        };
        prop_assert_eq!(total(&|w| w.arrivals) as usize, outcome.offered());
        prop_assert_eq!(total(&|w| w.admitted) as usize, outcome.requests());
        prop_assert_eq!(total(&|w| w.shed) as usize, outcome.shed.len());
        prop_assert_eq!(total(&|w| w.shed_limit), outcome.shed_limit);
        prop_assert_eq!(timeline.merged.count() as usize, outcome.requests());

        // The merged histogram is exactly the per-window histograms merged,
        // so the max-over-windows p99 can never undercut the aggregate.
        if !timeline.merged.is_empty() {
            let (_, worst) = timeline.worst_window_p99();
            prop_assert!(worst >= timeline.merged.percentile(99.0));
        }
    }

    /// Histogram percentiles sit within the documented relative-error
    /// bound of an exact sort, for arbitrary latency sets spanning seven
    /// orders of magnitude.
    #[test]
    fn histogram_percentiles_track_an_exact_sort(
        values in proptest::collection::vec(1e-5f64..1e2, 1..400),
        pct in 1.0f64..=100.0,
    ) {
        let mut histogram = LatencyHistogram::new();
        for &v in &values {
            histogram.record(v);
        }
        let exact = exact_percentile(&values, pct);
        let approx = histogram.percentile(pct);
        prop_assert!(
            (approx - exact).abs() <= exact * RELATIVE_ERROR_BOUND,
            "p{pct}: histogram {approx} vs exact {exact}"
        );
    }

    /// Merging the histograms of a split stream equals the histogram of
    /// the concatenated stream, whatever the split point — merge is exact,
    /// so per-window histograms aggregate without error.
    #[test]
    fn histogram_merge_is_exact_at_any_split(
        values in proptest::collection::vec(1e-5f64..1e2, 1..200),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((values.len() as f64 * split_frac) as usize).min(values.len());
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i < split { left.record(v) } else { right.record(v) }
            whole.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left, whole);
    }
}

/// The flash-crowd scenario is the reason windowed percentiles exist: the
/// 4x burst drives its windows' p99 strictly above the run aggregate the
/// spike otherwise hides in.
#[test]
fn flash_crowd_worst_window_p99_exceeds_the_aggregate() {
    let scenario = ScenarioSpec::by_name("flash").expect("library scenario");
    let (outcome, timeline) = run_library_scenario_traced(&scenario, 0.3 / 50.0);
    let aggregate = timeline.merged.percentile(99.0);
    let (worst_index, worst) = timeline.worst_window_p99();
    assert!(
        worst > aggregate,
        "flash worst-window p99 {worst} must strictly exceed the aggregate {aggregate}"
    );
    // The spike happens where the shape says it does: the worst window
    // sits inside or after the flash interval, never before it.
    let worst_start = timeline.windows[worst_index].start_s;
    assert!(
        worst_start >= 0.5 * 0.3 - timeline.window_s,
        "worst window at {worst_start}s predates the flash at {}s",
        0.5 * 0.3
    );
    assert_eq!(outcome.requests(), timeline.merged.count() as usize);
}

/// Crash recovery as the timeline reports it waits out the provisioning
/// delay: replacement capacity cannot land earlier than the autoscaler
/// can provision it, and the worst window still dominates the aggregate.
#[test]
fn crash_recovery_in_the_timeline_waits_out_the_provisioning_delay() {
    let scenario = ScenarioSpec::by_name("crash").expect("library scenario");
    let (outcome, timeline) = run_library_scenario_traced(&scenario, 0.3 / 50.0);
    assert_eq!(timeline.recovery_times_s, outcome.recovery_times_s());
    assert!(!timeline.recovery_times_s.is_empty(), "the crash scenario must recover at least once");
    for &recovery in &timeline.recovery_times_s {
        assert!(
            recovery >= PROVISION_DELAY_S - 1e-9,
            "recovered in {recovery}s, under the {PROVISION_DELAY_S}s provisioning delay"
        );
    }
    assert!(timeline.mean_recovery_s() >= PROVISION_DELAY_S - 1e-9);
    let (_, worst) = timeline.worst_window_p99();
    assert!(worst >= timeline.merged.percentile(99.0));
}

/// Traced replays of every library scenario produce identical timelines
/// (and identical `RunRecord` emissions) whether the lab runner fans out
/// over 2 or 8 threads — the in-crate twin of the `serve --trace`
/// artifact byte-identity check.
#[test]
fn traced_timelines_are_identical_across_runner_threads() {
    use neura_lab::Runner;

    let library = ScenarioSpec::library();
    let run_all = |threads: usize| -> Vec<(ServeOutcome, Timeline)> {
        Runner::new(threads).run(&library, |_, scenario: &ScenarioSpec| {
            run_library_scenario_traced(scenario, 0.3 / 25.0)
        })
    };
    let two = run_all(2);
    let eight = run_all(8);
    assert_eq!(two, eight, "timelines diverge across runner thread counts");

    // Identical structs must also emit identical records — the layer the
    // artifact bytes are built from.
    for ((_, a), (_, b)) in two.iter().zip(&eight) {
        assert_eq!(a.records("scope", &[]), b.records("scope", &[]));
    }

    // Untraced outcomes agree with the traced ones scenario by scenario.
    for (scenario, (outcome, _)) in library.iter().zip(&two) {
        let (retraced, _) = run_library_scenario_traced(scenario, 0.3 / 25.0);
        assert_eq!(&retraced, outcome, "scenario {:?} is not deterministic", scenario.name);
    }
}

/// The config entry point and its traced twin agree on every workload
/// shape, including closed-loop clients.
#[test]
fn traced_config_entry_point_matches_untraced_for_closed_loops() {
    use neura_serve::ClosedLoopSpec;

    let costs = synthetic_costs(2, &[1, 2]);
    let groups = tile16_fleet(2);
    let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs);
    let workload = Workload::Closed(ClosedLoopSpec {
        clients: 4,
        think_s: 0.002,
        duration_s: 0.2,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 11,
    });
    let untraced = simulate_config(&workload, &cfg);
    let (traced, trace) = simulate_config_traced(&workload, &cfg);
    assert_eq!(traced, untraced);
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| matches!(e, neura_serve::TraceEvent::Complete { .. }))
            .count(),
        untraced.requests()
    );
}
