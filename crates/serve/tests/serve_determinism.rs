//! The serving artifact contract, mirroring `tune_determinism.rs`: a serve
//! sweep — including heterogeneous fleets, class-aware dispatch,
//! closed-loop arms and an autoscaled arm — executed on the `neura_lab`
//! runner must produce byte-identical artifact JSON for any worker count,
//! and repeat runs of the same sweep must reproduce the bytes exactly.

use neura_chip::config::{ChipConfig, TileSize};
use neura_lab::{Artifact, Runner};
use neura_serve::{
    simulate, ArrivalProcess, AutoscalePolicy, ClassCost, CostTable, DispatchKind, FleetMix,
    Policy, RequestClass, ServeSweep,
};

/// Synthetic costs for every class on all three tile sizes: bigger silicon
/// serves faster, in proportion to its peak throughput.
fn costs() -> CostTable {
    let mut table = CostTable::new();
    for (tile, divisor) in [(TileSize::Tile4, 1u64), (TileSize::Tile16, 4), (TileSize::Tile64, 16)]
    {
        let fp = table.register(&ChipConfig::for_tile_size(tile));
        for dataset in 0..2usize {
            for shrink in [1usize, 2] {
                let single = 1_500_000 * (dataset as u64 + 1) / shrink as u64;
                table.insert(
                    &fp,
                    RequestClass { dataset, shrink },
                    ClassCost {
                        cycles: (single / divisor).max(1),
                        flops: 100 * (dataset as u64 + 1) / shrink as u64,
                    },
                );
            }
        }
    }
    table
}

fn run_with(threads: usize) -> String {
    let sweep = ServeSweep::new()
        .arrivals(ArrivalProcess::ALL)
        .rps([300.0, 900.0])
        .closed_clients([8])
        .think_s(0.001)
        .policies([Policy::Fifo, Policy::Sjf, Policy::batch(4, 0.002)])
        .fleets([
            FleetMix::uniform(TileSize::Tile16, 1),
            FleetMix::uniform(TileSize::Tile16, 3),
            FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 2)]),
        ])
        .dispatches([DispatchKind::LeastLoaded, DispatchKind::ClassAffinity])
        .autoscale([None, Some(AutoscalePolicy::new(1, 3).with_check_interval_s(0.01))]);
    let scenarios = sweep.scenarios("det", 42);
    assert_eq!(scenarios.len(), (2 * 2 + 1) * 3 * 3 * 2 * 2);
    let table = costs();
    let outcomes = Runner::new(threads).run(&scenarios, |_, scenario| {
        let workload = scenario.workload_spec(1.0, 2, &[1, 2]);
        simulate(
            &workload,
            scenario.policy,
            &scenario.fleet.groups,
            scenario.dispatch,
            scenario.autoscale.as_ref(),
            &table,
        )
    });
    let mut artifact = Artifact::new("serve", 1);
    for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
        artifact.extend(outcome.records(&scenario.id, &scenario.params()));
    }
    artifact.to_bytes()
}

#[test]
fn two_and_eight_thread_sweeps_emit_identical_bytes() {
    let two = run_with(2);
    let eight = run_with(8);
    assert!(!two.is_empty());
    assert_eq!(two, eight, "serve artifact bytes must not depend on the thread count");
    assert_eq!(two, run_with(2), "repeat runs reproduce the bytes exactly");

    // The bytes round-trip through the parser: 180 scenarios, each one
    // summary + per-group + per-shard records, every record carrying
    // metrics.
    let parsed = Artifact::from_json(&neura_lab::parse_json(&two).unwrap()).unwrap();
    let summaries: Vec<_> = parsed.records.iter().filter(|r| r.id.ends_with("/summary")).collect();
    assert_eq!(summaries.len(), 180);
    assert!(parsed.records.iter().all(|r| !r.metrics.is_empty()));
    assert!(summaries.iter().all(|r| r.metric_value("p99_latency_ms").is_some()
        && r.metric_value("throughput_rps").is_some()
        && r.metric_value("shard_seconds").is_some()));
    // Heterogeneous arms carry one record per group, autoscaled arms carry
    // scale-event counts, closed-loop arms an in-flight cap.
    assert!(parsed
        .records
        .iter()
        .any(|r| r.id.contains("/t64x1+t4x2/") && r.id.ends_with("/group/t64")));
    assert!(summaries
        .iter()
        .filter(|r| r.id.contains("/as1-3"))
        .all(|r| r.metric_value("scale_events").is_some()));
    assert!(summaries
        .iter()
        .filter(|r| r.id.contains("/closed8/"))
        .all(|r| r.metric_value("max_in_flight").unwrap() <= 8.0));
}
