//! The serving artifact contract, mirroring `tune_determinism.rs`: a serve
//! sweep executed on the `neura_lab` runner must produce byte-identical
//! artifact JSON for any worker count, and repeat runs of the same sweep
//! must reproduce the bytes exactly.

use neura_lab::{Artifact, Runner};
use neura_serve::{
    simulate, ArrivalProcess, ClassCost, CostTable, Policy, RequestClass, ServeSweep,
};

fn costs() -> CostTable {
    let mut costs = CostTable::new(1e-9);
    for dataset in 0..2 {
        for shrink in [1usize, 2] {
            costs.insert(
                RequestClass { dataset, shrink },
                ClassCost {
                    cycles: 1_500_000 * (dataset as u64 + 1) / shrink as u64,
                    flops: 100 * (dataset as u64 + 1) / shrink as u64,
                },
            );
        }
    }
    costs
}

fn run_with(threads: usize) -> String {
    let sweep = ServeSweep::new()
        .arrivals(ArrivalProcess::ALL)
        .rps([300.0, 900.0])
        .policies([Policy::Fifo, Policy::Sjf, Policy::batch(4, 0.002)])
        .shards([1, 3]);
    let scenarios = sweep.scenarios("det", 42);
    assert_eq!(scenarios.len(), 24);
    let table = costs();
    let outcomes = Runner::new(threads).run(&scenarios, |_, scenario| {
        let stream = scenario.stream_spec(1.0, 2, &[1, 2]).generate();
        simulate(&stream, scenario.policy, scenario.shards, &table)
    });
    let mut artifact = Artifact::new("serve", 1);
    for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
        artifact.extend(outcome.records(&scenario.id, &scenario.params()));
    }
    artifact.to_bytes()
}

#[test]
fn two_and_eight_thread_sweeps_emit_identical_bytes() {
    let two = run_with(2);
    let eight = run_with(8);
    assert!(!two.is_empty());
    assert_eq!(two, eight, "serve artifact bytes must not depend on the thread count");
    assert_eq!(two, run_with(2), "repeat runs reproduce the bytes exactly");

    // The bytes round-trip through the parser: 24 scenarios, each one
    // summary + per-shard records, every record carrying metrics.
    let parsed = Artifact::from_json(&neura_lab::parse_json(&two).unwrap()).unwrap();
    let summaries = parsed.records.iter().filter(|r| r.id.ends_with("/summary")).count();
    assert_eq!(summaries, 24);
    assert!(parsed.records.iter().all(|r| !r.metrics.is_empty()));
    assert!(parsed
        .records
        .iter()
        .filter(|r| r.id.ends_with("/summary"))
        .all(|r| r.metric_value("p99_latency_ms").is_some()
            && r.metric_value("throughput_rps").is_some()));
}
