//! Property tests of the parallel-in-time engine's determinism contract:
//! for *arbitrary* scenario specs — bursty and Poisson streams, every
//! policy, elastic fleets, bounded queues, fault regimes — and arbitrary
//! epoch plans (counts, widths, thread counts), the merged parallel
//! replay must produce the same outcome, the same trace and the same
//! artifact bytes as the serial engine; admitted requests are served or
//! shed exactly once across every seam; and the closed-loop lane
//! decomposition is thread-invariant at any fixed lane count.

use neura_chip::config::ChipConfig;
use neura_lab::Artifact;
use neura_serve::{
    simulate_config_traced_parallel, simulate_stream_config_traced,
    simulate_stream_config_traced_parallel, ArrivalProcess, AutoscalePolicy, ClassCost,
    ClosedLoopSpec, CostTable, DispatchKind, EnginePlan, FaultSpec, Policy, RequestClass,
    ServeConfig, ShardGroup, StreamSpec, Workload,
};
use proptest::prelude::*;

/// Synthetic Tile-16 costs with enough spread to exercise SJF reordering
/// and batching (same shape as the other serving property suites).
fn synthetic_costs(mix_size: usize, shrinks: &[usize]) -> CostTable {
    let mut costs = CostTable::new();
    let fp = costs.register(&ChipConfig::tile_16());
    for dataset in 0..mix_size {
        for &shrink in shrinks {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            costs.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    costs
}

fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
    vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
}

fn arb_stream() -> impl Strategy<Value = StreamSpec> {
    (0usize..2, 200.0f64..600.0, 1usize..=3, 0u64..1_000).prop_map(
        |(arrival, rps, mix_size, seed)| StreamSpec {
            arrival: ArrivalProcess::ALL[arrival],
            rps,
            duration_s: 1.0,
            mix_size,
            shrinks: vec![1, 2, 4],
            seed,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (0usize..3, 1usize..=6, 0.0f64..0.02).prop_map(|(kind, max_batch, timeout_s)| match kind {
        0 => Policy::Fifo,
        1 => Policy::Sjf,
        _ => Policy::batch(max_batch, timeout_s),
    })
}

/// An arbitrary epoch plan: a fragment count or a width in seconds, on an
/// arbitrary worker-pool size (1 = pinned serial execution of the same
/// fragment schedule).
fn arb_plan() -> impl Strategy<Value = EnginePlan> {
    (0usize..2, 2usize..=12, 0.001f64..0.3, 0usize..3).prop_map(
        |(kind, epochs, width_s, threads)| {
            let plan = match kind {
                0 => EnginePlan::serial().with_epochs(epochs),
                _ => EnginePlan::serial().with_epoch_s(width_s),
            };
            plan.with_threads([1, 2, 8][threads])
        },
    )
}

/// An arbitrary fault regime over the stream horizon: up to two crashes,
/// flaky or bricked provisioning, optionally degraded silicon.
fn arb_fault(window_s: f64) -> impl Strategy<Value = Option<FaultSpec>> {
    (0usize..2, 0u64..1_000, 0usize..=2, 0usize..3, 1.0f64..3.0).prop_map(
        move |(inject, seed, crashes, pf_pick, multiplier)| {
            (inject == 1).then(|| {
                FaultSpec::new(seed, window_s)
                    .with_crashes(crashes)
                    .with_provision_fail([0.0, 0.3, 1.0][pf_pick])
                    .with_degraded(0, multiplier)
            })
        },
    )
}

/// The artifact bytes a serving outcome would emit — the representation
/// the byte-identity contract is stated in.
fn artifact_bytes(outcome: &neura_serve::ServeOutcome) -> String {
    let mut artifact = Artifact::new("engine-prop", 1);
    artifact.extend(outcome.records("prop/case", &[]));
    artifact.to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline contract: for any scenario — including autoscaling,
    /// bounded queues and fault injection — and any epoch plan, the
    /// parallel replay's outcome, trace and artifact bytes all equal the
    /// serial engine's, and every admitted request is served or shed
    /// exactly once across the seams.
    #[test]
    fn epoch_replay_is_byte_identical_to_serial(
        spec in arb_stream(),
        policy in arb_policy(),
        plan in arb_plan(),
        shards in 2usize..=4,
        elastic in 0usize..2,
        bound_pick in 0usize..9,
        fault in arb_fault(1.0),
    ) {
        let stream = spec.generate();
        let costs = synthetic_costs(spec.mix_size, &spec.shrinks);
        let fleet = tile16_fleet(shards);
        let autoscale = AutoscalePolicy::new(1, shards + 1)
            .with_check_interval_s(0.005)
            .with_provision_delay_s(0.01)
            .with_up_backlog_per_shard(2.0);
        let mut cfg = ServeConfig::new(policy, &fleet, DispatchKind::LeastLoaded, &costs);
        if elastic == 1 {
            cfg.autoscale = Some(&autoscale);
        }
        // 0 = unbounded; 1..=8 = a backlog bound tight enough to shed.
        cfg.queue_bound = (bound_pick > 0).then_some(bound_pick);
        cfg.faults = fault.as_ref();

        let (serial, serial_trace) = simulate_stream_config_traced(&stream, &cfg);
        let (parallel, parallel_trace) =
            simulate_stream_config_traced_parallel(&stream, &cfg, &plan);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial_trace, &parallel_trace);
        prop_assert_eq!(artifact_bytes(&serial), artifact_bytes(&parallel));
        // Conservation across seams: shed + served partition the stream.
        prop_assert_eq!(parallel.requests() + parallel.shed.len(), stream.len());
        prop_assert_eq!(parallel.latencies_s.len(), stream.len());
        for &id in &parallel.shed {
            prop_assert!(parallel.latencies_s[id] < 0.0, "shed request {} has a latency", id);
        }
    }

    /// Closed-loop workloads under an arbitrary epoch plan (no lanes):
    /// same contract, demand regenerated from completions across seams.
    #[test]
    fn closed_loop_epochs_are_identical_to_serial(
        clients in 1usize..=16,
        think_ms in 0.0f64..5.0,
        policy in arb_policy(),
        plan in arb_plan(),
        shards in 1usize..=3,
        seed in 0u64..500,
    ) {
        let workload = Workload::Closed(ClosedLoopSpec {
            clients,
            think_s: think_ms / 1e3,
            duration_s: 0.25,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        });
        let costs = synthetic_costs(2, &[1, 2]);
        let fleet = tile16_fleet(shards);
        let cfg = ServeConfig::new(policy, &fleet, DispatchKind::LeastLoaded, &costs);
        let (serial, serial_trace) =
            simulate_config_traced_parallel(&workload, &cfg, &EnginePlan::serial());
        let (parallel, parallel_trace) = simulate_config_traced_parallel(&workload, &cfg, &plan);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial_trace, &parallel_trace);
        prop_assert!(parallel.max_in_flight() <= clients);
        prop_assert_eq!(parallel.batch_sizes.iter().sum::<usize>(), parallel.requests());
    }

    /// The lane decomposition at any fixed lane count is invariant to the
    /// thread count, conserves every request, and respects the client cap.
    #[test]
    fn lanes_are_thread_invariant_at_any_lane_count(
        clients in 1usize..=24,
        think_ms in 0.0f64..3.0,
        lanes in 1usize..=4,
        extra_shards in 0usize..=3,
        seed in 0u64..500,
    ) {
        let workload = Workload::Closed(ClosedLoopSpec {
            clients,
            think_s: think_ms / 1e3,
            duration_s: 0.25,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        });
        let costs = synthetic_costs(2, &[1, 2]);
        let fleet = tile16_fleet(lanes + extra_shards);
        let cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
        let plan = EnginePlan::serial().with_lanes(lanes);
        let (pinned, pinned_trace) =
            simulate_config_traced_parallel(&workload, &cfg, &plan.clone().with_threads(1));
        let (pooled, pooled_trace) =
            simulate_config_traced_parallel(&workload, &cfg, &plan.clone().with_threads(8));
        prop_assert_eq!(&pinned, &pooled);
        prop_assert_eq!(&pinned_trace, &pooled_trace);
        prop_assert_eq!(artifact_bytes(&pinned), artifact_bytes(&pooled));
        // Conservation: closed loops never shed; every latency is a real
        // served request and every batch slot is accounted once.
        prop_assert_eq!(pinned.requests(), pinned.latencies_s.len());
        prop_assert!(pinned.latencies_s.iter().all(|&l| l.is_finite() && l > 0.0));
        prop_assert_eq!(pinned.batch_sizes.iter().sum::<usize>(), pinned.requests());
        prop_assert_eq!(
            pinned.shard_stats.iter().map(|s| s.requests).sum::<u64>() as usize,
            pinned.requests()
        );
        prop_assert!(pinned.max_in_flight() <= clients);
    }
}
