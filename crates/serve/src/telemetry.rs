//! Deterministic observability: request lifecycle traces, windowed
//! time-series and mergeable latency histograms.
//!
//! Every other serve metric is an end-of-run aggregate, which makes the
//! scenario library's dynamics invisible *in time* — a flash crowd's p99
//! spike, the backlog draining after a crash, a tenant being squeezed mid
//! run all blend into one number. This module adds the missing axis in
//! three deterministic layers:
//!
//! 1. **[`Trace`]** — the raw record. When a caller uses the `*_traced`
//!    entry points of [`crate::sim`], the event loop appends one
//!    [`TraceEvent`] per lifecycle step (arrival → admit/shed →
//!    dispatch/service start → completion, plus crash/scale/provisioning
//!    events) in simulation-time order. Tracing is opt-in: the untraced
//!    entry points skip every push, so the hot loop pays nothing.
//! 2. **[`LatencyHistogram`]** — mergeable percentile state. Latencies
//!    land in log-spaced buckets (the float's exponent plus the top
//!    [`SUB_BUCKET_BITS`] mantissa bits), so [`LatencyHistogram::merge`]
//!    is exact bucket-count addition and every reported percentile sits
//!    within [`RELATIVE_ERROR_BOUND`] of the exact-sort answer. This is
//!    the state a future parallel-in-time engine can merge across
//!    timeline fragments.
//! 3. **[`Timeline`]** — the windowed view. [`Timeline::build`] replays a
//!    trace into fixed-width windows sampling queue depth, in-flight
//!    count, shed rate, per-group utilisation and active shards,
//!    per-tenant throughput/SLO attainment and per-window p50/p99, and
//!    emits them as `neura_lab` records under the
//!    `neura_lab.timeline/v1` artifact schema.
//!
//! Everything here is a pure function of the trace, so timeline artifacts
//! inherit the simulation's byte-identity across `NEURA_LAB_THREADS`.

use std::collections::BTreeMap;

use neura_lab::RunRecord;

use crate::sim::ServeOutcome;

/// Mantissa bits that subdivide each power-of-two latency range into
/// `2^SUB_BUCKET_BITS` log-spaced histogram buckets.
pub const SUB_BUCKET_BITS: u32 = 7;

/// How far a bucket's index reaches into the float's bit pattern.
const BUCKET_SHIFT: u32 = 52 - SUB_BUCKET_BITS;

/// The histogram's proven relative error: a bucket covering `[lo, hi)`
/// has width `hi − lo = 2^(e − 7)` where `2^e ≤ lo`, so the bucket
/// midpoint sits within `2^(e − 8) ≤ value / 256` of any member value.
/// Holds for every normal value (all real latencies); values below
/// `f64::MIN_POSITIVE` collapse towards zero with absolute error under
/// `1e-307`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 256.0;

/// A mergeable log-bucketed latency histogram.
///
/// Values map to buckets by truncating the `f64` bit pattern to its
/// exponent plus the top [`SUB_BUCKET_BITS`] mantissa bits — an
/// integer-only, platform-independent mapping that keeps bucket order
/// equal to value order. Percentiles are nearest-rank over the bucket
/// counts and report the bucket midpoint, which is provably within
/// [`RELATIVE_ERROR_BOUND`] of the exact-sort percentile.
/// [`Self::merge`] adds bucket counts, so the histogram of a
/// concatenated stream equals the merge of its parts' histograms —
/// the property windowed percentiles and the future fragment-merge
/// engine both rely on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u32, u64>,
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index of a non-negative finite value.
    fn bucket_of(value: f64) -> u32 {
        (value.to_bits() >> BUCKET_SHIFT) as u32
    }

    /// The midpoint of a bucket's value range (its reported percentile
    /// representative). Bucket 0 holds exact zeros and reports 0.
    fn representative(bucket: u32) -> f64 {
        if bucket == 0 {
            return 0.0;
        }
        let lower = f64::from_bits(u64::from(bucket) << BUCKET_SHIFT);
        let upper = f64::from_bits(u64::from(bucket + 1) << BUCKET_SHIFT);
        (lower + upper) / 2.0
    }

    /// Records one latency observation.
    ///
    /// # Panics
    ///
    /// Panics when `value` is negative or non-finite — a latency can be
    /// neither, so feeding one in is a caller bug worth failing loudly on.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `count` observations of the same latency.
    ///
    /// # Panics
    ///
    /// As [`Self::record`].
    pub fn record_n(&mut self, value: f64, count: u64) {
        assert!(value >= 0.0 && value.is_finite(), "latency {value} is not a non-negative real");
        if count == 0 {
            return;
        }
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += count;
        self.total += count;
    }

    /// Adds every bucket of `other` into `self` — exact, order-free, and
    /// equivalent to having recorded both streams into one histogram.
    pub fn merge(&mut self, other: &Self) {
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Nearest-rank percentile (0 when empty), reported as the owning
    /// bucket's midpoint — within [`RELATIVE_ERROR_BOUND`] of the
    /// exact-sort percentile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct ≤ 100`.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be within (0, 100]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((pct / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&bucket, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Self::representative(bucket);
            }
        }
        unreachable!("cumulative bucket counts reach the total")
    }

    /// Several percentiles (each as [`Self::percentile`]).
    pub fn percentiles(&self, pcts: &[f64]) -> Vec<f64> {
        pcts.iter().map(|&pct| self.percentile(pct)).collect()
    }
}

/// Why an arrival was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The backlog was at its [`crate::sim::ServeConfig::queue_bound`].
    QueueFull,
    /// The tenant's token bucket was empty.
    RateLimited,
}

/// One step of a request's (or the fleet's) lifecycle, stamped with its
/// simulation time. Events are appended in event-loop order, so a trace
/// is already sorted by `at_s`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the system.
    Arrival {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
    },
    /// The request passed admission into the backlog.
    Admit {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
    },
    /// The request was shed at admission.
    Shed {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
        /// What gate refused it.
        reason: ShedReason,
    },
    /// A dispatch unit left the backlog and started service on a shard
    /// (dispatch and service start coincide in this model).
    Dispatch {
        /// Simulation time in seconds.
        at_s: f64,
        /// Serving shard slot.
        shard: usize,
        /// The shard's group.
        group: usize,
        /// Requests in the unit.
        requests: usize,
        /// Service time the unit was charged.
        service_s: f64,
    },
    /// A request's batch finished; its latency is final.
    Complete {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
        /// Completion − arrival, in seconds.
        latency_s: f64,
    },
    /// An injected crash removed a shard; its in-flight batch returned to
    /// the queue head.
    Crash {
        /// Simulation time in seconds.
        at_s: f64,
        /// Crashed shard slot.
        shard: usize,
        /// The shard's group.
        group: usize,
        /// Requests returned to the queue for re-dispatch.
        redispatched: usize,
        /// Service seconds retracted from the interrupted batch.
        lost_service_s: f64,
    },
    /// An executed fleet-size change (the autoscaler's doing — crashes
    /// are [`TraceEvent::Crash`] events).
    Scale {
        /// Effect time in seconds.
        at_s: f64,
        /// Affected group.
        group: usize,
        /// +1 grow / −1 shrink.
        delta: i64,
        /// Fleet-wide active shards after the change.
        active_total: usize,
    },
    /// A scheduled scale-up that failed to provision.
    ProvisionFailure {
        /// Simulation time in seconds.
        at_s: f64,
        /// Affected group.
        group: usize,
    },
}

impl TraceEvent {
    /// The event's simulation time.
    pub fn at_s(&self) -> f64 {
        match *self {
            TraceEvent::Arrival { at_s, .. }
            | TraceEvent::Admit { at_s, .. }
            | TraceEvent::Shed { at_s, .. }
            | TraceEvent::Dispatch { at_s, .. }
            | TraceEvent::Complete { at_s, .. }
            | TraceEvent::Crash { at_s, .. }
            | TraceEvent::Scale { at_s, .. }
            | TraceEvent::ProvisionFailure { at_s, .. } => at_s,
        }
    }
}

/// Static shard-group context a trace carries so the timeline can follow
/// active-capacity changes without the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGroup {
    /// The group's name.
    pub name: String,
    /// Shards active at t = 0.
    pub initial_shards: usize,
}

/// Static tenant context a trace carries (empty without a tenant mix).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTenant {
    /// The tenant's name.
    pub name: String,
    /// The tenant's latency SLO, if declared.
    pub slo_s: Option<f64>,
}

/// The full lifecycle record of one traced replay: static fleet/tenant
/// context plus every [`TraceEvent`] in simulation-time order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Shard groups, in fleet order.
    pub groups: Vec<TraceGroup>,
    /// Tenants of the mix, in mix order (empty without one).
    pub tenants: Vec<TraceTenant>,
    /// Lifecycle events, sorted by time.
    pub events: Vec<TraceEvent>,
}

/// One shard group's slice of a window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupWindow {
    /// Service seconds the group's shards spent inside the window.
    pub busy_s: f64,
    /// Provisioned shard-seconds inside the window (the utilisation
    /// denominator).
    pub active_seconds: f64,
    /// Active shards at the window's end.
    pub active_end: usize,
}

/// One tenant's slice of a window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantWindow {
    /// Requests of the tenant completed inside the window.
    pub served: u64,
    /// Of those, completions within the tenant's SLO (equal to `served`
    /// when no SLO is declared).
    pub within_slo: u64,
}

/// Everything one fixed-width window of the timeline measured.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowStats {
    /// Window start time in seconds.
    pub start_s: f64,
    /// Requests that arrived inside the window.
    pub arrivals: u64,
    /// Of those, requests admitted into the backlog.
    pub admitted: u64,
    /// Of those, requests shed at admission.
    pub shed: u64,
    /// Shed because the backlog was at its bound.
    pub shed_queue: u64,
    /// Shed because the tenant's token bucket was empty.
    pub shed_limit: u64,
    /// Requests completed inside the window.
    pub served: u64,
    /// Scheduled scale-ups that failed to provision inside the window.
    pub provision_failures: u64,
    /// Backlog depth when the window closed.
    pub queue_depth_end: usize,
    /// Largest backlog depth observed inside the window.
    pub queue_depth_peak: usize,
    /// Admitted-but-uncompleted requests when the window closed.
    pub in_flight_end: usize,
    /// Latencies of the window's completions.
    pub histogram: LatencyHistogram,
    /// Per-group busy/active accounting, in fleet group order.
    pub groups: Vec<GroupWindow>,
    /// Per-tenant accounting, in mix order (empty without a mix).
    pub tenants: Vec<TenantWindow>,
}

impl WindowStats {
    /// Fraction of the window's arrivals shed (0 for an idle window).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals > 0 {
            self.shed as f64 / self.arrivals as f64
        } else {
            0.0
        }
    }
}

/// The windowed time-series view of one traced replay.
///
/// Built by [`Timeline::build`] from a [`Trace`] and its
/// [`ServeOutcome`]; every field is a pure function of the two, so two
/// builds of the same replay are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The fixed window width in seconds.
    pub window_s: f64,
    /// The windows, in time order (always at least one).
    pub windows: Vec<WindowStats>,
    /// Every window's histogram merged — the run-aggregate percentile
    /// state, built through [`LatencyHistogram::merge`].
    pub merged: LatencyHistogram,
    /// Shard-group names, in fleet order.
    pub group_names: Vec<String>,
    /// Tenant context, in mix order (empty without a mix).
    pub tenants: Vec<TraceTenant>,
    /// Per-crash recovery times copied from the outcome (crash to the
    /// first repairing scale-up's effect).
    pub recovery_times_s: Vec<f64>,
}

impl Timeline {
    /// Replays a trace into fixed-width windows.
    ///
    /// Windows tile `[0, makespan)`; events exactly at the makespan land
    /// in the final window. The pass is single and chronological: queue
    /// depth and in-flight counts integrate admit/dispatch/complete/crash
    /// deltas, per-group busy seconds come from dispatch intervals
    /// clipped to each window (crash retractions subtract the lost tail),
    /// and active shard-seconds integrate the scale/crash step function.
    ///
    /// # Panics
    ///
    /// Panics unless `window_s` is positive and finite.
    pub fn build(trace: &Trace, outcome: &ServeOutcome, window_s: f64) -> Self {
        assert!(window_s > 0.0 && window_s.is_finite(), "window width must be a positive time");
        let makespan = outcome.makespan_s;
        let count = ((makespan / window_s).ceil() as usize).max(1);
        let window_of = |t: f64| ((t / window_s) as usize).min(count - 1);
        let groups = trace.groups.len();
        let mut windows: Vec<WindowStats> = (0..count)
            .map(|w| WindowStats {
                start_s: w as f64 * window_s,
                groups: vec![GroupWindow::default(); groups],
                tenants: vec![TenantWindow::default(); trace.tenants.len()],
                ..WindowStats::default()
            })
            .collect();

        // Clips `[from, to)` against every window it overlaps and adds
        // `sign` times the overlap to that window's group busy time.
        let add_busy =
            |windows: &mut [WindowStats], group: usize, from: f64, to: f64, sign: f64| {
                if to <= from {
                    return;
                }
                let (first, last) = (window_of(from), window_of(to));
                for (w, window) in windows.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = w as f64 * window_s;
                    let hi = lo + window_s;
                    let overlap = (to.min(hi) - from.max(lo)).max(0.0);
                    window.groups[group].busy_s += sign * overlap;
                }
            };

        let mut active: Vec<usize> = trace.groups.iter().map(|g| g.initial_shards).collect();
        let mut active_from = 0.0f64;
        // Integrates the per-group active-shard step function over
        // `[active_from, to)` into the overlapped windows.
        let accrue_active = |windows: &mut [WindowStats], active: &[usize], from: f64, to: f64| {
            if to <= from {
                return;
            }
            let (first, last) = (window_of(from), window_of(to));
            for (w, window) in windows.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = w as f64 * window_s;
                let hi = lo + window_s;
                let overlap = (to.min(hi) - from.max(lo)).max(0.0);
                for (g, &n) in active.iter().enumerate() {
                    window.groups[g].active_seconds += n as f64 * overlap;
                }
            }
        };

        let mut depth = 0usize;
        let mut in_flight = 0usize;
        let mut cursor = 0usize;
        let close = |windows: &mut [WindowStats],
                     cursor: &mut usize,
                     upto: usize,
                     depth: usize,
                     in_flight: usize,
                     active: &[usize]| {
            while *cursor < upto {
                let window = &mut windows[*cursor];
                window.queue_depth_end = depth;
                window.in_flight_end = in_flight;
                for (g, &n) in active.iter().enumerate() {
                    window.groups[g].active_end = n;
                }
                *cursor += 1;
                if *cursor < windows.len() {
                    windows[*cursor].queue_depth_peak = depth;
                }
            }
        };

        for event in &trace.events {
            let w = window_of(event.at_s());
            close(&mut windows, &mut cursor, w, depth, in_flight, &active);
            let window = &mut windows[w];
            match *event {
                TraceEvent::Arrival { .. } => window.arrivals += 1,
                TraceEvent::Admit { .. } => {
                    window.admitted += 1;
                    depth += 1;
                    in_flight += 1;
                    window.queue_depth_peak = window.queue_depth_peak.max(depth);
                }
                TraceEvent::Shed { reason, .. } => {
                    window.shed += 1;
                    match reason {
                        ShedReason::QueueFull => window.shed_queue += 1,
                        ShedReason::RateLimited => window.shed_limit += 1,
                    }
                }
                TraceEvent::Dispatch { at_s, group, requests, service_s, .. } => {
                    depth -= requests;
                    add_busy(&mut windows, group, at_s, at_s + service_s, 1.0);
                }
                TraceEvent::Complete { at_s: _, tenant, latency_s, .. } => {
                    in_flight -= 1;
                    window.served += 1;
                    window.histogram.record(latency_s);
                    if let Some(slot) = window.tenants.get_mut(tenant) {
                        slot.served += 1;
                        let slo = trace.tenants[tenant].slo_s;
                        if slo.is_none_or(|slo| latency_s <= slo) {
                            slot.within_slo += 1;
                        }
                    }
                }
                TraceEvent::Crash { at_s, group, redispatched, lost_service_s, .. } => {
                    depth += redispatched;
                    windows[w].queue_depth_peak = windows[w].queue_depth_peak.max(depth);
                    add_busy(&mut windows, group, at_s, at_s + lost_service_s, -1.0);
                    accrue_active(&mut windows, &active, active_from, at_s);
                    active_from = at_s;
                    active[group] -= 1;
                }
                TraceEvent::Scale { at_s, group, delta, .. } => {
                    accrue_active(&mut windows, &active, active_from, at_s);
                    active_from = at_s;
                    active[group] = (active[group] as i64 + delta) as usize;
                }
                TraceEvent::ProvisionFailure { .. } => window.provision_failures += 1,
            }
        }
        accrue_active(&mut windows, &active, active_from, makespan);
        close(&mut windows, &mut cursor, count, depth, in_flight, &active);

        let mut merged = LatencyHistogram::new();
        for window in &windows {
            merged.merge(&window.histogram);
        }
        Timeline {
            window_s,
            windows,
            merged,
            group_names: trace.groups.iter().map(|g| g.name.clone()).collect(),
            tenants: trace.tenants.clone(),
            recovery_times_s: outcome.recovery_times_s(),
        }
    }

    /// The window with the largest p99 and that p99 in seconds
    /// (window 0 / 0.0 when nothing was served).
    pub fn worst_window_p99(&self) -> (usize, f64) {
        let mut worst = (0usize, 0.0f64);
        for (w, window) in self.windows.iter().enumerate() {
            if window.histogram.is_empty() {
                continue;
            }
            let p99 = window.histogram.percentile(99.0);
            if p99 > worst.1 {
                worst = (w, p99);
            }
        }
        worst
    }

    /// Mean recovery time over the repaired crashes (0 when none).
    pub fn mean_recovery_s(&self) -> f64 {
        if self.recovery_times_s.is_empty() {
            0.0
        } else {
            self.recovery_times_s.iter().sum::<f64>() / self.recovery_times_s.len() as f64
        }
    }

    /// The timeline's artifact records: one `{scope}/timeline` summary
    /// (window count/width, worst-window vs aggregate p99, recovery
    /// accounting) and one `{scope}/window/NNN` record per window
    /// (admission counters, queue depth, in-flight, windowed p50/p99,
    /// per-group utilisation and active shards, per-tenant throughput
    /// and SLO attainment). `params` is attached to every record.
    pub fn records(&self, scope: &str, params: &[(String, String)]) -> Vec<RunRecord> {
        let (worst_window, worst_p99) = self.worst_window_p99();
        let served: u64 = self.windows.iter().map(|w| w.served).sum();
        let arrivals: u64 = self.windows.iter().map(|w| w.arrivals).sum();
        let shed: u64 = self.windows.iter().map(|w| w.shed).sum();
        let aggregate = self.merged.percentiles(&[50.0, 99.0]);
        let mut summary = RunRecord::new(format!("{scope}/timeline"))
            .metric("windows", self.windows.len() as f64)
            .unit_metric("window_ms", self.window_s * 1e3, "ms")
            .metric("arrivals", arrivals as f64)
            .metric("served", served as f64)
            .metric("shed", shed as f64)
            .unit_metric("aggregate_p50_ms", aggregate[0] * 1e3, "ms")
            .unit_metric("aggregate_p99_ms", aggregate[1] * 1e3, "ms")
            .metric("worst_window", worst_window as f64)
            .unit_metric("worst_window_start_ms", self.windows[worst_window].start_s * 1e3, "ms")
            .unit_metric("worst_window_p99_ms", worst_p99 * 1e3, "ms")
            .metric("recoveries", self.recovery_times_s.len() as f64)
            .unit_metric("recovery_time_ms", self.mean_recovery_s() * 1e3, "ms")
            .metric("histogram_error_bound_pct", RELATIVE_ERROR_BOUND * 100.0);
        summary.params = params.to_vec();
        let mut records = vec![summary];
        for (w, window) in self.windows.iter().enumerate() {
            let tails = window.histogram.percentiles(&[50.0, 99.0]);
            let mut record = RunRecord::new(format!("{scope}/window/{w:03}"))
                .unit_metric("start_ms", window.start_s * 1e3, "ms")
                .metric("arrivals", window.arrivals as f64)
                .metric("admitted", window.admitted as f64)
                .metric("shed", window.shed as f64)
                .metric("shed_queue", window.shed_queue as f64)
                .metric("shed_limit", window.shed_limit as f64)
                .metric("shed_rate", window.shed_rate())
                .metric("served", window.served as f64)
                .unit_metric("throughput_rps", window.served as f64 / self.window_s, "req/s")
                .unit_metric("p50_ms", tails[0] * 1e3, "ms")
                .unit_metric("p99_ms", tails[1] * 1e3, "ms")
                .metric("queue_depth_end", window.queue_depth_end as f64)
                .metric("queue_depth_peak", window.queue_depth_peak as f64)
                .metric("in_flight_end", window.in_flight_end as f64)
                .metric("provision_failures", window.provision_failures as f64);
            for (g, group) in window.groups.iter().enumerate() {
                let name = &self.group_names[g];
                let util = if group.active_seconds > 0.0 {
                    group.busy_s / group.active_seconds
                } else {
                    0.0
                };
                record = record
                    .metric(format!("util_{name}"), util)
                    .metric(format!("active_{name}"), group.active_end as f64);
            }
            for (t, tenant) in window.tenants.iter().enumerate() {
                let spec = &self.tenants[t];
                record = record.unit_metric(
                    format!("rps_{}", spec.name),
                    tenant.served as f64 / self.window_s,
                    "req/s",
                );
                if spec.slo_s.is_some() {
                    let attainment = if tenant.served > 0 {
                        tenant.within_slo as f64 / tenant.served as f64
                    } else {
                        1.0
                    };
                    record = record.metric(format!("slo_{}", spec.name), attainment);
                }
            }
            record.params = params.to_vec();
            record.params.push(("window".to_string(), w.to_string()));
            records.push(record);
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile by sorting, the histogram's ground
    /// truth.
    fn exact_percentile(values: &[f64], pct: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// A deterministic pseudo-random latency stream spanning five orders
    /// of magnitude (SplitMix64 steps, no external RNG).
    fn latencies(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                1e-4 * (10.0f64).powf(unit * 5.0)
            })
            .collect()
    }

    #[test]
    fn percentiles_sit_within_the_relative_error_bound() {
        for seed in [1, 7, 42] {
            let values = latencies(seed, 2_000);
            let mut histogram = LatencyHistogram::new();
            for &v in &values {
                histogram.record(v);
            }
            assert_eq!(histogram.count(), values.len() as u64);
            for pct in [10.0, 50.0, 90.0, 99.0, 100.0] {
                let exact = exact_percentile(&values, pct);
                let approx = histogram.percentile(pct);
                assert!(
                    (approx - exact).abs() <= exact * RELATIVE_ERROR_BOUND,
                    "p{pct}: histogram {approx} vs exact {exact} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn merge_of_split_streams_equals_the_concatenated_histogram() {
        let values = latencies(99, 1_501);
        for split in [0, 1, 750, 1_500, 1_501] {
            let mut left = LatencyHistogram::new();
            let mut right = LatencyHistogram::new();
            for &v in &values[..split] {
                left.record(v);
            }
            for &v in &values[split..] {
                right.record(v);
            }
            let mut whole = LatencyHistogram::new();
            for &v in &values {
                whole.record(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "merge at {split} diverges from the concatenated stream");
        }
    }

    #[test]
    fn empty_and_zero_behave() {
        let mut histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile(99.0), 0.0);
        histogram.record_n(0.0, 3);
        assert_eq!(histogram.percentile(50.0), 0.0, "exact zeros report zero");
        histogram.record(1.0);
        assert_eq!(histogram.count(), 4);
        assert!(histogram.percentile(100.0) > 0.9);
    }

    #[test]
    #[should_panic(expected = "not a non-negative real")]
    fn negative_latencies_are_rejected() {
        LatencyHistogram::new().record(-1.0);
    }

    #[test]
    fn bucket_order_matches_value_order() {
        let values = latencies(5, 300);
        for pair in values.windows(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            assert!(LatencyHistogram::bucket_of(a) <= LatencyHistogram::bucket_of(b));
        }
    }
}
