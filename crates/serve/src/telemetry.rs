//! Deterministic observability: request lifecycle traces, windowed
//! time-series and mergeable latency histograms.
//!
//! Every other serve metric is an end-of-run aggregate, which makes the
//! scenario library's dynamics invisible *in time* — a flash crowd's p99
//! spike, the backlog draining after a crash, a tenant being squeezed mid
//! run all blend into one number. This module adds the missing axis in
//! three deterministic layers:
//!
//! 1. **[`Trace`]** — the raw record. When a caller uses the `*_traced`
//!    entry points of [`crate::sim`], the event loop appends one
//!    [`TraceEvent`] per lifecycle step (arrival → admit/shed →
//!    dispatch/service start → completion, plus crash/scale/provisioning
//!    events) in simulation-time order. Tracing is opt-in: the untraced
//!    entry points skip every push, so the hot loop pays nothing.
//! 2. **[`LatencyHistogram`]** — mergeable percentile state. Latencies
//!    land in log-spaced buckets (the float's exponent plus the top
//!    [`SUB_BUCKET_BITS`] mantissa bits), so [`LatencyHistogram::merge`]
//!    is exact bucket-count addition and every reported percentile sits
//!    within [`RELATIVE_ERROR_BOUND`] of the exact-sort answer. This is
//!    the state a future parallel-in-time engine can merge across
//!    timeline fragments.
//! 3. **[`Timeline`]** — the windowed view. [`Timeline::build`] replays a
//!    trace into fixed-width windows sampling queue depth, in-flight
//!    count, shed rate, per-group utilisation and active shards,
//!    per-tenant throughput/SLO attainment and per-window p50/p99, and
//!    emits them as `neura_lab` records under the
//!    `neura_lab.timeline/v1` artifact schema.
//!
//! Everything here is a pure function of the trace, so timeline artifacts
//! inherit the simulation's byte-identity across `NEURA_LAB_THREADS`.

use neura_lab::RunRecord;

// The histogram grew up here; it now lives in the simulation kernel so the
// chip-level profiler (which `neura_serve` sits above) can share it. The
// re-export keeps every existing `neura_serve::LatencyHistogram` caller
// working unchanged.
pub use neura_sim::{LatencyHistogram, RELATIVE_ERROR_BOUND, SUB_BUCKET_BITS};

use crate::sim::ServeOutcome;

/// Why an arrival was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The backlog was at its [`crate::sim::ServeConfig::queue_bound`].
    QueueFull,
    /// The tenant's token bucket was empty.
    RateLimited,
}

/// One step of a request's (or the fleet's) lifecycle, stamped with its
/// simulation time. Events are appended in event-loop order, so a trace
/// is already sorted by `at_s`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the system.
    Arrival {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
    },
    /// The request passed admission into the backlog.
    Admit {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
    },
    /// The request was shed at admission.
    Shed {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
        /// What gate refused it.
        reason: ShedReason,
    },
    /// A dispatch unit left the backlog and started service on a shard
    /// (dispatch and service start coincide in this model).
    Dispatch {
        /// Simulation time in seconds.
        at_s: f64,
        /// Serving shard slot.
        shard: usize,
        /// The shard's group.
        group: usize,
        /// Requests in the unit.
        requests: usize,
        /// Service time the unit was charged.
        service_s: f64,
    },
    /// A request's batch finished; its latency is final.
    Complete {
        /// Simulation time in seconds.
        at_s: f64,
        /// Request id.
        id: usize,
        /// Owning tenant index.
        tenant: usize,
        /// Completion − arrival, in seconds.
        latency_s: f64,
    },
    /// An injected crash removed a shard; its in-flight batch returned to
    /// the queue head.
    Crash {
        /// Simulation time in seconds.
        at_s: f64,
        /// Crashed shard slot.
        shard: usize,
        /// The shard's group.
        group: usize,
        /// Requests returned to the queue for re-dispatch.
        redispatched: usize,
        /// Service seconds retracted from the interrupted batch.
        lost_service_s: f64,
    },
    /// An executed fleet-size change (the autoscaler's doing — crashes
    /// are [`TraceEvent::Crash`] events).
    Scale {
        /// Effect time in seconds.
        at_s: f64,
        /// Affected group.
        group: usize,
        /// +1 grow / −1 shrink.
        delta: i64,
        /// Fleet-wide active shards after the change.
        active_total: usize,
    },
    /// A scheduled scale-up that failed to provision.
    ProvisionFailure {
        /// Simulation time in seconds.
        at_s: f64,
        /// Affected group.
        group: usize,
    },
}

impl TraceEvent {
    /// The event's simulation time.
    pub fn at_s(&self) -> f64 {
        match *self {
            TraceEvent::Arrival { at_s, .. }
            | TraceEvent::Admit { at_s, .. }
            | TraceEvent::Shed { at_s, .. }
            | TraceEvent::Dispatch { at_s, .. }
            | TraceEvent::Complete { at_s, .. }
            | TraceEvent::Crash { at_s, .. }
            | TraceEvent::Scale { at_s, .. }
            | TraceEvent::ProvisionFailure { at_s, .. } => at_s,
        }
    }
}

/// Static shard-group context a trace carries so the timeline can follow
/// active-capacity changes without the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGroup {
    /// The group's name.
    pub name: String,
    /// Shards active at t = 0.
    pub initial_shards: usize,
}

/// Static tenant context a trace carries (empty without a tenant mix).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTenant {
    /// The tenant's name.
    pub name: String,
    /// The tenant's latency SLO, if declared.
    pub slo_s: Option<f64>,
}

/// The full lifecycle record of one traced replay: static fleet/tenant
/// context plus every [`TraceEvent`] in simulation-time order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Shard groups, in fleet order.
    pub groups: Vec<TraceGroup>,
    /// Tenants of the mix, in mix order (empty without one).
    pub tenants: Vec<TraceTenant>,
    /// Lifecycle events, sorted by time.
    pub events: Vec<TraceEvent>,
}

/// One shard group's slice of a window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupWindow {
    /// Service seconds the group's shards spent inside the window.
    pub busy_s: f64,
    /// Provisioned shard-seconds inside the window (the utilisation
    /// denominator).
    pub active_seconds: f64,
    /// Active shards at the window's end.
    pub active_end: usize,
}

/// One tenant's slice of a window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantWindow {
    /// Requests of the tenant completed inside the window.
    pub served: u64,
    /// Of those, completions within the tenant's SLO (equal to `served`
    /// when no SLO is declared).
    pub within_slo: u64,
}

/// Everything one fixed-width window of the timeline measured.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowStats {
    /// Window start time in seconds.
    pub start_s: f64,
    /// Requests that arrived inside the window.
    pub arrivals: u64,
    /// Of those, requests admitted into the backlog.
    pub admitted: u64,
    /// Of those, requests shed at admission.
    pub shed: u64,
    /// Shed because the backlog was at its bound.
    pub shed_queue: u64,
    /// Shed because the tenant's token bucket was empty.
    pub shed_limit: u64,
    /// Requests completed inside the window.
    pub served: u64,
    /// Scheduled scale-ups that failed to provision inside the window.
    pub provision_failures: u64,
    /// Backlog depth when the window closed.
    pub queue_depth_end: usize,
    /// Largest backlog depth observed inside the window.
    pub queue_depth_peak: usize,
    /// Admitted-but-uncompleted requests when the window closed.
    pub in_flight_end: usize,
    /// Latencies of the window's completions.
    pub histogram: LatencyHistogram,
    /// Per-group busy/active accounting, in fleet group order.
    pub groups: Vec<GroupWindow>,
    /// Per-tenant accounting, in mix order (empty without a mix).
    pub tenants: Vec<TenantWindow>,
}

impl WindowStats {
    /// Fraction of the window's arrivals shed (0 for an idle window).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals > 0 {
            self.shed as f64 / self.arrivals as f64
        } else {
            0.0
        }
    }
}

/// The windowed time-series view of one traced replay.
///
/// Built by [`Timeline::build`] from a [`Trace`] and its
/// [`ServeOutcome`]; every field is a pure function of the two, so two
/// builds of the same replay are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The fixed window width in seconds.
    pub window_s: f64,
    /// The windows, in time order (always at least one).
    pub windows: Vec<WindowStats>,
    /// Every window's histogram merged — the run-aggregate percentile
    /// state, built through [`LatencyHistogram::merge`].
    pub merged: LatencyHistogram,
    /// Shard-group names, in fleet order.
    pub group_names: Vec<String>,
    /// Tenant context, in mix order (empty without a mix).
    pub tenants: Vec<TraceTenant>,
    /// Per-crash recovery times copied from the outcome (crash to the
    /// first repairing scale-up's effect).
    pub recovery_times_s: Vec<f64>,
}

impl Timeline {
    /// Replays a trace into fixed-width windows.
    ///
    /// Windows tile `[0, makespan)`; events exactly at the makespan land
    /// in the final window. The pass is single and chronological: queue
    /// depth and in-flight counts integrate admit/dispatch/complete/crash
    /// deltas, per-group busy seconds come from dispatch intervals
    /// clipped to each window (crash retractions subtract the lost tail),
    /// and active shard-seconds integrate the scale/crash step function.
    ///
    /// # Panics
    ///
    /// Panics unless `window_s` is positive and finite.
    pub fn build(trace: &Trace, outcome: &ServeOutcome, window_s: f64) -> Self {
        assert!(window_s > 0.0 && window_s.is_finite(), "window width must be a positive time");
        let makespan = outcome.makespan_s;
        let count = ((makespan / window_s).ceil() as usize).max(1);
        let window_of = |t: f64| ((t / window_s) as usize).min(count - 1);
        let groups = trace.groups.len();
        let mut windows: Vec<WindowStats> = (0..count)
            .map(|w| WindowStats {
                start_s: w as f64 * window_s,
                groups: vec![GroupWindow::default(); groups],
                tenants: vec![TenantWindow::default(); trace.tenants.len()],
                ..WindowStats::default()
            })
            .collect();

        // Clips `[from, to)` against every window it overlaps and adds
        // `sign` times the overlap to that window's group busy time.
        let add_busy =
            |windows: &mut [WindowStats], group: usize, from: f64, to: f64, sign: f64| {
                if to <= from {
                    return;
                }
                let (first, last) = (window_of(from), window_of(to));
                for (w, window) in windows.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = w as f64 * window_s;
                    let hi = lo + window_s;
                    let overlap = (to.min(hi) - from.max(lo)).max(0.0);
                    window.groups[group].busy_s += sign * overlap;
                }
            };

        let mut active: Vec<usize> = trace.groups.iter().map(|g| g.initial_shards).collect();
        let mut active_from = 0.0f64;
        // Integrates the per-group active-shard step function over
        // `[active_from, to)` into the overlapped windows.
        let accrue_active = |windows: &mut [WindowStats], active: &[usize], from: f64, to: f64| {
            if to <= from {
                return;
            }
            let (first, last) = (window_of(from), window_of(to));
            for (w, window) in windows.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = w as f64 * window_s;
                let hi = lo + window_s;
                let overlap = (to.min(hi) - from.max(lo)).max(0.0);
                for (g, &n) in active.iter().enumerate() {
                    window.groups[g].active_seconds += n as f64 * overlap;
                }
            }
        };

        let mut depth = 0usize;
        let mut in_flight = 0usize;
        let mut cursor = 0usize;
        let close = |windows: &mut [WindowStats],
                     cursor: &mut usize,
                     upto: usize,
                     depth: usize,
                     in_flight: usize,
                     active: &[usize]| {
            while *cursor < upto {
                let window = &mut windows[*cursor];
                window.queue_depth_end = depth;
                window.in_flight_end = in_flight;
                for (g, &n) in active.iter().enumerate() {
                    window.groups[g].active_end = n;
                }
                *cursor += 1;
                if *cursor < windows.len() {
                    windows[*cursor].queue_depth_peak = depth;
                }
            }
        };

        for event in &trace.events {
            let w = window_of(event.at_s());
            close(&mut windows, &mut cursor, w, depth, in_flight, &active);
            let window = &mut windows[w];
            match *event {
                TraceEvent::Arrival { .. } => window.arrivals += 1,
                TraceEvent::Admit { .. } => {
                    window.admitted += 1;
                    depth += 1;
                    in_flight += 1;
                    window.queue_depth_peak = window.queue_depth_peak.max(depth);
                }
                TraceEvent::Shed { reason, .. } => {
                    window.shed += 1;
                    match reason {
                        ShedReason::QueueFull => window.shed_queue += 1,
                        ShedReason::RateLimited => window.shed_limit += 1,
                    }
                }
                TraceEvent::Dispatch { at_s, group, requests, service_s, .. } => {
                    depth -= requests;
                    add_busy(&mut windows, group, at_s, at_s + service_s, 1.0);
                }
                TraceEvent::Complete { at_s: _, tenant, latency_s, .. } => {
                    in_flight -= 1;
                    window.served += 1;
                    window.histogram.record(latency_s);
                    if let Some(slot) = window.tenants.get_mut(tenant) {
                        slot.served += 1;
                        let slo = trace.tenants[tenant].slo_s;
                        if slo.is_none_or(|slo| latency_s <= slo) {
                            slot.within_slo += 1;
                        }
                    }
                }
                TraceEvent::Crash { at_s, group, redispatched, lost_service_s, .. } => {
                    depth += redispatched;
                    windows[w].queue_depth_peak = windows[w].queue_depth_peak.max(depth);
                    add_busy(&mut windows, group, at_s, at_s + lost_service_s, -1.0);
                    accrue_active(&mut windows, &active, active_from, at_s);
                    active_from = at_s;
                    active[group] -= 1;
                }
                TraceEvent::Scale { at_s, group, delta, .. } => {
                    accrue_active(&mut windows, &active, active_from, at_s);
                    active_from = at_s;
                    active[group] = (active[group] as i64 + delta) as usize;
                }
                TraceEvent::ProvisionFailure { .. } => window.provision_failures += 1,
            }
        }
        accrue_active(&mut windows, &active, active_from, makespan);
        close(&mut windows, &mut cursor, count, depth, in_flight, &active);

        let mut merged = LatencyHistogram::new();
        for window in &windows {
            merged.merge(&window.histogram);
        }
        Timeline {
            window_s,
            windows,
            merged,
            group_names: trace.groups.iter().map(|g| g.name.clone()).collect(),
            tenants: trace.tenants.clone(),
            recovery_times_s: outcome.recovery_times_s(),
        }
    }

    /// The window with the largest p99 and that p99 in seconds
    /// (window 0 / 0.0 when nothing was served).
    pub fn worst_window_p99(&self) -> (usize, f64) {
        let mut worst = (0usize, 0.0f64);
        for (w, window) in self.windows.iter().enumerate() {
            if window.histogram.is_empty() {
                continue;
            }
            let p99 = window.histogram.percentile(99.0);
            if p99 > worst.1 {
                worst = (w, p99);
            }
        }
        worst
    }

    /// Mean recovery time over the repaired crashes (0 when none).
    pub fn mean_recovery_s(&self) -> f64 {
        if self.recovery_times_s.is_empty() {
            0.0
        } else {
            self.recovery_times_s.iter().sum::<f64>() / self.recovery_times_s.len() as f64
        }
    }

    /// The timeline's artifact records: one `{scope}/timeline` summary
    /// (window count/width, worst-window vs aggregate p99, recovery
    /// accounting) and one `{scope}/window/NNN` record per window
    /// (admission counters, queue depth, in-flight, windowed p50/p99,
    /// per-group utilisation and active shards, per-tenant throughput
    /// and SLO attainment). `params` is attached to every record.
    pub fn records(&self, scope: &str, params: &[(String, String)]) -> Vec<RunRecord> {
        let (worst_window, worst_p99) = self.worst_window_p99();
        let served: u64 = self.windows.iter().map(|w| w.served).sum();
        let arrivals: u64 = self.windows.iter().map(|w| w.arrivals).sum();
        let shed: u64 = self.windows.iter().map(|w| w.shed).sum();
        let aggregate = self.merged.percentiles(&[50.0, 99.0]);
        let mut summary = RunRecord::new(format!("{scope}/timeline"))
            .metric("windows", self.windows.len() as f64)
            .unit_metric("window_ms", self.window_s * 1e3, "ms")
            .metric("arrivals", arrivals as f64)
            .metric("served", served as f64)
            .metric("shed", shed as f64)
            .unit_metric("aggregate_p50_ms", aggregate[0] * 1e3, "ms")
            .unit_metric("aggregate_p99_ms", aggregate[1] * 1e3, "ms")
            .metric("worst_window", worst_window as f64)
            .unit_metric("worst_window_start_ms", self.windows[worst_window].start_s * 1e3, "ms")
            .unit_metric("worst_window_p99_ms", worst_p99 * 1e3, "ms")
            .metric("recoveries", self.recovery_times_s.len() as f64)
            .unit_metric("recovery_time_ms", self.mean_recovery_s() * 1e3, "ms")
            .metric("histogram_error_bound_pct", RELATIVE_ERROR_BOUND * 100.0);
        summary.params = params.to_vec();
        let mut records = vec![summary];
        for (w, window) in self.windows.iter().enumerate() {
            let tails = window.histogram.percentiles(&[50.0, 99.0]);
            let mut record = RunRecord::new(format!("{scope}/window/{w:03}"))
                .unit_metric("start_ms", window.start_s * 1e3, "ms")
                .metric("arrivals", window.arrivals as f64)
                .metric("admitted", window.admitted as f64)
                .metric("shed", window.shed as f64)
                .metric("shed_queue", window.shed_queue as f64)
                .metric("shed_limit", window.shed_limit as f64)
                .metric("shed_rate", window.shed_rate())
                .metric("served", window.served as f64)
                .unit_metric("throughput_rps", window.served as f64 / self.window_s, "req/s")
                .unit_metric("p50_ms", tails[0] * 1e3, "ms")
                .unit_metric("p99_ms", tails[1] * 1e3, "ms")
                .metric("queue_depth_end", window.queue_depth_end as f64)
                .metric("queue_depth_peak", window.queue_depth_peak as f64)
                .metric("in_flight_end", window.in_flight_end as f64)
                .metric("provision_failures", window.provision_failures as f64);
            for (g, group) in window.groups.iter().enumerate() {
                let name = &self.group_names[g];
                let util = if group.active_seconds > 0.0 {
                    group.busy_s / group.active_seconds
                } else {
                    0.0
                };
                record = record
                    .metric(format!("util_{name}"), util)
                    .metric(format!("active_{name}"), group.active_end as f64);
            }
            for (t, tenant) in window.tenants.iter().enumerate() {
                let spec = &self.tenants[t];
                record = record.unit_metric(
                    format!("rps_{}", spec.name),
                    tenant.served as f64 / self.window_s,
                    "req/s",
                );
                if spec.slo_s.is_some() {
                    let attainment = if tenant.served > 0 {
                        tenant.within_slo as f64 / tenant.served as f64
                    } else {
                        1.0
                    };
                    record = record.metric(format!("slo_{}", spec.name), attainment);
                }
            }
            record.params = params.to_vec();
            record.params.push(("window".to_string(), w.to_string()));
            records.push(record);
        }
        records
    }
}
