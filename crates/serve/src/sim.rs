//! The event-driven serving simulation and its metrics.
//!
//! [`simulate`] replays one scenario as an *event-source* loop. Requests
//! enter from a [`Workload`] — a pre-generated open-loop stream, a
//! rate-shaped multi-tenant stream, or a closed-loop client population
//! whose next arrival is only known once the previous response lands —
//! and pass through admission control into a central backlog: a bounded
//! queue sheds arrivals beyond its [`ServeConfig::queue_bound`], and a
//! tenant's token bucket sheds arrivals beyond its rate limit. The
//! scheduling [`Policy`] turns the backlog into dispatch units (single
//! requests for FIFO/SJF, per-class batches for the batching policy), a
//! class-aware [`DispatchPolicy`](crate::dispatch::DispatchPolicy) places
//! each unit on one idle shard of a (possibly heterogeneous, possibly
//! autoscaled) [`ShardFleet`], and the unit is charged the memoised
//! service time of that shard's silicon — stretched by the fault plan's
//! multiplier when the shard's group runs degraded. A [`FaultSpec`]
//! additionally injects seed-derived shard crashes (the victim's
//! in-flight batch returns to the queue head for re-dispatch) and
//! provisioning failures (a scheduled scale-up silently doesn't land).
//!
//! The loop advances through a deterministic event sequence — next
//! arrival, next batch completion, next batch timeout, next injected
//! crash, next provisioning effect, next autoscaler check — and each
//! event processes completions, then arrivals and admission, then
//! crashes, then provisioning, then the autoscaler, in that fixed order.
//! The outcome is therefore a pure function of
//! `(workload, policy, fleet, dispatch, autoscale, faults, costs)`;
//! nothing about wall-clock time or thread scheduling can leak into the
//! metrics. Every request is accounted for exactly once: served (finite
//! non-negative latency), shed (the [`SHED_LATENCY_S`] sentinel), or
//! crashed-and-redispatched until served.

use std::collections::{BTreeMap, VecDeque};

use neura_lab::RunRecord;

use crate::arrivals::{ClosedLoopClients, Request, Workload};
use crate::autoscale::{AutoscalePolicy, Decision, ScaleEvent};
use crate::cost::{CostTable, RequestClass};
use crate::dispatch::DispatchKind;
use crate::fault::{CrashEvent, FaultPlan, FaultSpec};
use crate::fleet::{GroupStats, ShardFleet, ShardGroup, ShardStats};
use crate::policy::Policy;
use crate::scenario::{TenantMix, TENANT_BURST_S};
use crate::telemetry::{ShedReason, Trace, TraceEvent, TraceGroup, TraceTenant};

/// The latency sentinel a shed request carries in
/// [`ServeOutcome::latencies_s`]. Deliberately a *finite* negative value —
/// not NaN — so outcomes stay `PartialEq`-comparable and the determinism
/// suite can keep asserting byte-for-byte equality. Served-only metrics
/// filter on `latency >= 0.0`.
pub const SHED_LATENCY_S: f64 = -1.0;

/// Nearest-rank percentiles in seconds over served latencies — the one
/// percentile implementation every outcome metric goes through. Shed
/// requests are excluded by matching the [`SHED_LATENCY_S`] sentinel
/// exactly, *not* by a silent `>= 0` range filter: any other negative
/// (or non-finite) latency is a simulation bug, so it trips the debug
/// assertion here and the sort's finiteness check in release builds
/// instead of quietly vanishing from the tail. Returns 0 for every
/// percentile when nothing was served.
///
/// # Panics
///
/// Panics unless every percentile is within `(0, 100]`.
fn served_percentiles(latencies: impl Iterator<Item = f64>, pcts: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = latencies
        .filter(|&l| {
            debug_assert!(
                l >= 0.0 || l == SHED_LATENCY_S,
                "latency {l} is neither served nor the shed sentinel"
            );
            l != SHED_LATENCY_S
        })
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    pcts.iter()
        .map(|&pct| {
            assert!(pct > 0.0 && pct <= 100.0, "percentile must be within (0, 100]");
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        })
        .collect()
}

/// Per-tenant admission accounting (populated only when a tenant mix is
/// configured).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's name, as declared in the mix.
    pub name: String,
    /// The tenant's latency SLO, if declared (reported, never enforced).
    pub slo_s: Option<f64>,
    /// Requests the tenant offered (admitted or shed).
    pub offered: u64,
    /// Requests shed at admission (queue bound or rate limit).
    pub shed: u64,
}

/// Everything one scenario replay measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival) in seconds, id-ordered;
    /// shed requests carry [`SHED_LATENCY_S`].
    pub latencies_s: Vec<f64>,
    /// Per-request arrival time in seconds, id-ordered (so completion
    /// times — and with them in-flight counts — are reconstructable).
    pub arrivals_s: Vec<f64>,
    /// Per-request tenant index, id-ordered (all 0 without a mix).
    pub tenants: Vec<usize>,
    /// Ids of shed requests, ascending.
    pub shed: Vec<usize>,
    /// Requests shed because the backlog was at its bound.
    pub shed_queue: u64,
    /// Requests shed because their tenant's token bucket was empty.
    pub shed_limit: u64,
    /// Per-tenant admission accounting (empty without a tenant mix).
    pub tenant_outcomes: Vec<TenantOutcome>,
    /// Every injected shard crash, in time order.
    pub crash_events: Vec<CrashEvent>,
    /// Scheduled scale-ups that failed to provision.
    pub provision_failures: u64,
    /// Time of the last batch completion (0 for an empty stream).
    pub makespan_s: f64,
    /// Time-weighted mean backlog depth over the makespan.
    pub queue_depth_mean: f64,
    /// Largest backlog depth observed at any event.
    pub queue_depth_max: usize,
    /// Size of every completed batch, in completion order.
    pub batch_sizes: Vec<usize>,
    /// Per-shard-slot counters.
    pub shard_stats: Vec<ShardStats>,
    /// The group each shard slot belongs to.
    pub shard_groups: Vec<usize>,
    /// Per-group aggregates (busy time, served counts, provisioned
    /// shard-seconds, peak active shards).
    pub group_stats: Vec<GroupStats>,
    /// Every executed fleet-size change, in effect order. Crashes are
    /// *not* scale events — they appear in [`Self::crash_events`].
    pub scale_events: Vec<ScaleEvent>,
}

impl ServeOutcome {
    /// Number of requests offered (served + shed).
    pub fn offered(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Number of requests served to completion.
    pub fn requests(&self) -> usize {
        self.latencies_s.iter().filter(|&&l| l >= 0.0).count()
    }

    /// Fraction of offered requests shed at admission (0 for an empty
    /// stream).
    pub fn shed_rate(&self) -> f64 {
        if self.offered() > 0 {
            self.shed.len() as f64 / self.offered() as f64
        } else {
            0.0
        }
    }

    /// Requests that were in flight on crashing shards and re-dispatched.
    pub fn redispatched(&self) -> usize {
        self.crash_events.iter().map(|c| c.redispatched).sum()
    }

    /// Per-crash recovery time: from the crash to the effect of the first
    /// scale-up the autoscaler decided *after* it in the crashed group
    /// (crashes the autoscaler never repaired are absent). Each entry is
    /// at least the provisioning delay by construction.
    pub fn recovery_times_s(&self) -> Vec<f64> {
        self.crash_events
            .iter()
            .filter_map(|c| {
                self.scale_events
                    .iter()
                    .find(|e| e.group == c.group && e.delta > 0 && e.decision_s >= c.at_s)
                    .map(|e| e.effect_s - c.at_s)
            })
            .collect()
    }

    /// Mean recovery time over the repaired crashes (0 when none).
    pub fn mean_recovery_s(&self) -> f64 {
        let times = self.recovery_times_s();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }

    /// Latency percentile in seconds over *served* requests
    /// (nearest-rank; 0 when nothing was served).
    ///
    /// Sorts the latency vector per call — when reading several
    /// percentiles, use [`Self::latency_percentiles_s`] to sort once.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct ≤ 100`.
    pub fn latency_percentile_s(&self, pct: f64) -> f64 {
        self.latency_percentiles_s(&[pct])[0]
    }

    /// Several served-latency percentiles in seconds from a single sort
    /// (nearest-rank; 0 when nothing was served).
    ///
    /// # Panics
    ///
    /// Panics unless every percentile is within `(0, 100]`.
    pub fn latency_percentiles_s(&self, pcts: &[f64]) -> Vec<f64> {
        served_percentiles(self.latencies_s.iter().copied(), pcts)
    }

    /// Latencies that are neither served (`>= 0`) nor the shed sentinel —
    /// always 0 for a correct simulation. Exposed so suites can assert the
    /// invariant directly instead of having broken values silently
    /// filtered out of the percentiles.
    pub fn invalid_latencies(&self) -> usize {
        self.latencies_s.iter().filter(|&&l| !(l >= 0.0 || l == SHED_LATENCY_S)).count()
    }

    /// Mean served latency in seconds (0 when nothing was served).
    pub fn mean_latency_s(&self) -> f64 {
        let served = self.requests();
        if served == 0 {
            0.0
        } else {
            self.latencies_s.iter().filter(|&&l| l >= 0.0).sum::<f64>() / served as f64
        }
    }

    /// Sustained throughput: requests served per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.requests() as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// Mean completed batch size (0 when nothing was dispatched).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }

    /// Largest completed batch.
    pub fn max_batch_size(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Per-shard-slot utilisation: busy seconds over the makespan.
    pub fn utilisations(&self) -> Vec<f64> {
        self.shard_stats
            .iter()
            .map(|s| if self.makespan_s > 0.0 { s.busy_s / self.makespan_s } else { 0.0 })
            .collect()
    }

    /// Total provisioned shard-seconds across all groups — the scenario's
    /// capacity cost, reported next to the latency it bought.
    pub fn shard_seconds(&self) -> f64 {
        self.group_stats.iter().map(|g| g.shard_seconds).sum()
    }

    /// Mean provisioned shard count over the makespan.
    pub fn mean_active_shards(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.shard_seconds() / self.makespan_s
        } else {
            0.0
        }
    }

    /// The largest number of *served* requests simultaneously in flight
    /// (arrived but not yet completed; shed requests never occupy the
    /// system) — the quantity a closed loop bounds by its client count.
    pub fn max_in_flight(&self) -> usize {
        // +1 at each arrival, −1 at each completion; completions at the
        // same instant as an arrival are processed first (a closed-loop
        // client's next request can only follow its response).
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * self.latencies_s.len());
        for (&arrival, &latency) in self.arrivals_s.iter().zip(&self.latencies_s) {
            if latency < 0.0 {
                continue;
            }
            events.push((arrival, 1));
            events.push((arrival + latency, -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("event times are finite").then(a.1.cmp(&b.1))
        });
        let (mut in_flight, mut peak) = (0i64, 0i64);
        for (_, delta) in events {
            in_flight += delta;
            peak = peak.max(in_flight);
        }
        peak as usize
    }

    /// The artifact records describing this outcome: one scenario summary
    /// (tail latencies, throughput, shed/crash/recovery accounting, queue
    /// depth, batching, shard-seconds cost), one record per tenant of the
    /// mix (admission and SLO attainment), one per shard group
    /// (utilisation of the provisioned capacity, served counts, peak
    /// active shards) and one per shard slot (utilisation, busy time,
    /// served counts). `scope` prefixes every record ID and `params` is
    /// attached to each record.
    pub fn records(&self, scope: &str, params: &[(String, String)]) -> Vec<RunRecord> {
        let tails = self.latency_percentiles_s(&[50.0, 95.0, 99.0]);
        let mut summary = RunRecord::new(format!("{scope}/summary"))
            .metric("requests", self.requests() as f64)
            .metric("offered", self.offered() as f64)
            .metric("shed", self.shed.len() as f64)
            .metric("shed_rate", self.shed_rate())
            .metric("shed_queue", self.shed_queue as f64)
            .metric("shed_limit", self.shed_limit as f64)
            .metric("crashes", self.crash_events.len() as f64)
            .metric("redispatched", self.redispatched() as f64)
            .metric("provision_failures", self.provision_failures as f64)
            .metric("recoveries", self.recovery_times_s().len() as f64)
            .unit_metric("recovery_time_ms", self.mean_recovery_s() * 1e3, "ms")
            .unit_metric("p50_latency_ms", tails[0] * 1e3, "ms")
            .unit_metric("p95_latency_ms", tails[1] * 1e3, "ms")
            .unit_metric("p99_latency_ms", tails[2] * 1e3, "ms")
            .unit_metric("mean_latency_ms", self.mean_latency_s() * 1e3, "ms")
            .unit_metric("throughput_rps", self.throughput_rps(), "req/s")
            .unit_metric("makespan_s", self.makespan_s, "s")
            .metric("queue_depth_mean", self.queue_depth_mean)
            .metric("queue_depth_max", self.queue_depth_max as f64)
            .metric("batches", self.batch_sizes.len() as f64)
            .metric("mean_batch_size", self.mean_batch_size())
            .metric("max_batch_size", self.max_batch_size() as f64)
            .unit_metric("shard_seconds", self.shard_seconds(), "shard*s")
            .metric("mean_active_shards", self.mean_active_shards())
            .metric("max_in_flight", self.max_in_flight() as f64)
            .metric("scale_events", self.scale_events.len() as f64);
        summary.params = params.to_vec();
        let mut records = vec![summary];
        for (t, tenant) in self.tenant_outcomes.iter().enumerate() {
            let served: Vec<f64> = self
                .tenants
                .iter()
                .zip(&self.latencies_s)
                .filter(|&(&owner, &l)| owner == t && l != SHED_LATENCY_S)
                .map(|(_, &l)| l)
                .collect();
            let p99 = served_percentiles(served.iter().copied(), &[99.0])[0];
            let admitted = tenant.offered - tenant.shed;
            let shed_rate =
                if tenant.offered > 0 { tenant.shed as f64 / tenant.offered as f64 } else { 0.0 };
            let mut record = RunRecord::new(format!("{scope}/tenant/{}", tenant.name))
                .metric("offered", tenant.offered as f64)
                .metric("admitted", admitted as f64)
                .metric("shed", tenant.shed as f64)
                .metric("shed_rate", shed_rate)
                .unit_metric("p99_latency_ms", p99 * 1e3, "ms");
            if let Some(slo) = tenant.slo_s {
                let within = served.iter().filter(|&&l| l <= slo).count();
                let attainment =
                    if served.is_empty() { 1.0 } else { within as f64 / served.len() as f64 };
                record = record.metric("slo_attainment", attainment);
            }
            record.params = params.to_vec();
            record.params.push(("tenant".to_string(), tenant.name.clone()));
            records.push(record);
        }
        for (g, group) in self.group_stats.iter().enumerate() {
            let utilisation =
                if group.shard_seconds > 0.0 { group.busy_s / group.shard_seconds } else { 0.0 };
            let mut record = RunRecord::new(format!("{scope}/group/{}", group.name))
                .metric("utilization", utilisation)
                .unit_metric("busy_s", group.busy_s, "s")
                .unit_metric("shard_seconds", group.shard_seconds, "shard*s")
                .metric("batches", group.batches as f64)
                .metric("requests", group.requests as f64)
                .metric("peak_active_shards", group.peak_active as f64)
                .metric("capacity", group.capacity as f64);
            record.params = params.to_vec();
            record.params.push(("group".to_string(), g.to_string()));
            records.push(record);
        }
        for (i, (stats, utilisation)) in
            self.shard_stats.iter().zip(self.utilisations()).enumerate()
        {
            let mut record = RunRecord::new(format!("{scope}/shard{i}"))
                .metric("utilization", utilisation)
                .unit_metric("busy_s", stats.busy_s, "s")
                .metric("batches", stats.batches as f64)
                .metric("requests", stats.requests as f64);
            record.params = params.to_vec();
            record.params.push(("shard".to_string(), i.to_string()));
            record.params.push(("group".to_string(), self.shard_groups[i].to_string()));
            records.push(record);
        }
        records
    }
}

/// The central backlog, shaped by the policy.
enum Backlog {
    /// FIFO / SJF: one queue in arrival order.
    Single(VecDeque<usize>),
    /// Batching: one arrival-ordered queue per request class.
    Classed(BTreeMap<RequestClass, VecDeque<usize>>),
}

impl Backlog {
    fn new(policy: Policy) -> Self {
        match policy {
            Policy::Fifo | Policy::Sjf => Backlog::Single(VecDeque::new()),
            Policy::BatchByDataset { .. } => Backlog::Classed(BTreeMap::new()),
        }
    }

    fn push(&mut self, id: usize, class: RequestClass) {
        match self {
            Backlog::Single(queue) => queue.push_back(id),
            Backlog::Classed(queues) => queues.entry(class).or_default().push_back(id),
        }
    }

    /// Returns a unit taken by [`Self::take_ready`] to the head of its
    /// queue, preserving order — used when the dispatch policy holds the
    /// unit for busy preferred silicon, and when a crash returns a
    /// victim's in-flight batch for re-dispatch.
    fn push_front(&mut self, unit: &[usize], class: RequestClass) {
        match self {
            Backlog::Single(queue) => {
                for &id in unit.iter().rev() {
                    queue.push_front(id);
                }
            }
            Backlog::Classed(queues) => {
                let queue = queues.entry(class).or_default();
                for &id in unit.iter().rev() {
                    queue.push_front(id);
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Backlog::Single(queue) => queue.len(),
            Backlog::Classed(queues) => queues.values().map(VecDeque::len).sum(),
        }
    }

    /// The earliest future time at which a currently-unready unit becomes
    /// ready by timeout (batching policy only).
    fn next_deadline(&self, now: f64, policy: Policy, requests: &[Request]) -> Option<f64> {
        let (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) =
            (self, policy)
        else {
            return None;
        };
        queues
            .values()
            .filter(|q| !class_ready(q, requests, max_batch, timeout_s, now))
            .filter_map(|q| q.front().map(|&id| requests[id].arrival_s + timeout_s))
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
    }

    /// Removes and returns the next ready dispatch unit at `now`, if any.
    fn take_ready(
        &mut self,
        now: f64,
        policy: Policy,
        requests: &[Request],
        costs: &CostTable,
    ) -> Option<Vec<usize>> {
        match (self, policy) {
            (Backlog::Single(queue), Policy::Fifo) => queue.pop_front().map(|id| vec![id]),
            (Backlog::Single(queue), Policy::Sjf) => {
                // Smallest estimated work first; arrival order (the queue
                // order) breaks ties because `min_by_key` keeps the first
                // minimum.
                let pos = queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &id)| (costs.weight(requests[id].class), id))
                    .map(|(pos, _)| pos)?;
                queue.remove(pos).map(|id| vec![id])
            }
            (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) => {
                // Among ready classes, serve the one whose head request has
                // waited longest (ties broken by class order — the BTreeMap
                // key order — so selection is deterministic).
                let class = queues
                    .iter()
                    .filter(|(_, q)| class_ready(q, requests, max_batch, timeout_s, now))
                    .min_by(|(ca, qa), (cb, qb)| {
                        let (ha, hb) = (head_arrival(qa, requests), head_arrival(qb, requests));
                        ha.partial_cmp(&hb).expect("arrival times are finite").then(ca.cmp(cb))
                    })
                    .map(|(class, _)| *class)?;
                let queue = queues.get_mut(&class).expect("selected class is present");
                let take = queue.len().min(max_batch);
                let batch: Vec<usize> = queue.drain(..take).collect();
                if queue.is_empty() {
                    queues.remove(&class);
                }
                Some(batch)
            }
            _ => unreachable!("backlog shape always matches the policy"),
        }
    }
}

fn head_arrival(queue: &VecDeque<usize>, requests: &[Request]) -> f64 {
    queue.front().map(|&id| requests[id].arrival_s).unwrap_or(f64::INFINITY)
}

fn class_ready(
    queue: &VecDeque<usize>,
    requests: &[Request],
    max_batch: usize,
    timeout_s: f64,
    now: f64,
) -> bool {
    queue.len() >= max_batch || head_arrival(queue, requests) + timeout_s <= now
}

/// Where the next request comes from: a pre-materialised open-loop stream
/// or a closed-loop client population driven by completions.
enum Source<'a> {
    Open { stream: &'a [Request], cursor: usize },
    Closed { clients: ClosedLoopClients, pending: Vec<(f64, usize)>, owners: Vec<usize> },
}

impl Source<'_> {
    /// The next arrival time, if any request is still due.
    fn next_time(&self) -> Option<f64> {
        match self {
            Source::Open { stream, cursor } => stream.get(*cursor).map(|r| r.arrival_s),
            Source::Closed { pending, .. } => pending
                .iter()
                .map(|&(t, _)| t)
                .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t)))),
        }
    }

    /// Moves every request due at or before `now` into `arrived`.
    fn pop_due(&mut self, now: f64, arrived: &mut Vec<Request>) {
        match self {
            Source::Open { stream, cursor } => {
                while let Some(request) = stream.get(*cursor) {
                    if request.arrival_s > now {
                        break;
                    }
                    debug_assert_eq!(request.id, arrived.len(), "open streams arrive in id order");
                    arrived.push(*request);
                    *cursor += 1;
                }
            }
            Source::Closed { clients, pending, owners } => {
                // Issue due clients in (time, client) order so ids are
                // deterministic even when issue times tie.
                loop {
                    let due = pending
                        .iter()
                        .enumerate()
                        .filter(|&(_, &(t, _))| t <= now)
                        .min_by(|(_, a), (_, b)| {
                            a.0.partial_cmp(&b.0)
                                .expect("issue times are finite")
                                .then(a.1.cmp(&b.1))
                        })
                        .map(|(pos, _)| pos);
                    let Some(pos) = due else { break };
                    let (at, client) = pending.swap_remove(pos);
                    let class = clients.draw_class(client);
                    arrived.push(Request { id: arrived.len(), arrival_s: at, class, tenant: 0 });
                    owners.push(client);
                }
            }
        }
    }

    /// Tells the source a request completed (closed loops schedule the
    /// owning client's next request; open streams don't care).
    fn on_complete(&mut self, id: usize, finish: f64) {
        if let Source::Closed { clients, pending, owners } = self {
            let client = owners[id];
            if let Some(at) = clients.next_issue_at(client, finish) {
                pending.push((at, client));
            }
        }
    }
}

/// A scheduled fleet-size change waiting for its provisioning delay.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingOp {
    effect_s: f64,
    decision_s: f64,
    group: usize,
    delta: i64,
}

/// One tenant's admission token bucket: `rate` tokens per second up to a
/// `burst` ceiling of [`TENANT_BURST_S`] seconds' worth (at least 1);
/// admitting a request costs one token. Starts full, so a tenant may
/// admit at most `burst + rate × t` requests by time `t`.
#[derive(Debug, Clone, Copy)]
struct TenantGate {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl TenantGate {
    fn new(rate: f64) -> Self {
        let burst = (rate * TENANT_BURST_S).max(1.0);
        TenantGate { rate, burst, tokens: burst, last_s: 0.0 }
    }

    fn admit(&mut self, now: f64) -> bool {
        self.tokens = (self.tokens + (now - self.last_s) * self.rate).min(self.burst);
        self.last_s = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One scenario's full serving configuration: the scheduling policy,
/// fleet, dispatch and cost model every replay needs, plus the optional
/// production knobs — autoscaling, a bounded queue that sheds, a tenant
/// mix with rate limits, and a fault regime.
///
/// Admission control (queue bound and tenant limits) applies to open-loop
/// arrivals only: a closed-loop population self-limits by construction —
/// its clients wait rather than having requests dropped.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig<'a> {
    /// The scheduling policy.
    pub policy: Policy,
    /// The fleet's shard groups.
    pub groups: &'a [ShardGroup],
    /// The dispatch policy choosing a shard per unit.
    pub dispatch: DispatchKind,
    /// The autoscaler, if the fleet is elastic.
    pub autoscale: Option<&'a AutoscalePolicy>,
    /// The calibrated service-time table.
    pub costs: &'a CostTable,
    /// Backlog bound: arrivals beyond it are shed (`None` = unbounded).
    pub queue_bound: Option<usize>,
    /// Tenant mix for admission control and per-tenant accounting
    /// (`None` = the workload's own mix, or a single implicit tenant).
    pub tenants: Option<&'a TenantMix>,
    /// Fault regime to inject (`None` = a healthy fleet).
    pub faults: Option<&'a FaultSpec>,
}

impl<'a> ServeConfig<'a> {
    /// A plain configuration: fixed fleet, unbounded queue, single
    /// tenant, no faults.
    pub fn new(
        policy: Policy,
        groups: &'a [ShardGroup],
        dispatch: DispatchKind,
        costs: &'a CostTable,
    ) -> Self {
        ServeConfig {
            policy,
            groups,
            dispatch,
            autoscale: None,
            costs,
            queue_bound: None,
            tenants: None,
            faults: None,
        }
    }

    /// Runs the fleet under an autoscaler (builder style).
    pub fn with_autoscale(mut self, policy: &'a AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Bounds the backlog; arrivals beyond the bound shed (builder style).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound);
        self
    }

    /// Applies a tenant mix's rate limits and accounting (builder style).
    pub fn with_tenants(mut self, tenants: &'a TenantMix) -> Self {
        self.tenants = Some(tenants);
        self
    }

    /// Injects a fault regime (builder style).
    pub fn with_faults(mut self, faults: &'a FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Replays one serving scenario and returns its metrics.
///
/// The fleet is described by `groups` (one entry per shard group, each with
/// its own configuration); every group's fingerprint must be registered in
/// `costs` with every class of the workload measured under it. With
/// `autoscale` set, each group's initial shard count must lie within the
/// policy's `[min, max]` bounds and the fleet pre-allocates `max` slots per
/// group.
///
/// This is the plain-configuration entry point; [`simulate_config`] takes
/// the full [`ServeConfig`] with admission control and fault injection.
///
/// # Panics
///
/// Panics when an open-loop stream is unsorted, a (fingerprint, class) pair
/// is missing from the cost table, the fleet is empty, or an autoscaled
/// group starts outside the policy bounds.
pub fn simulate(
    workload: &Workload,
    policy: Policy,
    groups: &[ShardGroup],
    dispatch: DispatchKind,
    autoscale: Option<&AutoscalePolicy>,
    costs: &CostTable,
) -> ServeOutcome {
    let mut cfg = ServeConfig::new(policy, groups, dispatch, costs);
    cfg.autoscale = autoscale;
    simulate_config(workload, &cfg)
}

/// [`simulate`] over an explicit, pre-generated open-loop stream (as
/// [`StreamSpec::generate`] produces it: sorted by arrival time, ids in
/// arrival order).
///
/// [`StreamSpec::generate`]: crate::arrivals::StreamSpec::generate
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream(
    requests: &[Request],
    policy: Policy,
    groups: &[ShardGroup],
    dispatch: DispatchKind,
    autoscale: Option<&AutoscalePolicy>,
    costs: &CostTable,
) -> ServeOutcome {
    let mut cfg = ServeConfig::new(policy, groups, dispatch, costs);
    cfg.autoscale = autoscale;
    simulate_stream_config(requests, &cfg)
}

/// Replays one workload under a full [`ServeConfig`].
///
/// For a [`Workload::Shaped`] stream, an explicit `cfg.tenants` wins over
/// the stream's own mix; without either, every request is tenant 0.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_config(workload: &Workload, cfg: &ServeConfig<'_>) -> ServeOutcome {
    match workload {
        Workload::Open(spec) => {
            let stream = spec.generate();
            simulate_stream_config(&stream, cfg)
        }
        Workload::Shaped(shaped) => {
            let stream = shaped.generate();
            let tenants = cfg.tenants.or(shaped.tenants.as_ref());
            run(Source::Open { stream: &stream, cursor: 0 }, cfg, tenants, None)
        }
        Workload::Closed(spec) => {
            let (clients, pending) = spec.clients();
            let source = Source::Closed { clients, pending, owners: Vec::new() };
            run(source, cfg, cfg.tenants, None)
        }
    }
}

/// [`simulate_config`] that additionally records the full request
/// lifecycle as a [`Trace`] for the telemetry layer (windowed
/// [`Timeline`](crate::telemetry::Timeline) views, timeline artifacts).
///
/// The outcome is identical to the untraced replay — tracing only
/// appends events, it never influences a decision — and the untraced
/// entry points skip every trace push, so replays without a trace pay
/// nothing for this hook existing.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_config_traced(workload: &Workload, cfg: &ServeConfig<'_>) -> (ServeOutcome, Trace) {
    let mut trace = Trace::default();
    let outcome = match workload {
        Workload::Open(spec) => {
            let stream = spec.generate();
            run(Source::Open { stream: &stream, cursor: 0 }, cfg, cfg.tenants, Some(&mut trace))
        }
        Workload::Shaped(shaped) => {
            let stream = shaped.generate();
            let tenants = cfg.tenants.or(shaped.tenants.as_ref());
            run(Source::Open { stream: &stream, cursor: 0 }, cfg, tenants, Some(&mut trace))
        }
        Workload::Closed(spec) => {
            let (clients, pending) = spec.clients();
            let source = Source::Closed { clients, pending, owners: Vec::new() };
            run(source, cfg, cfg.tenants, Some(&mut trace))
        }
    };
    (outcome, trace)
}

/// [`simulate_config`] over an explicit, pre-generated open-loop stream.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream_config(requests: &[Request], cfg: &ServeConfig<'_>) -> ServeOutcome {
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "request streams must be sorted by arrival time"
    );
    run(Source::Open { stream: requests, cursor: 0 }, cfg, cfg.tenants, None)
}

/// [`simulate_stream_config`] that additionally records the lifecycle
/// [`Trace`] (see [`simulate_config_traced`]).
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream_config_traced(
    requests: &[Request],
    cfg: &ServeConfig<'_>,
) -> (ServeOutcome, Trace) {
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "request streams must be sorted by arrival time"
    );
    let mut trace = Trace::default();
    let outcome =
        run(Source::Open { stream: requests, cursor: 0 }, cfg, cfg.tenants, Some(&mut trace));
    (outcome, trace)
}

/// The shared event loop behind every workload shape.
///
/// With `trace` set, every lifecycle step additionally appends a
/// [`TraceEvent`] (in event order, so the trace is time-sorted); with
/// `None`, every hook is a skipped `if let` and the loop's behaviour and
/// cost are exactly the untraced ones.
fn run(
    mut source: Source<'_>,
    cfg: &ServeConfig<'_>,
    tenants: Option<&TenantMix>,
    mut trace: Option<&mut Trace>,
) -> ServeOutcome {
    let policy = cfg.policy;
    let costs = cfg.costs;
    if let Some(trace) = trace.as_deref_mut() {
        trace.groups = cfg
            .groups
            .iter()
            .map(|g| TraceGroup { name: g.name.clone(), initial_shards: g.shards })
            .collect();
        trace.tenants = tenants.map_or_else(Vec::new, |mix| {
            mix.tenants()
                .iter()
                .map(|t| TraceTenant { name: t.name.clone(), slo_s: t.slo_s })
                .collect()
        });
    }
    let capacities: Option<Vec<usize>> = cfg.autoscale.map(|p| {
        cfg.groups
            .iter()
            .map(|g| {
                assert!(
                    (p.min_shards..=p.max_shards).contains(&g.shards),
                    "autoscaled group {:?} starts with {} shards, outside [{}, {}]",
                    g.name,
                    g.shards,
                    p.min_shards,
                    p.max_shards
                );
                p.max_shards
            })
            .collect()
    });
    let mut fleet = ShardFleet::new(cfg.groups, capacities.as_deref());
    let mut plan: Option<FaultPlan> = cfg.faults.map(|f| f.plan(fleet.group_count()));
    let dispatcher = cfg.dispatch.policy();
    let mut backlog = Backlog::new(policy);
    // Admission control sheds open-loop arrivals only: closed-loop clients
    // self-limit (they wait for their response instead of being dropped),
    // and shedding their zero-think re-issues would spin the clock.
    let admission = matches!(source, Source::Open { .. });
    let mut gates: Vec<Option<TenantGate>> = tenants.map_or_else(Vec::new, |mix| {
        mix.tenants().iter().map(|t| t.rate_limit_rps.map(TenantGate::new)).collect()
    });
    let mut tenant_offered = vec![0u64; gates.len()];
    let mut tenant_shed = vec![0u64; gates.len()];
    let mut arrived: Vec<Request> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed_ids: Vec<usize> = Vec::new();
    let (mut shed_queue, mut shed_limit) = (0u64, 0u64);
    let mut in_flight: Vec<Option<Vec<usize>>> = vec![None; fleet.capacity()];
    let mut batch_sizes = Vec::new();
    let mut crash_events: Vec<CrashEvent> = Vec::new();
    let mut provision_failures = 0u64;
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut pending_ops: Vec<PendingOp> = Vec::new();
    let mut next_check = cfg.autoscale.map(|p| p.check_interval_s);
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut depth_integral = 0.0f64;
    let mut depth_max = 0usize;

    loop {
        // Dispatch every unit that is ready while an idle shard exists; the
        // dispatch policy picks *which* idle shard serves each unit, or
        // holds it (returning the unit to the queue head) to wait for busy
        // preferred silicon — in which case the next release is the event
        // that re-offers it. Latencies finalise at *completion*, not here:
        // a crash may still retract the batch.
        loop {
            let idle = fleet.idle_shards(now);
            if idle.is_empty() {
                break;
            }
            let Some(batch) = backlog.take_ready(now, policy, &arrived, costs) else {
                break;
            };
            let class = arrived[batch[0]].class;
            let Some(shard) = dispatcher.choose(&fleet, &idle, class, batch.len(), now, costs)
            else {
                debug_assert!(
                    fleet.next_busy_free_at(now).is_finite(),
                    "a policy may only hold a batch while some shard is busy"
                );
                backlog.push_front(&batch, class);
                break;
            };
            let healthy = costs.service_seconds(fleet.shard_fingerprint(shard), class, batch.len());
            let degraded = plan.as_ref().map_or(1.0, |p| p.multiplier(fleet.group_of(shard)));
            let service_s = healthy * degraded;
            fleet.dispatch(shard, now, service_s, batch.len() as u64);
            if let Some(trace) = trace.as_deref_mut() {
                trace.events.push(TraceEvent::Dispatch {
                    at_s: now,
                    shard,
                    group: fleet.group_of(shard),
                    requests: batch.len(),
                    service_s,
                });
            }
            in_flight[shard] = Some(batch);
        }

        // The next event: an arrival, a batch completing, a batch timeout
        // expiring, an injected crash, a scheduled fleet change taking
        // effect, or an autoscaler check (crashes and checks only while
        // work remains — otherwise they could tick forever). After the
        // dispatch loop each of these lies in the future, and every
        // finite-time source below is consumed when due, so the loop
        // always makes progress.
        let work_remains = source.next_time().is_some()
            || backlog.len() > 0
            || !pending_ops.is_empty()
            || in_flight.iter().any(Option::is_some);
        let mut t_next = f64::INFINITY;
        if let Some(t) = source.next_time() {
            t_next = t_next.min(t);
        }
        for (slot, batch) in in_flight.iter().enumerate() {
            if batch.is_some() {
                t_next = t_next.min(fleet.busy_until(slot));
            }
        }
        if let Some(deadline) = backlog.next_deadline(now, policy, &arrived) {
            t_next = t_next.min(deadline);
        }
        for op in &pending_ops {
            t_next = t_next.min(op.effect_s);
        }
        if work_remains {
            if let Some(at) = plan.as_ref().and_then(FaultPlan::next_crash_at) {
                t_next = t_next.min(at);
            }
            if let Some(check) = next_check {
                t_next = t_next.min(check);
            }
        }
        if !t_next.is_finite() {
            break;
        }
        fleet.accrue(t_next - now);
        depth_integral += backlog.len() as f64 * (t_next - now);
        now = t_next;

        // 1. Completions due at `now` finalise, in slot order: the batch
        //    really finished, so its latencies are now facts no crash can
        //    retract.
        for (slot, entry) in in_flight.iter_mut().enumerate() {
            if entry.is_some() && fleet.busy_until(slot) <= now {
                let batch = entry.take().expect("slot checked above");
                let finish = fleet.busy_until(slot);
                for &id in &batch {
                    latencies[id] = finish - arrived[id].arrival_s;
                    source.on_complete(id, finish);
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.events.push(TraceEvent::Complete {
                            at_s: finish,
                            id,
                            tenant: arrived[id].tenant,
                            latency_s: latencies[id],
                        });
                    }
                }
                makespan = makespan.max(finish);
                batch_sizes.push(batch.len());
            }
        }

        // 2. Arrivals due at `now` pass admission into the backlog (after
        //    completions, so a zero-think closed-loop re-issue lands in
        //    the same event). An arrival sheds when the backlog is at its
        //    bound, or when its tenant's token bucket is empty.
        let first_new = arrived.len();
        source.pop_due(now, &mut arrived);
        for req in &arrived[first_new..] {
            let (id, class, tenant) = (req.id, req.class, req.tenant);
            latencies.push(f64::NAN);
            if let Some(count) = tenant_offered.get_mut(tenant) {
                *count += 1;
            }
            if let Some(trace) = trace.as_deref_mut() {
                trace.events.push(TraceEvent::Arrival { at_s: now, id, tenant });
            }
            let mut reason = ShedReason::QueueFull;
            let admit = if !admission {
                true
            } else if cfg.queue_bound.is_some_and(|bound| backlog.len() >= bound) {
                shed_queue += 1;
                false
            } else if let Some(gate) = gates.get_mut(tenant).and_then(Option::as_mut) {
                let pass = gate.admit(now);
                if !pass {
                    shed_limit += 1;
                    reason = ShedReason::RateLimited;
                }
                pass
            } else {
                true
            };
            if admit {
                backlog.push(id, class);
                if let Some(trace) = trace.as_deref_mut() {
                    trace.events.push(TraceEvent::Admit { at_s: now, id });
                }
            } else {
                latencies[id] = SHED_LATENCY_S;
                shed_ids.push(id);
                if let Some(count) = tenant_shed.get_mut(tenant) {
                    *count += 1;
                }
                if let Some(trace) = trace.as_deref_mut() {
                    trace.events.push(TraceEvent::Shed { at_s: now, id, tenant, reason });
                }
                source.on_complete(id, now);
            }
        }
        depth_max = depth_max.max(backlog.len());

        // 3. Injected crashes due at `now`: the victim is the busiest
        //    active shard of the scheduled group (ties to the lowest
        //    slot), its in-flight batch returns to the queue head —
        //    re-queued work bypasses admission; admitted work is never
        //    shed — and the slot deactivates. A crash that would empty
        //    the fleet, or lands in a group with no active shard, is
        //    skipped: the simulation models degraded service, not total
        //    outage.
        if let Some(plan) = plan.as_mut() {
            while let Some((at, group)) = plan.pop_crash_due(now) {
                debug_assert!(at <= now, "crashes pop when due");
                if fleet.active_shards() <= 1 {
                    continue;
                }
                let victim = (0..fleet.capacity())
                    .filter(|&s| fleet.group_of(s) == group && fleet.is_active(s))
                    .max_by(|&a, &b| {
                        fleet
                            .busy_until(a)
                            .partial_cmp(&fleet.busy_until(b))
                            .expect("busy horizons are finite")
                            .then(b.cmp(&a))
                    });
                let Some(victim) = victim else { continue };
                let batch = in_flight[victim].take();
                let redispatched = batch.as_ref().map_or(0, Vec::len);
                let lost_service_s =
                    if redispatched > 0 { (fleet.busy_until(victim) - now).max(0.0) } else { 0.0 };
                if let Some(batch) = batch {
                    let class = arrived[batch[0]].class;
                    backlog.push_front(&batch, class);
                }
                fleet.crash(victim, now, redispatched as u64);
                crash_events.push(CrashEvent { at_s: now, shard: victim, group, redispatched });
                if let Some(trace) = trace.as_deref_mut() {
                    trace.events.push(TraceEvent::Crash {
                        at_s: now,
                        shard: victim,
                        group,
                        redispatched,
                        lost_service_s,
                    });
                }
                depth_max = depth_max.max(backlog.len());
            }
        }

        // 4. Provisioning effects due at `now` apply, in (effect,
        //    decision, group, delta) order. A scale-up rolls the fault
        //    plan's provisioning die first — a failed roll leaves the
        //    slot inactive and counts a provisioning failure. Scale-downs
        //    go through the policy's shared retire path, which re-checks
        //    the per-group floor and idleness at effect time.
        while let Some(pos) = pending_ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.effect_s <= now)
            .min_by(|(_, a), (_, b)| {
                a.effect_s
                    .partial_cmp(&b.effect_s)
                    .expect("effect times are finite")
                    .then(a.decision_s.partial_cmp(&b.decision_s).expect("finite"))
                    .then(a.group.cmp(&b.group))
                    .then(a.delta.cmp(&b.delta))
            })
            .map(|(pos, _)| pos)
        {
            let op = pending_ops.remove(pos);
            let applied = if op.delta > 0 {
                if plan.as_mut().is_none_or(FaultPlan::provision_succeeds) {
                    fleet.activate(op.group, now).is_some()
                } else {
                    provision_failures += 1;
                    if let Some(trace) = trace.as_deref_mut() {
                        trace
                            .events
                            .push(TraceEvent::ProvisionFailure { at_s: now, group: op.group });
                    }
                    false
                }
            } else {
                cfg.autoscale
                    .expect("pending ops only exist under an autoscaler")
                    .retire_idle(&mut fleet, op.group, now)
                    .is_some()
            };
            if applied {
                scale_events.push(ScaleEvent {
                    decision_s: op.decision_s,
                    effect_s: now,
                    group: op.group,
                    delta: op.delta,
                    active_total: fleet.active_shards(),
                });
                if let Some(trace) = trace.as_deref_mut() {
                    trace.events.push(TraceEvent::Scale {
                        at_s: now,
                        group: op.group,
                        delta: op.delta,
                        active_total: fleet.active_shards(),
                    });
                }
            }
        }

        // 5. The autoscaler's periodic decision.
        if let (Some(policy_as), Some(check)) = (cfg.autoscale, next_check) {
            if check <= now {
                let mut pending = vec![0i64; fleet.group_count()];
                for op in &pending_ops {
                    pending[op.group] += op.delta;
                }
                match policy_as.decide(&fleet, backlog.len(), now, &pending) {
                    Decision::Hold => {}
                    Decision::Up { group } => pending_ops.push(PendingOp {
                        effect_s: now + policy_as.provision_delay_s,
                        decision_s: now,
                        group,
                        delta: 1,
                    }),
                    Decision::Down { group } => pending_ops.push(PendingOp {
                        effect_s: now + policy_as.provision_delay_s,
                        decision_s: now,
                        group,
                        delta: -1,
                    }),
                }
                next_check = Some(check + policy_as.check_interval_s);
            }
        }
    }

    // Provisioned capacity is paid for until the last batch completes.
    if makespan > now {
        fleet.accrue(makespan - now);
    }

    debug_assert!(
        latencies.iter().all(|&l| l >= 0.0 || l == SHED_LATENCY_S),
        "every request is served or shed, exactly once"
    );
    let tenant_outcomes = tenants.map_or_else(Vec::new, |mix| {
        mix.tenants()
            .iter()
            .enumerate()
            .map(|(i, t)| TenantOutcome {
                name: t.name.clone(),
                slo_s: t.slo_s,
                offered: tenant_offered[i],
                shed: tenant_shed[i],
            })
            .collect()
    });
    ServeOutcome {
        latencies_s: latencies,
        arrivals_s: arrived.iter().map(|r| r.arrival_s).collect(),
        tenants: arrived.iter().map(|r| r.tenant).collect(),
        shed: shed_ids,
        shed_queue,
        shed_limit,
        tenant_outcomes,
        crash_events,
        provision_failures,
        makespan_s: makespan,
        queue_depth_mean: if makespan > 0.0 { depth_integral / makespan } else { 0.0 },
        queue_depth_max: depth_max,
        batch_sizes,
        shard_stats: fleet.stats().to_vec(),
        shard_groups: fleet.shard_groups().to_vec(),
        group_stats: fleet.group_stats(),
        scale_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ClosedLoopSpec, StreamSpec};
    use crate::cost::ClassCost;
    use crate::scenario::{RateShape, ShapedStream, TenantSpec};
    use neura_chip::config::ChipConfig;

    /// A homogeneous Tile-16 fleet of `n` shards.
    fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
        vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
    }

    /// Two classes on Tile-16 silicon: 1 s and 0.5 s of service per request
    /// (Tile-16 runs at 1 GHz, so cycles map 1:1 to nanoseconds).
    fn unit_costs() -> CostTable {
        let mut costs =
            CostTable::new().with_marginal_fraction(crate::cost::DEFAULT_MARGINAL_BATCH_FRACTION);
        let fp = costs.register(&ChipConfig::tile_16());
        costs.insert(
            &fp,
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000_000_000, flops: 10 },
        );
        costs.insert(
            &fp,
            RequestClass { dataset: 1, shrink: 1 },
            ClassCost { cycles: 500_000_000, flops: 5 },
        );
        costs
    }

    fn request(id: usize, arrival_s: f64, dataset: usize) -> Request {
        Request { id, arrival_s, class: RequestClass { dataset, shrink: 1 }, tenant: 0 }
    }

    fn sim(stream: &[Request], policy: Policy, shards: usize, costs: &CostTable) -> ServeOutcome {
        simulate_stream(
            stream,
            policy,
            &tile16_fleet(shards),
            DispatchKind::LeastLoaded,
            None,
            costs,
        )
    }

    #[test]
    fn fifo_on_one_shard_serialises_requests() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 1, &unit_costs());
        // Request 0: served 0.0–1.0 (latency 1.0); request 1 waits for the
        // shard, served 1.0–2.0 (latency 1.9).
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.9).abs() < 1e-12);
        assert!((outcome.makespan_s - 2.0).abs() < 1e-12);
        assert_eq!(outcome.batch_sizes, vec![1, 1]);
        assert_eq!(outcome.shard_stats[0].requests, 2);
        assert!((outcome.utilisations()[0] - 1.0).abs() < 1e-12);
        assert!((outcome.shard_seconds() - 2.0).abs() < 1e-12, "1 shard x 2 s makespan");
        assert_eq!(outcome.arrivals_s, vec![0.0, 0.1]);
        assert_eq!(outcome.offered(), 2);
        assert!(outcome.shed.is_empty(), "no admission control, nothing sheds");
        assert_eq!(outcome.shed_rate(), 0.0);
    }

    #[test]
    fn a_second_shard_absorbs_the_queueing_delay() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 2, &unit_costs());
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.0).abs() < 1e-12, "no wait on the idle shard");
        assert!((outcome.makespan_s - 1.1).abs() < 1e-12);
        assert!((outcome.shard_seconds() - 2.2).abs() < 1e-12, "2 shards x 1.1 s makespan");
    }

    #[test]
    fn sjf_reorders_the_backlog_by_work() {
        // Both queued behind the in-flight request; the cheap dataset-1
        // request (0.5 s) jumps ahead of the earlier dataset-0 one.
        let stream = [request(0, 0.0, 0), request(1, 0.01, 0), request(2, 0.02, 1)];
        let outcome = sim(&stream, Policy::Sjf, 1, &unit_costs());
        assert!((outcome.latencies_s[2] - (1.5 - 0.02)).abs() < 1e-12, "short job served first");
        assert!((outcome.latencies_s[1] - (2.5 - 0.01)).abs() < 1e-12, "long job served last");
    }

    #[test]
    fn batching_groups_same_class_requests_and_amortises_cost() {
        let stream = [request(0, 0.0, 0), request(1, 0.001, 0)];
        let outcome = sim(&stream, Policy::batch(2, 1.0), 1, &unit_costs());
        // Both arrive before the batch fills at max_batch = 2; the batch of
        // two costs 1.0 * (1 + 0.5) = 1.5 s and dispatches at t = 0.001.
        assert_eq!(outcome.batch_sizes, vec![2]);
        assert!((outcome.latencies_s[0] - 1.501).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batches_flush_at_the_timeout() {
        let stream = [request(0, 0.0, 0)];
        let outcome = sim(&stream, Policy::batch(8, 0.25), 1, &unit_costs());
        // The lone request waits out the 0.25 s timeout before dispatching.
        assert_eq!(outcome.batch_sizes, vec![1]);
        assert!((outcome.latencies_s[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_tracks_the_backlog() {
        let stream =
            [request(0, 0.0, 0), request(1, 0.1, 0), request(2, 0.1, 0), request(3, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 1, &unit_costs());
        assert_eq!(outcome.queue_depth_max, 3, "three requests queue behind the first");
        assert!(outcome.queue_depth_mean > 0.0);
        assert_eq!(outcome.max_in_flight(), 4, "all four overlap while the first is served");
    }

    #[test]
    fn empty_streams_produce_zeroed_metrics() {
        let outcome = sim(&[], Policy::Fifo, 2, &unit_costs());
        assert_eq!(outcome.requests(), 0);
        assert_eq!(outcome.throughput_rps(), 0.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 0.0);
        assert_eq!(outcome.mean_batch_size(), 0.0);
        assert_eq!(outcome.shard_seconds(), 0.0);
        assert_eq!(outcome.max_in_flight(), 0);
        assert_eq!(outcome.shed_rate(), 0.0);
        assert_eq!(outcome.mean_recovery_s(), 0.0);
    }

    #[test]
    fn heterogeneous_fleets_charge_each_group_its_own_silicon() {
        // One Tile-64 shard serving the big class 4x faster than the
        // Tile-4 shard; cost-aware dispatch sends the lone request there.
        let groups = vec![
            ShardGroup::new("t64", ChipConfig::tile_64(), 1),
            ShardGroup::new("t4", ChipConfig::tile_4(), 1),
        ];
        let mut costs = CostTable::new();
        let t64 = costs.register(&ChipConfig::tile_64());
        let t4 = costs.register(&ChipConfig::tile_4());
        let class = RequestClass { dataset: 0, shrink: 1 };
        costs.insert(&t64, class, ClassCost { cycles: 250_000_000, flops: 10 });
        costs.insert(&t4, class, ClassCost { cycles: 1_000_000_000, flops: 10 });
        let stream = [request(0, 0.0, 0)];
        let outcome =
            simulate_stream(&stream, Policy::Fifo, &groups, DispatchKind::CostAware, None, &costs);
        assert!((outcome.latencies_s[0] - 0.25).abs() < 1e-12, "served on the Tile-64");
        assert_eq!(outcome.group_stats[0].requests, 1);
        assert_eq!(outcome.group_stats[1].requests, 0);
        assert_eq!(outcome.shard_groups, vec![0, 1]);
        // Both shards were provisioned for the whole 0.25 s makespan.
        assert!((outcome.shard_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn closed_loops_never_exceed_their_client_count() {
        let workload = Workload::Closed(ClosedLoopSpec {
            clients: 3,
            think_s: 0.05,
            duration_s: 10.0,
            mix_size: 2,
            shrinks: vec![1],
            seed: 17,
        });
        let outcome = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert!(outcome.requests() > 3, "clients re-issue after completions");
        assert!(outcome.max_in_flight() <= 3);
        // One saturated shard: ~1 request per second of makespan.
        assert!(outcome.throughput_rps() <= 2.0 / 1.0 + 1e-9);
        // Deterministic replay.
        let again = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert_eq!(outcome, again);
    }

    #[test]
    fn closed_loop_backs_off_where_open_loop_queues() {
        // Same mean demand; the open loop keeps arriving at 2 rps against a
        // 1 rps shard and builds an unbounded queue, the closed loop's lone
        // client can never have more than one request outstanding.
        let open = Workload::Open(StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: 2.0,
            duration_s: 10.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 5,
        });
        let closed = Workload::Closed(ClosedLoopSpec {
            clients: 1,
            think_s: 0.0,
            duration_s: 10.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 5,
        });
        let costs = unit_costs();
        let fleet = tile16_fleet(1);
        let open_out =
            simulate(&open, Policy::Fifo, &fleet, DispatchKind::LeastLoaded, None, &costs);
        let closed_out =
            simulate(&closed, Policy::Fifo, &fleet, DispatchKind::LeastLoaded, None, &costs);
        assert!(open_out.max_in_flight() > 1);
        assert_eq!(closed_out.max_in_flight(), 1);
        assert!(
            closed_out.latency_percentile_s(99.0) < open_out.latency_percentile_s(99.0),
            "closed-loop tails exclude the queueing blow-up"
        );
    }

    #[test]
    fn autoscaler_grows_under_backlog_and_respects_the_delay() {
        // 20 requests land at t=0 on one 1 s/request shard; the controller
        // (check every 0.5 s, 1 s provisioning delay) grows the fleet.
        let stream: Vec<Request> = (0..20).map(|i| request(i, 0.0, 0)).collect();
        let policy = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.5)
            .with_provision_delay_s(1.0)
            .with_up_backlog_per_shard(2.0);
        let costs = unit_costs();
        let outcome = simulate_stream(
            &stream,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            Some(&policy),
            &costs,
        );
        assert!(!outcome.scale_events.is_empty(), "the backlog must trigger scale-ups");
        for event in &outcome.scale_events {
            assert!(
                event.effect_s - event.decision_s >= 1.0 - 1e-12,
                "effects wait out the provisioning delay"
            );
            assert!(event.active_total >= 1 && event.active_total <= 4);
        }
        assert_eq!(outcome.group_stats[0].peak_active, 4, "sustained backlog reaches max");
        let fixed = sim(&stream, Policy::Fifo, 1, &costs);
        assert!(
            outcome.latency_percentile_s(99.0) < fixed.latency_percentile_s(99.0),
            "bought capacity must buy latency"
        );
        // Makespan shrank, so the autoscaled run can still cost less in
        // shard-seconds than the slow fixed run; what matters is that the
        // cost metric reflects the provisioned capacity, not the spec size.
        assert!(outcome.shard_seconds() > outcome.makespan_s, "more than one shard on average");
        assert!((fixed.shard_seconds() - fixed.makespan_s).abs() < 1e-9, "fixed fleet: 1 shard");
    }

    #[test]
    fn bounded_queues_shed_and_cap_the_backlog() {
        // Eight simultaneous arrivals against a bound of 2: the first two
        // admit, the rest shed with the sentinel latency — and the shed
        // requests never occupy the queue or a shard.
        let stream: Vec<Request> = (0..8).map(|i| request(i, 0.0, 0)).collect();
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_queue_bound(2);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.offered(), 8);
        assert_eq!(outcome.requests(), 2, "bound 2 admits exactly two simultaneous arrivals");
        assert_eq!(outcome.shed, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(outcome.shed_queue, 6);
        assert_eq!(outcome.shed_limit, 0);
        assert!((outcome.shed_rate() - 0.75).abs() < 1e-12);
        assert!(outcome.queue_depth_max <= 2, "the bound caps the backlog");
        for &id in &outcome.shed {
            assert_eq!(outcome.latencies_s[id], SHED_LATENCY_S);
        }
        // Served-only metrics ignore the sentinel.
        assert!(outcome.latency_percentile_s(99.0) <= 2.0 + 1e-12);
        assert_eq!(outcome.max_in_flight(), 2);
        let sum: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        assert_eq!(sum as usize + outcome.shed.len(), outcome.offered(), "exactly-once");
    }

    #[test]
    fn tenant_rate_limits_bound_admitted_throughput() {
        // One tenant limited to 1 rps (burst = 1 token): of ten arrivals
        // over 0.9 s only the first fits — the bucket refills too slowly
        // for the rest.
        let mix = TenantMix::new(vec![TenantSpec {
            name: "free".to_string(),
            weight: 1.0,
            rate_limit_rps: Some(1.0),
            slo_s: None,
        }]);
        let stream: Vec<Request> = (0..10).map(|i| request(i, 0.1 * i as f64, 0)).collect();
        let costs = unit_costs();
        let groups = tile16_fleet(4);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_tenants(&mix);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.requests(), 1);
        assert_eq!(outcome.shed_limit, 9);
        assert_eq!(outcome.shed_queue, 0);
        assert_eq!(outcome.tenant_outcomes.len(), 1);
        assert_eq!(outcome.tenant_outcomes[0].name, "free");
        assert_eq!(outcome.tenant_outcomes[0].offered, 10);
        assert_eq!(outcome.tenant_outcomes[0].shed, 9);
        // The general bound: admitted <= burst + rate x elapsed.
        let admitted = outcome.requests() as f64;
        assert!(admitted <= 1.0 + 1.0 * 0.9 + 1e-9);
    }

    #[test]
    fn closed_loops_bypass_admission() {
        // A queue bound of zero would shed every open-loop arrival; the
        // closed loop's clients instead just wait their turn.
        let workload = Workload::Closed(ClosedLoopSpec {
            clients: 2,
            think_s: 0.0,
            duration_s: 5.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 3,
        });
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_queue_bound(0);
        let outcome = simulate_config(&workload, &cfg);
        assert!(outcome.requests() > 0);
        assert!(outcome.shed.is_empty(), "closed-loop clients are never shed");
    }

    #[test]
    fn crashes_redispatch_in_flight_work_exactly_once() {
        // Two 10 s requests occupy both shards from t=0; one crash lands
        // somewhere in [0, 1) and its victim's request re-dispatches on
        // the survivor — every request still completes exactly once.
        let stream = [request(0, 0.0, 0), request(1, 0.0, 0)];
        let mut costs = unit_costs();
        let fp = costs.register(&ChipConfig::tile_16());
        costs.insert(
            &fp,
            RequestClass { dataset: 2, shrink: 1 },
            ClassCost { cycles: 10_000_000_000, flops: 100 },
        );
        let stream = [
            Request { class: RequestClass { dataset: 2, shrink: 1 }, ..stream[0] },
            Request { class: RequestClass { dataset: 2, shrink: 1 }, ..stream[1] },
        ];
        let faults = FaultSpec::new(11, 1.0).with_crashes(1);
        let groups = tile16_fleet(2);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.crash_events.len(), 1);
        let crash = outcome.crash_events[0];
        assert!(crash.at_s < 1.0);
        assert_eq!(crash.redispatched, 1, "the victim was mid-batch");
        assert_eq!(outcome.requests(), 2, "both requests still complete");
        assert!(outcome.shed.is_empty(), "admitted work is never shed");
        assert!(outcome.latencies_s.iter().all(|&l| l >= 0.0));
        let sum: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        assert_eq!(sum, 2, "the crashed dispatch was retracted from the books");
        // The redispatched request waited for the survivor: latency > 10 s.
        assert!(outcome.latencies_s.iter().any(|&l| l > 10.0));
        // Determinism: the sentinel-free outcome compares bit-for-bit.
        assert_eq!(outcome, simulate_stream_config(&stream, &cfg));
    }

    #[test]
    fn failed_provisioning_keeps_the_fleet_small_and_counts() {
        let stream: Vec<Request> = (0..20).map(|i| request(i, 0.0, 0)).collect();
        let policy = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.5)
            .with_provision_delay_s(1.0)
            .with_up_backlog_per_shard(2.0);
        let costs = unit_costs();
        let faults = FaultSpec::new(1, 1.0).with_provision_fail(1.0);
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_autoscale(&policy)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert!(outcome.provision_failures > 0, "every scheduled scale-up failed");
        assert!(outcome.scale_events.is_empty(), "no change ever landed");
        assert_eq!(outcome.group_stats[0].peak_active, 1);
        assert_eq!(outcome.requests(), 20, "the lone shard still drains the backlog");
    }

    #[test]
    fn degraded_groups_serve_slower() {
        let stream = [request(0, 0.0, 0)];
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let faults = FaultSpec::new(1, 1.0).with_degraded(0, 2.0);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert!((outcome.latencies_s[0] - 2.0).abs() < 1e-12, "2x multiplier on 1 s of service");
        let healthy = sim(&stream, Policy::Fifo, 1, &costs);
        assert!((healthy.latencies_s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shaped_workloads_simulate_with_their_own_tenants() {
        let shaped = ShapedStream {
            base: StreamSpec {
                arrival: ArrivalProcess::Poisson,
                rps: 20.0,
                duration_s: 2.0,
                mix_size: 1,
                shrinks: vec![1],
                seed: 7,
            },
            shapes: vec![RateShape::Diurnal { cycles: 2.0, depth: 0.5 }],
            tenants: Some(TenantMix::new(vec![
                TenantSpec { name: "a".into(), weight: 1.0, rate_limit_rps: None, slo_s: None },
                TenantSpec { name: "b".into(), weight: 1.0, rate_limit_rps: None, slo_s: None },
            ])),
        };
        let workload = Workload::Shaped(shaped);
        let outcome = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(8),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert!(outcome.requests() > 0);
        assert_eq!(outcome.tenant_outcomes.len(), 2, "the stream's mix reaches the accounting");
        assert!(outcome.tenants.contains(&1), "both tenants offer traffic");
        let offered: u64 = outcome.tenant_outcomes.iter().map(|t| t.offered).sum();
        assert_eq!(offered as usize, outcome.offered());
        assert_eq!(
            outcome,
            simulate(
                &workload,
                Policy::Fifo,
                &tile16_fleet(8),
                DispatchKind::LeastLoaded,
                None,
                &unit_costs(),
            )
        );
    }

    #[test]
    fn records_carry_tails_groups_shards_and_cost() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 1)];
        let outcome = sim(&stream, Policy::Fifo, 2, &unit_costs());
        let params = vec![("policy".to_string(), "fifo".to_string())];
        let records = outcome.records("serve/demo", &params);
        assert_eq!(records.len(), 4, "one summary + one group + one record per shard");
        let summary = &records[0];
        assert_eq!(summary.id, "serve/demo/summary");
        assert!(summary.metric_value("p99_latency_ms").unwrap() > 0.0);
        assert!(summary.metric_value("throughput_rps").unwrap() > 0.0);
        assert!(summary.metric_value("shard_seconds").unwrap() > 0.0);
        assert!(summary.metric_value("max_in_flight").is_some());
        assert_eq!(summary.metric_value("offered"), Some(2.0));
        assert_eq!(summary.metric_value("shed_rate"), Some(0.0));
        assert_eq!(summary.metric_value("crashes"), Some(0.0));
        assert_eq!(summary.metric_value("provision_failures"), Some(0.0));
        assert_eq!(summary.params, params);
        assert_eq!(records[1].id, "serve/demo/group/t16");
        assert!(records[1].metric_value("utilization").is_some());
        assert!(records[1].metric_value("shard_seconds").is_some());
        assert!(records[1].metric_value("peak_active_shards").is_some());
        assert_eq!(records[2].id, "serve/demo/shard0");
        assert!(records[3].params.contains(&("shard".to_string(), "1".to_string())));
        assert!(records[3].params.contains(&("group".to_string(), "0".to_string())));
    }

    #[test]
    fn tenant_records_report_admission_and_slo_attainment() {
        let mix = TenantMix::new(vec![TenantSpec {
            name: "gold".to_string(),
            weight: 1.0,
            rate_limit_rps: None,
            slo_s: Some(1.5),
        }]);
        let stream = [request(0, 0.0, 0), request(1, 0.0, 0)];
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_tenants(&mix);
        let outcome = simulate_stream_config(&stream, &cfg);
        let records = outcome.records("serve/demo", &[]);
        let tenant = records.iter().find(|r| r.id == "serve/demo/tenant/gold").expect("present");
        assert_eq!(tenant.metric_value("offered"), Some(2.0));
        assert_eq!(tenant.metric_value("admitted"), Some(2.0));
        // Latencies are 1.0 and 2.0 against a 1.5 s SLO: 50% attainment.
        assert_eq!(tenant.metric_value("slo_attainment"), Some(0.5));
        assert!(tenant.params.contains(&("tenant".to_string(), "gold".to_string())));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let outcome = ServeOutcome {
            latencies_s: vec![4.0, 1.0, 3.0, 2.0, SHED_LATENCY_S],
            arrivals_s: vec![0.0; 5],
            tenants: vec![0; 5],
            shed: vec![4],
            shed_queue: 1,
            shed_limit: 0,
            tenant_outcomes: Vec::new(),
            crash_events: Vec::new(),
            provision_failures: 0,
            makespan_s: 4.0,
            queue_depth_mean: 0.0,
            queue_depth_max: 0,
            batch_sizes: vec![1; 4],
            shard_stats: vec![ShardStats::default()],
            shard_groups: vec![0],
            group_stats: Vec::new(),
            scale_events: Vec::new(),
        };
        assert_eq!(outcome.latency_percentile_s(50.0), 2.0, "the shed sentinel is excluded");
        assert_eq!(outcome.latency_percentile_s(75.0), 3.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 4.0);
        assert_eq!(outcome.latency_percentile_s(100.0), 4.0);
        assert_eq!(outcome.requests(), 4);
        assert_eq!(outcome.offered(), 5);
        assert!((outcome.shed_rate() - 0.2).abs() < 1e-12);
        assert!((outcome.mean_latency_s() - 2.5).abs() < 1e-12);
    }
}
