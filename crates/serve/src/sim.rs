//! The event-driven serving simulation and its metrics.
//!
//! [`simulate`] replays one scenario as an *event-source* loop. Requests
//! enter from a [`Workload`] — a pre-generated open-loop stream, a
//! rate-shaped multi-tenant stream, or a closed-loop client population
//! whose next arrival is only known once the previous response lands —
//! and pass through admission control into a central backlog: a bounded
//! queue sheds arrivals beyond its [`ServeConfig::queue_bound`], and a
//! tenant's token bucket sheds arrivals beyond its rate limit. The
//! scheduling [`Policy`] turns the backlog into dispatch units (single
//! requests for FIFO/SJF, per-class batches for the batching policy), a
//! class-aware [`DispatchPolicy`](crate::dispatch::DispatchPolicy) places
//! each unit on one idle shard of a (possibly heterogeneous, possibly
//! autoscaled) [`ShardFleet`], and the unit is charged the memoised
//! service time of that shard's silicon — stretched by the fault plan's
//! multiplier when the shard's group runs degraded. A [`FaultSpec`]
//! additionally injects seed-derived shard crashes (the victim's
//! in-flight batch returns to the queue head for re-dispatch) and
//! provisioning failures (a scheduled scale-up silently doesn't land).
//!
//! The loop advances through a deterministic event sequence — next
//! arrival, next batch completion, next batch timeout, next injected
//! crash, next provisioning effect, next autoscaler check — and each
//! event processes completions, then arrivals and admission, then
//! crashes, then provisioning, then the autoscaler, in that fixed order.
//! The outcome is therefore a pure function of
//! `(workload, policy, fleet, dispatch, autoscale, faults, costs)`;
//! nothing about wall-clock time or thread scheduling can leak into the
//! metrics. Every request is accounted for exactly once: served (finite
//! non-negative latency), shed (the [`SHED_LATENCY_S`] sentinel), or
//! crashed-and-redispatched until served.
//!
//! The event loop itself lives in [`crate::engine`] as a resumable
//! fragment runner; the entry points here are thin wrappers running an
//! [`EnginePlan::serial`] plan, so their signatures and artifacts are
//! unchanged while `engine` adds epoch- and lane-parallel execution.

use neura_lab::RunRecord;

use crate::arrivals::{Request, Workload};
use crate::autoscale::{AutoscalePolicy, ScaleEvent};
use crate::cost::CostTable;
use crate::dispatch::DispatchKind;
use crate::engine::{
    simulate_config_parallel, simulate_config_traced_parallel, simulate_stream_config_parallel,
    simulate_stream_config_traced_parallel, EnginePlan,
};
use crate::fault::{CrashEvent, FaultSpec};
use crate::fleet::{GroupStats, ShardGroup, ShardStats};
use crate::policy::Policy;
use crate::scenario::TenantMix;
use crate::telemetry::Trace;

/// The latency sentinel a shed request carries in
/// [`ServeOutcome::latencies_s`]. Deliberately a *finite* negative value —
/// not NaN — so outcomes stay `PartialEq`-comparable and the determinism
/// suite can keep asserting byte-for-byte equality. Served-only metrics
/// filter on `latency >= 0.0`.
pub const SHED_LATENCY_S: f64 = -1.0;

/// Nearest-rank percentiles in seconds over served latencies — the one
/// percentile implementation every outcome metric goes through. Shed
/// requests are excluded by matching the [`SHED_LATENCY_S`] sentinel
/// exactly, *not* by a silent `>= 0` range filter: any other negative
/// (or non-finite) latency is a simulation bug, so it trips the debug
/// assertion here and the sort's finiteness check in release builds
/// instead of quietly vanishing from the tail. Returns 0 for every
/// percentile when nothing was served.
///
/// # Panics
///
/// Panics unless every percentile is within `(0, 100]`.
fn served_percentiles(latencies: impl Iterator<Item = f64>, pcts: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = latencies
        .filter(|&l| {
            debug_assert!(
                l >= 0.0 || l == SHED_LATENCY_S,
                "latency {l} is neither served nor the shed sentinel"
            );
            l != SHED_LATENCY_S
        })
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    pcts.iter()
        .map(|&pct| {
            assert!(pct > 0.0 && pct <= 100.0, "percentile must be within (0, 100]");
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        })
        .collect()
}

/// Per-tenant admission accounting (populated only when a tenant mix is
/// configured).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's name, as declared in the mix.
    pub name: String,
    /// The tenant's latency SLO, if declared (reported, never enforced).
    pub slo_s: Option<f64>,
    /// Requests the tenant offered (admitted or shed).
    pub offered: u64,
    /// Requests shed at admission (queue bound or rate limit).
    pub shed: u64,
}

/// Everything one scenario replay measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival) in seconds, id-ordered;
    /// shed requests carry [`SHED_LATENCY_S`].
    pub latencies_s: Vec<f64>,
    /// Per-request arrival time in seconds, id-ordered (so completion
    /// times — and with them in-flight counts — are reconstructable).
    pub arrivals_s: Vec<f64>,
    /// Per-request tenant index, id-ordered (all 0 without a mix).
    pub tenants: Vec<usize>,
    /// Ids of shed requests, ascending.
    pub shed: Vec<usize>,
    /// Requests shed because the backlog was at its bound.
    pub shed_queue: u64,
    /// Requests shed because their tenant's token bucket was empty.
    pub shed_limit: u64,
    /// Per-tenant admission accounting (empty without a tenant mix).
    pub tenant_outcomes: Vec<TenantOutcome>,
    /// Every injected shard crash, in time order.
    pub crash_events: Vec<CrashEvent>,
    /// Scheduled scale-ups that failed to provision.
    pub provision_failures: u64,
    /// Time of the last batch completion (0 for an empty stream).
    pub makespan_s: f64,
    /// Time-weighted mean backlog depth over the makespan.
    pub queue_depth_mean: f64,
    /// Largest backlog depth observed at any event.
    pub queue_depth_max: usize,
    /// Size of every completed batch, in completion order.
    pub batch_sizes: Vec<usize>,
    /// Per-shard-slot counters.
    pub shard_stats: Vec<ShardStats>,
    /// The group each shard slot belongs to.
    pub shard_groups: Vec<usize>,
    /// Per-group aggregates (busy time, served counts, provisioned
    /// shard-seconds, peak active shards).
    pub group_stats: Vec<GroupStats>,
    /// Every executed fleet-size change, in effect order. Crashes are
    /// *not* scale events — they appear in [`Self::crash_events`].
    pub scale_events: Vec<ScaleEvent>,
}

impl ServeOutcome {
    /// Number of requests offered (served + shed).
    pub fn offered(&self) -> usize {
        self.arrivals_s.len()
    }

    /// Number of requests served to completion.
    pub fn requests(&self) -> usize {
        self.latencies_s.iter().filter(|&&l| l >= 0.0).count()
    }

    /// Fraction of offered requests shed at admission (0 for an empty
    /// stream).
    pub fn shed_rate(&self) -> f64 {
        if self.offered() > 0 {
            self.shed.len() as f64 / self.offered() as f64
        } else {
            0.0
        }
    }

    /// Requests that were in flight on crashing shards and re-dispatched.
    pub fn redispatched(&self) -> usize {
        self.crash_events.iter().map(|c| c.redispatched).sum()
    }

    /// Per-crash recovery time: from the crash to the effect of the first
    /// scale-up the autoscaler decided *after* it in the crashed group
    /// (crashes the autoscaler never repaired are absent). Each entry is
    /// at least the provisioning delay by construction.
    pub fn recovery_times_s(&self) -> Vec<f64> {
        self.crash_events
            .iter()
            .filter_map(|c| {
                self.scale_events
                    .iter()
                    .find(|e| e.group == c.group && e.delta > 0 && e.decision_s >= c.at_s)
                    .map(|e| e.effect_s - c.at_s)
            })
            .collect()
    }

    /// Mean recovery time over the repaired crashes (0 when none).
    pub fn mean_recovery_s(&self) -> f64 {
        let times = self.recovery_times_s();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }

    /// Latency percentile in seconds over *served* requests
    /// (nearest-rank; 0 when nothing was served).
    ///
    /// Sorts the latency vector per call — when reading several
    /// percentiles, use [`Self::latency_percentiles_s`] to sort once.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct ≤ 100`.
    pub fn latency_percentile_s(&self, pct: f64) -> f64 {
        self.latency_percentiles_s(&[pct])[0]
    }

    /// Several served-latency percentiles in seconds from a single sort
    /// (nearest-rank; 0 when nothing was served).
    ///
    /// # Panics
    ///
    /// Panics unless every percentile is within `(0, 100]`.
    pub fn latency_percentiles_s(&self, pcts: &[f64]) -> Vec<f64> {
        served_percentiles(self.latencies_s.iter().copied(), pcts)
    }

    /// Latencies that are neither served (`>= 0`) nor the shed sentinel —
    /// always 0 for a correct simulation. Exposed so suites can assert the
    /// invariant directly instead of having broken values silently
    /// filtered out of the percentiles.
    pub fn invalid_latencies(&self) -> usize {
        self.latencies_s.iter().filter(|&&l| !(l >= 0.0 || l == SHED_LATENCY_S)).count()
    }

    /// Mean served latency in seconds (0 when nothing was served).
    pub fn mean_latency_s(&self) -> f64 {
        let served = self.requests();
        if served == 0 {
            0.0
        } else {
            self.latencies_s.iter().filter(|&&l| l >= 0.0).sum::<f64>() / served as f64
        }
    }

    /// Sustained throughput: requests served per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.requests() as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// Mean completed batch size (0 when nothing was dispatched).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }

    /// Largest completed batch.
    pub fn max_batch_size(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Per-shard-slot utilisation: busy seconds over the makespan.
    pub fn utilisations(&self) -> Vec<f64> {
        self.shard_stats
            .iter()
            .map(|s| if self.makespan_s > 0.0 { s.busy_s / self.makespan_s } else { 0.0 })
            .collect()
    }

    /// Total provisioned shard-seconds across all groups — the scenario's
    /// capacity cost, reported next to the latency it bought.
    pub fn shard_seconds(&self) -> f64 {
        self.group_stats.iter().map(|g| g.shard_seconds).sum()
    }

    /// Mean provisioned shard count over the makespan.
    pub fn mean_active_shards(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.shard_seconds() / self.makespan_s
        } else {
            0.0
        }
    }

    /// The largest number of *served* requests simultaneously in flight
    /// (arrived but not yet completed; shed requests never occupy the
    /// system) — the quantity a closed loop bounds by its client count.
    pub fn max_in_flight(&self) -> usize {
        // +1 at each arrival, −1 at each completion; completions at the
        // same instant as an arrival are processed first (a closed-loop
        // client's next request can only follow its response).
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * self.latencies_s.len());
        for (&arrival, &latency) in self.arrivals_s.iter().zip(&self.latencies_s) {
            if latency < 0.0 {
                continue;
            }
            events.push((arrival, 1));
            events.push((arrival + latency, -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("event times are finite").then(a.1.cmp(&b.1))
        });
        let (mut in_flight, mut peak) = (0i64, 0i64);
        for (_, delta) in events {
            in_flight += delta;
            peak = peak.max(in_flight);
        }
        peak as usize
    }

    /// The artifact records describing this outcome: one scenario summary
    /// (tail latencies, throughput, shed/crash/recovery accounting, queue
    /// depth, batching, shard-seconds cost), one record per tenant of the
    /// mix (admission and SLO attainment), one per shard group
    /// (utilisation of the provisioned capacity, served counts, peak
    /// active shards) and one per shard slot (utilisation, busy time,
    /// served counts). `scope` prefixes every record ID and `params` is
    /// attached to each record.
    pub fn records(&self, scope: &str, params: &[(String, String)]) -> Vec<RunRecord> {
        let tails = self.latency_percentiles_s(&[50.0, 95.0, 99.0]);
        let mut summary = RunRecord::new(format!("{scope}/summary"))
            .metric("requests", self.requests() as f64)
            .metric("offered", self.offered() as f64)
            .metric("shed", self.shed.len() as f64)
            .metric("shed_rate", self.shed_rate())
            .metric("shed_queue", self.shed_queue as f64)
            .metric("shed_limit", self.shed_limit as f64)
            .metric("crashes", self.crash_events.len() as f64)
            .metric("redispatched", self.redispatched() as f64)
            .metric("provision_failures", self.provision_failures as f64)
            .metric("recoveries", self.recovery_times_s().len() as f64)
            .unit_metric("recovery_time_ms", self.mean_recovery_s() * 1e3, "ms")
            .unit_metric("p50_latency_ms", tails[0] * 1e3, "ms")
            .unit_metric("p95_latency_ms", tails[1] * 1e3, "ms")
            .unit_metric("p99_latency_ms", tails[2] * 1e3, "ms")
            .unit_metric("mean_latency_ms", self.mean_latency_s() * 1e3, "ms")
            .unit_metric("throughput_rps", self.throughput_rps(), "req/s")
            .unit_metric("makespan_s", self.makespan_s, "s")
            .metric("queue_depth_mean", self.queue_depth_mean)
            .metric("queue_depth_max", self.queue_depth_max as f64)
            .metric("batches", self.batch_sizes.len() as f64)
            .metric("mean_batch_size", self.mean_batch_size())
            .metric("max_batch_size", self.max_batch_size() as f64)
            .unit_metric("shard_seconds", self.shard_seconds(), "shard*s")
            .metric("mean_active_shards", self.mean_active_shards())
            .metric("max_in_flight", self.max_in_flight() as f64)
            .metric("scale_events", self.scale_events.len() as f64);
        summary.params = params.to_vec();
        let mut records = vec![summary];
        for (t, tenant) in self.tenant_outcomes.iter().enumerate() {
            let served: Vec<f64> = self
                .tenants
                .iter()
                .zip(&self.latencies_s)
                .filter(|&(&owner, &l)| owner == t && l != SHED_LATENCY_S)
                .map(|(_, &l)| l)
                .collect();
            let p99 = served_percentiles(served.iter().copied(), &[99.0])[0];
            let admitted = tenant.offered - tenant.shed;
            let shed_rate =
                if tenant.offered > 0 { tenant.shed as f64 / tenant.offered as f64 } else { 0.0 };
            let mut record = RunRecord::new(format!("{scope}/tenant/{}", tenant.name))
                .metric("offered", tenant.offered as f64)
                .metric("admitted", admitted as f64)
                .metric("shed", tenant.shed as f64)
                .metric("shed_rate", shed_rate)
                .unit_metric("p99_latency_ms", p99 * 1e3, "ms");
            if let Some(slo) = tenant.slo_s {
                let within = served.iter().filter(|&&l| l <= slo).count();
                let attainment =
                    if served.is_empty() { 1.0 } else { within as f64 / served.len() as f64 };
                record = record.metric("slo_attainment", attainment);
            }
            record.params = params.to_vec();
            record.params.push(("tenant".to_string(), tenant.name.clone()));
            records.push(record);
        }
        for (g, group) in self.group_stats.iter().enumerate() {
            let utilisation =
                if group.shard_seconds > 0.0 { group.busy_s / group.shard_seconds } else { 0.0 };
            let mut record = RunRecord::new(format!("{scope}/group/{}", group.name))
                .metric("utilization", utilisation)
                .unit_metric("busy_s", group.busy_s, "s")
                .unit_metric("shard_seconds", group.shard_seconds, "shard*s")
                .metric("batches", group.batches as f64)
                .metric("requests", group.requests as f64)
                .metric("peak_active_shards", group.peak_active as f64)
                .metric("capacity", group.capacity as f64);
            record.params = params.to_vec();
            record.params.push(("group".to_string(), g.to_string()));
            records.push(record);
        }
        for (i, (stats, utilisation)) in
            self.shard_stats.iter().zip(self.utilisations()).enumerate()
        {
            let mut record = RunRecord::new(format!("{scope}/shard{i}"))
                .metric("utilization", utilisation)
                .unit_metric("busy_s", stats.busy_s, "s")
                .metric("batches", stats.batches as f64)
                .metric("requests", stats.requests as f64);
            record.params = params.to_vec();
            record.params.push(("shard".to_string(), i.to_string()));
            record.params.push(("group".to_string(), self.shard_groups[i].to_string()));
            records.push(record);
        }
        records
    }
}

/// One scenario's full serving configuration: the scheduling policy,
/// fleet, dispatch and cost model every replay needs, plus the optional
/// production knobs — autoscaling, a bounded queue that sheds, a tenant
/// mix with rate limits, and a fault regime.
///
/// Admission control (queue bound and tenant limits) applies to open-loop
/// arrivals only: a closed-loop population self-limits by construction —
/// its clients wait rather than having requests dropped.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig<'a> {
    /// The scheduling policy.
    pub policy: Policy,
    /// The fleet's shard groups.
    pub groups: &'a [ShardGroup],
    /// The dispatch policy choosing a shard per unit.
    pub dispatch: DispatchKind,
    /// The autoscaler, if the fleet is elastic.
    pub autoscale: Option<&'a AutoscalePolicy>,
    /// The calibrated service-time table.
    pub costs: &'a CostTable,
    /// Backlog bound: arrivals beyond it are shed (`None` = unbounded).
    pub queue_bound: Option<usize>,
    /// Tenant mix for admission control and per-tenant accounting
    /// (`None` = the workload's own mix, or a single implicit tenant).
    pub tenants: Option<&'a TenantMix>,
    /// Fault regime to inject (`None` = a healthy fleet).
    pub faults: Option<&'a FaultSpec>,
}

impl<'a> ServeConfig<'a> {
    /// A plain configuration: fixed fleet, unbounded queue, single
    /// tenant, no faults.
    pub fn new(
        policy: Policy,
        groups: &'a [ShardGroup],
        dispatch: DispatchKind,
        costs: &'a CostTable,
    ) -> Self {
        ServeConfig {
            policy,
            groups,
            dispatch,
            autoscale: None,
            costs,
            queue_bound: None,
            tenants: None,
            faults: None,
        }
    }

    /// Runs the fleet under an autoscaler (builder style).
    pub fn with_autoscale(mut self, policy: &'a AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Bounds the backlog; arrivals beyond the bound shed (builder style).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound);
        self
    }

    /// Applies a tenant mix's rate limits and accounting (builder style).
    pub fn with_tenants(mut self, tenants: &'a TenantMix) -> Self {
        self.tenants = Some(tenants);
        self
    }

    /// Injects a fault regime (builder style).
    pub fn with_faults(mut self, faults: &'a FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Replays one serving scenario and returns its metrics.
///
/// The fleet is described by `groups` (one entry per shard group, each with
/// its own configuration); every group's fingerprint must be registered in
/// `costs` with every class of the workload measured under it. With
/// `autoscale` set, each group's initial shard count must lie within the
/// policy's `[min, max]` bounds and the fleet pre-allocates `max` slots per
/// group.
///
/// This is the plain-configuration entry point; [`simulate_config`] takes
/// the full [`ServeConfig`] with admission control and fault injection.
///
/// # Panics
///
/// Panics when an open-loop stream is unsorted, a (fingerprint, class) pair
/// is missing from the cost table, the fleet is empty, or an autoscaled
/// group starts outside the policy bounds.
pub fn simulate(
    workload: &Workload,
    policy: Policy,
    groups: &[ShardGroup],
    dispatch: DispatchKind,
    autoscale: Option<&AutoscalePolicy>,
    costs: &CostTable,
) -> ServeOutcome {
    let mut cfg = ServeConfig::new(policy, groups, dispatch, costs);
    cfg.autoscale = autoscale;
    simulate_config(workload, &cfg)
}

/// [`simulate`] over an explicit, pre-generated open-loop stream (as
/// [`StreamSpec::generate`] produces it: sorted by arrival time, ids in
/// arrival order).
///
/// [`StreamSpec::generate`]: crate::arrivals::StreamSpec::generate
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream(
    requests: &[Request],
    policy: Policy,
    groups: &[ShardGroup],
    dispatch: DispatchKind,
    autoscale: Option<&AutoscalePolicy>,
    costs: &CostTable,
) -> ServeOutcome {
    let mut cfg = ServeConfig::new(policy, groups, dispatch, costs);
    cfg.autoscale = autoscale;
    simulate_stream_config(requests, &cfg)
}

/// Replays one workload under a full [`ServeConfig`].
///
/// For a [`Workload::Shaped`] stream, an explicit `cfg.tenants` wins over
/// the stream's own mix; without either, every request is tenant 0.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_config(workload: &Workload, cfg: &ServeConfig<'_>) -> ServeOutcome {
    simulate_config_parallel(workload, cfg, &EnginePlan::serial())
}

/// [`simulate_config`] that additionally records the full request
/// lifecycle as a [`Trace`] for the telemetry layer (windowed
/// [`Timeline`](crate::telemetry::Timeline) views, timeline artifacts).
///
/// The outcome is identical to the untraced replay — tracing only
/// appends events, it never influences a decision — and the untraced
/// entry points skip every trace push, so replays without a trace pay
/// nothing for this hook existing.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_config_traced(workload: &Workload, cfg: &ServeConfig<'_>) -> (ServeOutcome, Trace) {
    simulate_config_traced_parallel(workload, cfg, &EnginePlan::serial())
}

/// [`simulate_config`] over an explicit, pre-generated open-loop stream.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream_config(requests: &[Request], cfg: &ServeConfig<'_>) -> ServeOutcome {
    simulate_stream_config_parallel(requests, cfg, &EnginePlan::serial())
}

/// [`simulate_stream_config`] that additionally records the lifecycle
/// [`Trace`] (see [`simulate_config_traced`]).
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_stream_config_traced(
    requests: &[Request],
    cfg: &ServeConfig<'_>,
) -> (ServeOutcome, Trace) {
    simulate_stream_config_traced_parallel(requests, cfg, &EnginePlan::serial())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, ClosedLoopSpec, StreamSpec};
    use crate::cost::{ClassCost, RequestClass};
    use crate::scenario::{RateShape, ShapedStream, TenantSpec};
    use neura_chip::config::ChipConfig;

    /// A homogeneous Tile-16 fleet of `n` shards.
    fn tile16_fleet(n: usize) -> Vec<ShardGroup> {
        vec![ShardGroup::new("t16", ChipConfig::tile_16(), n)]
    }

    /// Two classes on Tile-16 silicon: 1 s and 0.5 s of service per request
    /// (Tile-16 runs at 1 GHz, so cycles map 1:1 to nanoseconds).
    fn unit_costs() -> CostTable {
        let mut costs =
            CostTable::new().with_marginal_fraction(crate::cost::DEFAULT_MARGINAL_BATCH_FRACTION);
        let fp = costs.register(&ChipConfig::tile_16());
        costs.insert(
            &fp,
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000_000_000, flops: 10 },
        );
        costs.insert(
            &fp,
            RequestClass { dataset: 1, shrink: 1 },
            ClassCost { cycles: 500_000_000, flops: 5 },
        );
        costs
    }

    fn request(id: usize, arrival_s: f64, dataset: usize) -> Request {
        Request { id, arrival_s, class: RequestClass { dataset, shrink: 1 }, tenant: 0 }
    }

    fn sim(stream: &[Request], policy: Policy, shards: usize, costs: &CostTable) -> ServeOutcome {
        simulate_stream(
            stream,
            policy,
            &tile16_fleet(shards),
            DispatchKind::LeastLoaded,
            None,
            costs,
        )
    }

    #[test]
    fn fifo_on_one_shard_serialises_requests() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 1, &unit_costs());
        // Request 0: served 0.0–1.0 (latency 1.0); request 1 waits for the
        // shard, served 1.0–2.0 (latency 1.9).
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.9).abs() < 1e-12);
        assert!((outcome.makespan_s - 2.0).abs() < 1e-12);
        assert_eq!(outcome.batch_sizes, vec![1, 1]);
        assert_eq!(outcome.shard_stats[0].requests, 2);
        assert!((outcome.utilisations()[0] - 1.0).abs() < 1e-12);
        assert!((outcome.shard_seconds() - 2.0).abs() < 1e-12, "1 shard x 2 s makespan");
        assert_eq!(outcome.arrivals_s, vec![0.0, 0.1]);
        assert_eq!(outcome.offered(), 2);
        assert!(outcome.shed.is_empty(), "no admission control, nothing sheds");
        assert_eq!(outcome.shed_rate(), 0.0);
    }

    #[test]
    fn a_second_shard_absorbs_the_queueing_delay() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 2, &unit_costs());
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.0).abs() < 1e-12, "no wait on the idle shard");
        assert!((outcome.makespan_s - 1.1).abs() < 1e-12);
        assert!((outcome.shard_seconds() - 2.2).abs() < 1e-12, "2 shards x 1.1 s makespan");
    }

    #[test]
    fn sjf_reorders_the_backlog_by_work() {
        // Both queued behind the in-flight request; the cheap dataset-1
        // request (0.5 s) jumps ahead of the earlier dataset-0 one.
        let stream = [request(0, 0.0, 0), request(1, 0.01, 0), request(2, 0.02, 1)];
        let outcome = sim(&stream, Policy::Sjf, 1, &unit_costs());
        assert!((outcome.latencies_s[2] - (1.5 - 0.02)).abs() < 1e-12, "short job served first");
        assert!((outcome.latencies_s[1] - (2.5 - 0.01)).abs() < 1e-12, "long job served last");
    }

    #[test]
    fn batching_groups_same_class_requests_and_amortises_cost() {
        let stream = [request(0, 0.0, 0), request(1, 0.001, 0)];
        let outcome = sim(&stream, Policy::batch(2, 1.0), 1, &unit_costs());
        // Both arrive before the batch fills at max_batch = 2; the batch of
        // two costs 1.0 * (1 + 0.5) = 1.5 s and dispatches at t = 0.001.
        assert_eq!(outcome.batch_sizes, vec![2]);
        assert!((outcome.latencies_s[0] - 1.501).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batches_flush_at_the_timeout() {
        let stream = [request(0, 0.0, 0)];
        let outcome = sim(&stream, Policy::batch(8, 0.25), 1, &unit_costs());
        // The lone request waits out the 0.25 s timeout before dispatching.
        assert_eq!(outcome.batch_sizes, vec![1]);
        assert!((outcome.latencies_s[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_tracks_the_backlog() {
        let stream =
            [request(0, 0.0, 0), request(1, 0.1, 0), request(2, 0.1, 0), request(3, 0.1, 0)];
        let outcome = sim(&stream, Policy::Fifo, 1, &unit_costs());
        assert_eq!(outcome.queue_depth_max, 3, "three requests queue behind the first");
        assert!(outcome.queue_depth_mean > 0.0);
        assert_eq!(outcome.max_in_flight(), 4, "all four overlap while the first is served");
    }

    #[test]
    fn empty_streams_produce_zeroed_metrics() {
        let outcome = sim(&[], Policy::Fifo, 2, &unit_costs());
        assert_eq!(outcome.requests(), 0);
        assert_eq!(outcome.throughput_rps(), 0.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 0.0);
        assert_eq!(outcome.mean_batch_size(), 0.0);
        assert_eq!(outcome.shard_seconds(), 0.0);
        assert_eq!(outcome.max_in_flight(), 0);
        assert_eq!(outcome.shed_rate(), 0.0);
        assert_eq!(outcome.mean_recovery_s(), 0.0);
    }

    #[test]
    fn heterogeneous_fleets_charge_each_group_its_own_silicon() {
        // One Tile-64 shard serving the big class 4x faster than the
        // Tile-4 shard; cost-aware dispatch sends the lone request there.
        let groups = vec![
            ShardGroup::new("t64", ChipConfig::tile_64(), 1),
            ShardGroup::new("t4", ChipConfig::tile_4(), 1),
        ];
        let mut costs = CostTable::new();
        let t64 = costs.register(&ChipConfig::tile_64());
        let t4 = costs.register(&ChipConfig::tile_4());
        let class = RequestClass { dataset: 0, shrink: 1 };
        costs.insert(&t64, class, ClassCost { cycles: 250_000_000, flops: 10 });
        costs.insert(&t4, class, ClassCost { cycles: 1_000_000_000, flops: 10 });
        let stream = [request(0, 0.0, 0)];
        let outcome =
            simulate_stream(&stream, Policy::Fifo, &groups, DispatchKind::CostAware, None, &costs);
        assert!((outcome.latencies_s[0] - 0.25).abs() < 1e-12, "served on the Tile-64");
        assert_eq!(outcome.group_stats[0].requests, 1);
        assert_eq!(outcome.group_stats[1].requests, 0);
        assert_eq!(outcome.shard_groups, vec![0, 1]);
        // Both shards were provisioned for the whole 0.25 s makespan.
        assert!((outcome.shard_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn closed_loops_never_exceed_their_client_count() {
        let workload = Workload::Closed(ClosedLoopSpec {
            clients: 3,
            think_s: 0.05,
            duration_s: 10.0,
            mix_size: 2,
            shrinks: vec![1],
            seed: 17,
        });
        let outcome = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert!(outcome.requests() > 3, "clients re-issue after completions");
        assert!(outcome.max_in_flight() <= 3);
        // One saturated shard: ~1 request per second of makespan.
        assert!(outcome.throughput_rps() <= 2.0 / 1.0 + 1e-9);
        // Deterministic replay.
        let again = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert_eq!(outcome, again);
    }

    #[test]
    fn closed_loop_backs_off_where_open_loop_queues() {
        // Same mean demand; the open loop keeps arriving at 2 rps against a
        // 1 rps shard and builds an unbounded queue, the closed loop's lone
        // client can never have more than one request outstanding.
        let open = Workload::Open(StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: 2.0,
            duration_s: 10.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 5,
        });
        let closed = Workload::Closed(ClosedLoopSpec {
            clients: 1,
            think_s: 0.0,
            duration_s: 10.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 5,
        });
        let costs = unit_costs();
        let fleet = tile16_fleet(1);
        let open_out =
            simulate(&open, Policy::Fifo, &fleet, DispatchKind::LeastLoaded, None, &costs);
        let closed_out =
            simulate(&closed, Policy::Fifo, &fleet, DispatchKind::LeastLoaded, None, &costs);
        assert!(open_out.max_in_flight() > 1);
        assert_eq!(closed_out.max_in_flight(), 1);
        assert!(
            closed_out.latency_percentile_s(99.0) < open_out.latency_percentile_s(99.0),
            "closed-loop tails exclude the queueing blow-up"
        );
    }

    #[test]
    fn autoscaler_grows_under_backlog_and_respects_the_delay() {
        // 20 requests land at t=0 on one 1 s/request shard; the controller
        // (check every 0.5 s, 1 s provisioning delay) grows the fleet.
        let stream: Vec<Request> = (0..20).map(|i| request(i, 0.0, 0)).collect();
        let policy = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.5)
            .with_provision_delay_s(1.0)
            .with_up_backlog_per_shard(2.0);
        let costs = unit_costs();
        let outcome = simulate_stream(
            &stream,
            Policy::Fifo,
            &tile16_fleet(1),
            DispatchKind::LeastLoaded,
            Some(&policy),
            &costs,
        );
        assert!(!outcome.scale_events.is_empty(), "the backlog must trigger scale-ups");
        for event in &outcome.scale_events {
            assert!(
                event.effect_s - event.decision_s >= 1.0 - 1e-12,
                "effects wait out the provisioning delay"
            );
            assert!(event.active_total >= 1 && event.active_total <= 4);
        }
        assert_eq!(outcome.group_stats[0].peak_active, 4, "sustained backlog reaches max");
        let fixed = sim(&stream, Policy::Fifo, 1, &costs);
        assert!(
            outcome.latency_percentile_s(99.0) < fixed.latency_percentile_s(99.0),
            "bought capacity must buy latency"
        );
        // Makespan shrank, so the autoscaled run can still cost less in
        // shard-seconds than the slow fixed run; what matters is that the
        // cost metric reflects the provisioned capacity, not the spec size.
        assert!(outcome.shard_seconds() > outcome.makespan_s, "more than one shard on average");
        assert!((fixed.shard_seconds() - fixed.makespan_s).abs() < 1e-9, "fixed fleet: 1 shard");
    }

    #[test]
    fn bounded_queues_shed_and_cap_the_backlog() {
        // Eight simultaneous arrivals against a bound of 2: the first two
        // admit, the rest shed with the sentinel latency — and the shed
        // requests never occupy the queue or a shard.
        let stream: Vec<Request> = (0..8).map(|i| request(i, 0.0, 0)).collect();
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_queue_bound(2);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.offered(), 8);
        assert_eq!(outcome.requests(), 2, "bound 2 admits exactly two simultaneous arrivals");
        assert_eq!(outcome.shed, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(outcome.shed_queue, 6);
        assert_eq!(outcome.shed_limit, 0);
        assert!((outcome.shed_rate() - 0.75).abs() < 1e-12);
        assert!(outcome.queue_depth_max <= 2, "the bound caps the backlog");
        for &id in &outcome.shed {
            assert_eq!(outcome.latencies_s[id], SHED_LATENCY_S);
        }
        // Served-only metrics ignore the sentinel.
        assert!(outcome.latency_percentile_s(99.0) <= 2.0 + 1e-12);
        assert_eq!(outcome.max_in_flight(), 2);
        let sum: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        assert_eq!(sum as usize + outcome.shed.len(), outcome.offered(), "exactly-once");
    }

    #[test]
    fn tenant_rate_limits_bound_admitted_throughput() {
        // One tenant limited to 1 rps (burst = 1 token): of ten arrivals
        // over 0.9 s only the first fits — the bucket refills too slowly
        // for the rest.
        let mix = TenantMix::new(vec![TenantSpec {
            name: "free".to_string(),
            weight: 1.0,
            rate_limit_rps: Some(1.0),
            slo_s: None,
        }]);
        let stream: Vec<Request> = (0..10).map(|i| request(i, 0.1 * i as f64, 0)).collect();
        let costs = unit_costs();
        let groups = tile16_fleet(4);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_tenants(&mix);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.requests(), 1);
        assert_eq!(outcome.shed_limit, 9);
        assert_eq!(outcome.shed_queue, 0);
        assert_eq!(outcome.tenant_outcomes.len(), 1);
        assert_eq!(outcome.tenant_outcomes[0].name, "free");
        assert_eq!(outcome.tenant_outcomes[0].offered, 10);
        assert_eq!(outcome.tenant_outcomes[0].shed, 9);
        // The general bound: admitted <= burst + rate x elapsed.
        let admitted = outcome.requests() as f64;
        assert!(admitted <= 1.0 + 1.0 * 0.9 + 1e-9);
    }

    #[test]
    fn closed_loops_bypass_admission() {
        // A queue bound of zero would shed every open-loop arrival; the
        // closed loop's clients instead just wait their turn.
        let workload = Workload::Closed(ClosedLoopSpec {
            clients: 2,
            think_s: 0.0,
            duration_s: 5.0,
            mix_size: 1,
            shrinks: vec![1],
            seed: 3,
        });
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_queue_bound(0);
        let outcome = simulate_config(&workload, &cfg);
        assert!(outcome.requests() > 0);
        assert!(outcome.shed.is_empty(), "closed-loop clients are never shed");
    }

    #[test]
    fn crashes_redispatch_in_flight_work_exactly_once() {
        // Two 10 s requests occupy both shards from t=0; one crash lands
        // somewhere in [0, 1) and its victim's request re-dispatches on
        // the survivor — every request still completes exactly once.
        let stream = [request(0, 0.0, 0), request(1, 0.0, 0)];
        let mut costs = unit_costs();
        let fp = costs.register(&ChipConfig::tile_16());
        costs.insert(
            &fp,
            RequestClass { dataset: 2, shrink: 1 },
            ClassCost { cycles: 10_000_000_000, flops: 100 },
        );
        let stream = [
            Request { class: RequestClass { dataset: 2, shrink: 1 }, ..stream[0] },
            Request { class: RequestClass { dataset: 2, shrink: 1 }, ..stream[1] },
        ];
        let faults = FaultSpec::new(11, 1.0).with_crashes(1);
        let groups = tile16_fleet(2);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert_eq!(outcome.crash_events.len(), 1);
        let crash = outcome.crash_events[0];
        assert!(crash.at_s < 1.0);
        assert_eq!(crash.redispatched, 1, "the victim was mid-batch");
        assert_eq!(outcome.requests(), 2, "both requests still complete");
        assert!(outcome.shed.is_empty(), "admitted work is never shed");
        assert!(outcome.latencies_s.iter().all(|&l| l >= 0.0));
        let sum: u64 = outcome.shard_stats.iter().map(|s| s.requests).sum();
        assert_eq!(sum, 2, "the crashed dispatch was retracted from the books");
        // The redispatched request waited for the survivor: latency > 10 s.
        assert!(outcome.latencies_s.iter().any(|&l| l > 10.0));
        // Determinism: the sentinel-free outcome compares bit-for-bit.
        assert_eq!(outcome, simulate_stream_config(&stream, &cfg));
    }

    #[test]
    fn failed_provisioning_keeps_the_fleet_small_and_counts() {
        let stream: Vec<Request> = (0..20).map(|i| request(i, 0.0, 0)).collect();
        let policy = AutoscalePolicy::new(1, 4)
            .with_check_interval_s(0.5)
            .with_provision_delay_s(1.0)
            .with_up_backlog_per_shard(2.0);
        let costs = unit_costs();
        let faults = FaultSpec::new(1, 1.0).with_provision_fail(1.0);
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_autoscale(&policy)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert!(outcome.provision_failures > 0, "every scheduled scale-up failed");
        assert!(outcome.scale_events.is_empty(), "no change ever landed");
        assert_eq!(outcome.group_stats[0].peak_active, 1);
        assert_eq!(outcome.requests(), 20, "the lone shard still drains the backlog");
    }

    #[test]
    fn degraded_groups_serve_slower() {
        let stream = [request(0, 0.0, 0)];
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let faults = FaultSpec::new(1, 1.0).with_degraded(0, 2.0);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_faults(&faults);
        let outcome = simulate_stream_config(&stream, &cfg);
        assert!((outcome.latencies_s[0] - 2.0).abs() < 1e-12, "2x multiplier on 1 s of service");
        let healthy = sim(&stream, Policy::Fifo, 1, &costs);
        assert!((healthy.latencies_s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shaped_workloads_simulate_with_their_own_tenants() {
        let shaped = ShapedStream {
            base: StreamSpec {
                arrival: ArrivalProcess::Poisson,
                rps: 20.0,
                duration_s: 2.0,
                mix_size: 1,
                shrinks: vec![1],
                seed: 7,
            },
            shapes: vec![RateShape::Diurnal { cycles: 2.0, depth: 0.5 }],
            tenants: Some(TenantMix::new(vec![
                TenantSpec { name: "a".into(), weight: 1.0, rate_limit_rps: None, slo_s: None },
                TenantSpec { name: "b".into(), weight: 1.0, rate_limit_rps: None, slo_s: None },
            ])),
        };
        let workload = Workload::Shaped(shaped);
        let outcome = simulate(
            &workload,
            Policy::Fifo,
            &tile16_fleet(8),
            DispatchKind::LeastLoaded,
            None,
            &unit_costs(),
        );
        assert!(outcome.requests() > 0);
        assert_eq!(outcome.tenant_outcomes.len(), 2, "the stream's mix reaches the accounting");
        assert!(outcome.tenants.contains(&1), "both tenants offer traffic");
        let offered: u64 = outcome.tenant_outcomes.iter().map(|t| t.offered).sum();
        assert_eq!(offered as usize, outcome.offered());
        assert_eq!(
            outcome,
            simulate(
                &workload,
                Policy::Fifo,
                &tile16_fleet(8),
                DispatchKind::LeastLoaded,
                None,
                &unit_costs(),
            )
        );
    }

    #[test]
    fn records_carry_tails_groups_shards_and_cost() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 1)];
        let outcome = sim(&stream, Policy::Fifo, 2, &unit_costs());
        let params = vec![("policy".to_string(), "fifo".to_string())];
        let records = outcome.records("serve/demo", &params);
        assert_eq!(records.len(), 4, "one summary + one group + one record per shard");
        let summary = &records[0];
        assert_eq!(summary.id, "serve/demo/summary");
        assert!(summary.metric_value("p99_latency_ms").unwrap() > 0.0);
        assert!(summary.metric_value("throughput_rps").unwrap() > 0.0);
        assert!(summary.metric_value("shard_seconds").unwrap() > 0.0);
        assert!(summary.metric_value("max_in_flight").is_some());
        assert_eq!(summary.metric_value("offered"), Some(2.0));
        assert_eq!(summary.metric_value("shed_rate"), Some(0.0));
        assert_eq!(summary.metric_value("crashes"), Some(0.0));
        assert_eq!(summary.metric_value("provision_failures"), Some(0.0));
        assert_eq!(summary.params, params);
        assert_eq!(records[1].id, "serve/demo/group/t16");
        assert!(records[1].metric_value("utilization").is_some());
        assert!(records[1].metric_value("shard_seconds").is_some());
        assert!(records[1].metric_value("peak_active_shards").is_some());
        assert_eq!(records[2].id, "serve/demo/shard0");
        assert!(records[3].params.contains(&("shard".to_string(), "1".to_string())));
        assert!(records[3].params.contains(&("group".to_string(), "0".to_string())));
    }

    #[test]
    fn tenant_records_report_admission_and_slo_attainment() {
        let mix = TenantMix::new(vec![TenantSpec {
            name: "gold".to_string(),
            weight: 1.0,
            rate_limit_rps: None,
            slo_s: Some(1.5),
        }]);
        let stream = [request(0, 0.0, 0), request(1, 0.0, 0)];
        let costs = unit_costs();
        let groups = tile16_fleet(1);
        let cfg = ServeConfig::new(Policy::Fifo, &groups, DispatchKind::LeastLoaded, &costs)
            .with_tenants(&mix);
        let outcome = simulate_stream_config(&stream, &cfg);
        let records = outcome.records("serve/demo", &[]);
        let tenant = records.iter().find(|r| r.id == "serve/demo/tenant/gold").expect("present");
        assert_eq!(tenant.metric_value("offered"), Some(2.0));
        assert_eq!(tenant.metric_value("admitted"), Some(2.0));
        // Latencies are 1.0 and 2.0 against a 1.5 s SLO: 50% attainment.
        assert_eq!(tenant.metric_value("slo_attainment"), Some(0.5));
        assert!(tenant.params.contains(&("tenant".to_string(), "gold".to_string())));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let outcome = ServeOutcome {
            latencies_s: vec![4.0, 1.0, 3.0, 2.0, SHED_LATENCY_S],
            arrivals_s: vec![0.0; 5],
            tenants: vec![0; 5],
            shed: vec![4],
            shed_queue: 1,
            shed_limit: 0,
            tenant_outcomes: Vec::new(),
            crash_events: Vec::new(),
            provision_failures: 0,
            makespan_s: 4.0,
            queue_depth_mean: 0.0,
            queue_depth_max: 0,
            batch_sizes: vec![1; 4],
            shard_stats: vec![ShardStats::default()],
            shard_groups: vec![0],
            group_stats: Vec::new(),
            scale_events: Vec::new(),
        };
        assert_eq!(outcome.latency_percentile_s(50.0), 2.0, "the shed sentinel is excluded");
        assert_eq!(outcome.latency_percentile_s(75.0), 3.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 4.0);
        assert_eq!(outcome.latency_percentile_s(100.0), 4.0);
        assert_eq!(outcome.requests(), 4);
        assert_eq!(outcome.offered(), 5);
        assert!((outcome.shed_rate() - 0.2).abs() < 1e-12);
        assert!((outcome.mean_latency_s() - 2.5).abs() < 1e-12);
    }
}
