//! The event-driven serving simulation and its metrics.
//!
//! [`simulate`] replays one scenario: a pre-generated request stream flows
//! into a central backlog, the scheduling [`Policy`] turns the backlog into
//! dispatch units (single requests for FIFO/SJF, per-class batches for the
//! batching policy), and each unit is charged its memoised service time on
//! the least-loaded idle shard of a [`ShardFleet`]. The loop advances
//! through a deterministic event sequence — next arrival, next shard
//! becoming free, next batch timeout — so the outcome is a pure function of
//! `(stream, policy, shards, costs)`; nothing about wall-clock time or
//! thread scheduling can leak into the metrics.

use std::collections::{BTreeMap, VecDeque};

use neura_lab::RunRecord;

use crate::arrivals::Request;
use crate::cost::{CostTable, RequestClass};
use crate::fleet::{ShardFleet, ShardStats};
use crate::policy::Policy;

/// Everything one scenario replay measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival) in seconds, id-ordered.
    pub latencies_s: Vec<f64>,
    /// Time of the last batch completion (0 for an empty stream).
    pub makespan_s: f64,
    /// Time-weighted mean backlog depth over the makespan.
    pub queue_depth_mean: f64,
    /// Largest backlog depth observed at any event.
    pub queue_depth_max: usize,
    /// Size of every dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
    /// Per-shard counters.
    pub shard_stats: Vec<ShardStats>,
}

impl ServeOutcome {
    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.latencies_s.len()
    }

    /// Latency percentile in seconds (nearest-rank; 0 for an empty stream).
    ///
    /// Sorts the latency vector per call — when reading several
    /// percentiles, use [`Self::latency_percentiles_s`] to sort once.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct ≤ 100`.
    pub fn latency_percentile_s(&self, pct: f64) -> f64 {
        self.latency_percentiles_s(&[pct])[0]
    }

    /// Several latency percentiles in seconds from a single sort
    /// (nearest-rank; 0 for an empty stream).
    ///
    /// # Panics
    ///
    /// Panics unless every percentile is within `(0, 100]`.
    pub fn latency_percentiles_s(&self, pcts: &[f64]) -> Vec<f64> {
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        pcts.iter()
            .map(|&pct| {
                assert!(pct > 0.0 && pct <= 100.0, "percentile must be within (0, 100]");
                if sorted.is_empty() {
                    return 0.0;
                }
                let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            })
            .collect()
    }

    /// Mean latency in seconds (0 for an empty stream).
    pub fn mean_latency_s(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Sustained throughput: requests served per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.requests() as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// Mean dispatched batch size (0 when nothing was dispatched).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }

    /// Largest dispatched batch.
    pub fn max_batch_size(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Per-shard utilisation: busy seconds over the makespan.
    pub fn utilisations(&self) -> Vec<f64> {
        self.shard_stats
            .iter()
            .map(|s| if self.makespan_s > 0.0 { s.busy_s / self.makespan_s } else { 0.0 })
            .collect()
    }

    /// The artifact records describing this outcome: one scenario summary
    /// (tail latencies, throughput, queue depth, batching) followed by one
    /// record per shard (utilisation, busy time, served counts). `scope`
    /// prefixes every record ID and `params` is attached to each record.
    pub fn records(&self, scope: &str, params: &[(String, String)]) -> Vec<RunRecord> {
        let tails = self.latency_percentiles_s(&[50.0, 95.0, 99.0]);
        let mut summary = RunRecord::new(format!("{scope}/summary"))
            .metric("requests", self.requests() as f64)
            .unit_metric("p50_latency_ms", tails[0] * 1e3, "ms")
            .unit_metric("p95_latency_ms", tails[1] * 1e3, "ms")
            .unit_metric("p99_latency_ms", tails[2] * 1e3, "ms")
            .unit_metric("mean_latency_ms", self.mean_latency_s() * 1e3, "ms")
            .unit_metric("throughput_rps", self.throughput_rps(), "req/s")
            .unit_metric("makespan_s", self.makespan_s, "s")
            .metric("queue_depth_mean", self.queue_depth_mean)
            .metric("queue_depth_max", self.queue_depth_max as f64)
            .metric("batches", self.batch_sizes.len() as f64)
            .metric("mean_batch_size", self.mean_batch_size())
            .metric("max_batch_size", self.max_batch_size() as f64);
        summary.params = params.to_vec();
        let mut records = vec![summary];
        for (i, (stats, utilisation)) in
            self.shard_stats.iter().zip(self.utilisations()).enumerate()
        {
            let mut record = RunRecord::new(format!("{scope}/shard{i}"))
                .metric("utilization", utilisation)
                .unit_metric("busy_s", stats.busy_s, "s")
                .metric("batches", stats.batches as f64)
                .metric("requests", stats.requests as f64);
            record.params = params.to_vec();
            record.params.push(("shard".to_string(), i.to_string()));
            records.push(record);
        }
        records
    }
}

/// The central backlog, shaped by the policy.
enum Backlog {
    /// FIFO / SJF: one queue in arrival order.
    Single(VecDeque<usize>),
    /// Batching: one arrival-ordered queue per request class.
    Classed(BTreeMap<RequestClass, VecDeque<usize>>),
}

impl Backlog {
    fn new(policy: Policy) -> Self {
        match policy {
            Policy::Fifo | Policy::Sjf => Backlog::Single(VecDeque::new()),
            Policy::BatchByDataset { .. } => Backlog::Classed(BTreeMap::new()),
        }
    }

    fn push(&mut self, id: usize, class: RequestClass) {
        match self {
            Backlog::Single(queue) => queue.push_back(id),
            Backlog::Classed(queues) => queues.entry(class).or_default().push_back(id),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backlog::Single(queue) => queue.len(),
            Backlog::Classed(queues) => queues.values().map(VecDeque::len).sum(),
        }
    }

    /// Whether some dispatch unit is ready at `now`.
    fn has_ready(&self, now: f64, policy: Policy, requests: &[Request]) -> bool {
        match (self, policy) {
            (Backlog::Single(queue), _) => !queue.is_empty(),
            (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) => {
                queues.values().any(|q| class_ready(q, requests, max_batch, timeout_s, now))
            }
            (Backlog::Classed(_), _) => unreachable!("classed backlog implies batching policy"),
        }
    }

    /// The earliest future time at which a currently-unready unit becomes
    /// ready by timeout (batching policy only).
    fn next_deadline(&self, now: f64, policy: Policy, requests: &[Request]) -> Option<f64> {
        let (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) =
            (self, policy)
        else {
            return None;
        };
        queues
            .values()
            .filter(|q| !class_ready(q, requests, max_batch, timeout_s, now))
            .filter_map(|q| q.front().map(|&id| requests[id].arrival_s + timeout_s))
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
    }

    /// Removes and returns the next ready dispatch unit at `now`, if any.
    fn take_ready(
        &mut self,
        now: f64,
        policy: Policy,
        requests: &[Request],
        costs: &CostTable,
    ) -> Option<Vec<usize>> {
        match (self, policy) {
            (Backlog::Single(queue), Policy::Fifo) => queue.pop_front().map(|id| vec![id]),
            (Backlog::Single(queue), Policy::Sjf) => {
                // Smallest estimated work first; arrival order (the queue
                // order) breaks ties because `min_by_key` keeps the first
                // minimum.
                let pos = queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &id)| (costs.weight(requests[id].class), id))
                    .map(|(pos, _)| pos)?;
                queue.remove(pos).map(|id| vec![id])
            }
            (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) => {
                // Among ready classes, serve the one whose head request has
                // waited longest (ties broken by class order — the BTreeMap
                // key order — so selection is deterministic).
                let class = queues
                    .iter()
                    .filter(|(_, q)| class_ready(q, requests, max_batch, timeout_s, now))
                    .min_by(|(ca, qa), (cb, qb)| {
                        let (ha, hb) = (head_arrival(qa, requests), head_arrival(qb, requests));
                        ha.partial_cmp(&hb).expect("arrival times are finite").then(ca.cmp(cb))
                    })
                    .map(|(class, _)| *class)?;
                let queue = queues.get_mut(&class).expect("selected class is present");
                let take = queue.len().min(max_batch);
                let batch: Vec<usize> = queue.drain(..take).collect();
                if queue.is_empty() {
                    queues.remove(&class);
                }
                Some(batch)
            }
            _ => unreachable!("backlog shape always matches the policy"),
        }
    }
}

fn head_arrival(queue: &VecDeque<usize>, requests: &[Request]) -> f64 {
    queue.front().map(|&id| requests[id].arrival_s).unwrap_or(f64::INFINITY)
}

fn class_ready(
    queue: &VecDeque<usize>,
    requests: &[Request],
    max_batch: usize,
    timeout_s: f64,
    now: f64,
) -> bool {
    queue.len() >= max_batch || head_arrival(queue, requests) + timeout_s <= now
}

/// Replays one serving scenario and returns its metrics.
///
/// `requests` must be sorted by arrival time (as [`StreamSpec::generate`]
/// produces them) and every request class must be memoised in `costs`.
///
/// [`StreamSpec::generate`]: crate::arrivals::StreamSpec::generate
///
/// # Panics
///
/// Panics when the stream is unsorted, a request class is missing from the
/// cost table, or `shards == 0`.
pub fn simulate(
    requests: &[Request],
    policy: Policy,
    shards: usize,
    costs: &CostTable,
) -> ServeOutcome {
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "request streams must be sorted by arrival time"
    );
    let n = requests.len();
    let mut fleet = ShardFleet::new(shards);
    let mut backlog = Backlog::new(policy);
    let mut latencies = vec![f64::NAN; n];
    let mut batch_sizes = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut depth_integral = 0.0f64;
    let mut depth_max = 0usize;

    loop {
        // Dispatch every unit that is ready while an idle shard exists.
        while let Some(shard) = fleet.idle_shard(now) {
            let Some(batch) = backlog.take_ready(now, policy, requests, costs) else {
                break;
            };
            let class = requests[batch[0]].class;
            let finish = fleet.dispatch(
                shard,
                now,
                costs.service_seconds(class, batch.len()),
                batch.len() as u64,
            );
            for &id in &batch {
                latencies[id] = finish - requests[id].arrival_s;
            }
            makespan = makespan.max(finish);
            batch_sizes.push(batch.len());
        }

        // The next event: an arrival, a shard freeing up (only relevant
        // while a ready unit waits), or a batch timeout expiring. After the
        // dispatch loop each of these lies strictly in the future, so every
        // iteration advances time.
        let mut t_next = f64::INFINITY;
        if next_arrival < n {
            t_next = t_next.min(requests[next_arrival].arrival_s);
        }
        if backlog.has_ready(now, policy, requests) {
            t_next = t_next.min(fleet.next_free_at());
        }
        if let Some(deadline) = backlog.next_deadline(now, policy, requests) {
            t_next = t_next.min(deadline);
        }
        if !t_next.is_finite() {
            break;
        }
        depth_integral += backlog.len() as f64 * (t_next - now);
        now = t_next;
        while next_arrival < n && requests[next_arrival].arrival_s <= now {
            backlog.push(next_arrival, requests[next_arrival].class);
            next_arrival += 1;
        }
        depth_max = depth_max.max(backlog.len());
    }

    debug_assert!(latencies.iter().all(|l| l.is_finite()), "every request is served");
    ServeOutcome {
        latencies_s: latencies,
        makespan_s: makespan,
        queue_depth_mean: if makespan > 0.0 { depth_integral / makespan } else { 0.0 },
        queue_depth_max: depth_max,
        batch_sizes,
        shard_stats: fleet.stats().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ClassCost;

    /// One class, one second of service per request, 1 ns per "cycle".
    fn unit_costs() -> CostTable {
        let mut costs = CostTable::new(1e-9).with_marginal_fraction(0.5);
        costs.insert(
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000_000_000, flops: 10 },
        );
        costs.insert(
            RequestClass { dataset: 1, shrink: 1 },
            ClassCost { cycles: 500_000_000, flops: 5 },
        );
        costs
    }

    fn request(id: usize, arrival_s: f64, dataset: usize) -> Request {
        Request { id, arrival_s, class: RequestClass { dataset, shrink: 1 } }
    }

    #[test]
    fn fifo_on_one_shard_serialises_requests() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = simulate(&stream, Policy::Fifo, 1, &unit_costs());
        // Request 0: served 0.0–1.0 (latency 1.0); request 1 waits for the
        // shard, served 1.0–2.0 (latency 1.9).
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.9).abs() < 1e-12);
        assert!((outcome.makespan_s - 2.0).abs() < 1e-12);
        assert_eq!(outcome.batch_sizes, vec![1, 1]);
        assert_eq!(outcome.shard_stats[0].requests, 2);
        assert!((outcome.utilisations()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_second_shard_absorbs_the_queueing_delay() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 0)];
        let outcome = simulate(&stream, Policy::Fifo, 2, &unit_costs());
        assert!((outcome.latencies_s[0] - 1.0).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.0).abs() < 1e-12, "no wait on the idle shard");
        assert!((outcome.makespan_s - 1.1).abs() < 1e-12);
    }

    #[test]
    fn sjf_reorders_the_backlog_by_work() {
        // Both queued behind the in-flight request; the cheap dataset-1
        // request (0.5 s) jumps ahead of the earlier dataset-0 one.
        let stream = [request(0, 0.0, 0), request(1, 0.01, 0), request(2, 0.02, 1)];
        let outcome = simulate(&stream, Policy::Sjf, 1, &unit_costs());
        assert!((outcome.latencies_s[2] - (1.5 - 0.02)).abs() < 1e-12, "short job served first");
        assert!((outcome.latencies_s[1] - (2.5 - 0.01)).abs() < 1e-12, "long job served last");
    }

    #[test]
    fn batching_groups_same_class_requests_and_amortises_cost() {
        let stream = [request(0, 0.0, 0), request(1, 0.001, 0)];
        let outcome = simulate(&stream, Policy::batch(2, 1.0), 1, &unit_costs());
        // Both arrive before the batch fills at max_batch = 2; the batch of
        // two costs 1.0 * (1 + 0.5) = 1.5 s and dispatches at t = 0.001.
        assert_eq!(outcome.batch_sizes, vec![2]);
        assert!((outcome.latencies_s[0] - 1.501).abs() < 1e-12);
        assert!((outcome.latencies_s[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batches_flush_at_the_timeout() {
        let stream = [request(0, 0.0, 0)];
        let outcome = simulate(&stream, Policy::batch(8, 0.25), 1, &unit_costs());
        // The lone request waits out the 0.25 s timeout before dispatching.
        assert_eq!(outcome.batch_sizes, vec![1]);
        assert!((outcome.latencies_s[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_tracks_the_backlog() {
        let stream =
            [request(0, 0.0, 0), request(1, 0.1, 0), request(2, 0.1, 0), request(3, 0.1, 0)];
        let outcome = simulate(&stream, Policy::Fifo, 1, &unit_costs());
        assert_eq!(outcome.queue_depth_max, 3, "three requests queue behind the first");
        assert!(outcome.queue_depth_mean > 0.0);
    }

    #[test]
    fn empty_streams_produce_zeroed_metrics() {
        let outcome = simulate(&[], Policy::Fifo, 2, &unit_costs());
        assert_eq!(outcome.requests(), 0);
        assert_eq!(outcome.throughput_rps(), 0.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 0.0);
        assert_eq!(outcome.mean_batch_size(), 0.0);
    }

    #[test]
    fn records_carry_tail_latency_throughput_and_shard_utilisation() {
        let stream = [request(0, 0.0, 0), request(1, 0.1, 1)];
        let outcome = simulate(&stream, Policy::Fifo, 2, &unit_costs());
        let params = vec![("policy".to_string(), "fifo".to_string())];
        let records = outcome.records("serve/demo", &params);
        assert_eq!(records.len(), 3, "one summary + one record per shard");
        let summary = &records[0];
        assert_eq!(summary.id, "serve/demo/summary");
        assert!(summary.metric_value("p99_latency_ms").unwrap() > 0.0);
        assert!(summary.metric_value("throughput_rps").unwrap() > 0.0);
        assert_eq!(summary.params, params);
        assert_eq!(records[1].id, "serve/demo/shard0");
        assert!(records[1].metric_value("utilization").is_some());
        assert!(records[2].params.contains(&("shard".to_string(), "1".to_string())));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let outcome = ServeOutcome {
            latencies_s: vec![4.0, 1.0, 3.0, 2.0],
            makespan_s: 4.0,
            queue_depth_mean: 0.0,
            queue_depth_max: 0,
            batch_sizes: vec![1; 4],
            shard_stats: vec![ShardStats::default()],
        };
        assert_eq!(outcome.latency_percentile_s(50.0), 2.0);
        assert_eq!(outcome.latency_percentile_s(75.0), 3.0);
        assert_eq!(outcome.latency_percentile_s(99.0), 4.0);
        assert_eq!(outcome.latency_percentile_s(100.0), 4.0);
    }
}
