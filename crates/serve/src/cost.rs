//! The memoised batch cost model.
//!
//! Simulating every request of a stream cycle-by-cycle would make serving
//! experiments quadratically expensive, so the serving layer charges each
//! dispatched batch a *memoised* cycle cost: one cycle-level simulation per
//! distinct [`RequestClass`] (dataset of the mix × per-request shrink
//! factor), measured once up front on the fleet's `ChipConfig` and reused
//! for every batch of that class. Batching amortises operand traffic — every
//! request of a batch queries the same graph — so requests beyond the first
//! are charged only a marginal fraction of the single-request cost.

use std::collections::BTreeMap;

use neura_chip::config::ChipConfig;

/// The workload class of one request: which dataset of the serving mix it
/// queries (an index into the mix, not a name — the stream generator and
/// the queueing simulation never need the string) and how much the
/// per-request workload is shrunk relative to the full simulator workload
/// (1 = full size, 2 = half, … — the same fidelity ladder the auto-tuner
/// uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestClass {
    /// Index of the dataset in the serving mix.
    pub dataset: usize,
    /// Workload shrink factor of this request (≥ 1).
    pub shrink: usize,
}

/// Measured cost of serving a *single* request of one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassCost {
    /// Cycle cost of one request, from the cycle-level `neura_chip` run.
    pub cycles: u64,
    /// Floating-point operations of one request
    /// (`WorkloadProfile::flops`) — the shortest-job-first weight.
    pub flops: u64,
}

/// Fraction of the single-request cost charged to each request of a batch
/// beyond the first (operand fetch and program setup are shared across the
/// batch; accumulation work is not).
pub const DEFAULT_MARGINAL_BATCH_FRACTION: f64 = 0.5;

/// Memoised per-class costs plus the conversion from cycles to seconds.
#[derive(Debug, Clone)]
pub struct CostTable {
    seconds_per_cycle: f64,
    marginal_fraction: f64,
    costs: BTreeMap<RequestClass, ClassCost>,
}

impl CostTable {
    /// Creates an empty table converting cycles to seconds at the given
    /// rate, with the default marginal batch fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `seconds_per_cycle` is finite and positive.
    pub fn new(seconds_per_cycle: f64) -> Self {
        assert!(
            seconds_per_cycle.is_finite() && seconds_per_cycle > 0.0,
            "seconds per cycle must be finite and positive"
        );
        CostTable {
            seconds_per_cycle,
            marginal_fraction: DEFAULT_MARGINAL_BATCH_FRACTION,
            costs: BTreeMap::new(),
        }
    }

    /// Creates an empty table for a fleet of chips running `config`
    /// (cycles convert at [`ChipConfig::seconds_per_cycle`]).
    pub fn for_config(config: &ChipConfig) -> Self {
        Self::new(config.seconds_per_cycle())
    }

    /// Overrides the marginal batch fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    pub fn with_marginal_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "marginal batch fraction must be within [0, 1]");
        self.marginal_fraction = fraction;
        self
    }

    /// Records the measured cost of one class (replacing any previous entry).
    pub fn insert(&mut self, class: RequestClass, cost: ClassCost) {
        self.costs.insert(class, cost);
    }

    /// The measured cost of one class.
    ///
    /// # Panics
    ///
    /// Panics when the class was never measured: a missing entry means the
    /// stream and the memoisation phase disagree about the request mix,
    /// which must fail loudly rather than serve a request for free.
    pub fn cost(&self, class: RequestClass) -> ClassCost {
        *self
            .costs
            .get(&class)
            .unwrap_or_else(|| panic!("no memoised cost for request class {class:?}"))
    }

    /// Service time of a batch of `batch_size` same-class requests: the full
    /// single-request cost for the first request plus the marginal fraction
    /// for each additional one.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0` or the class is unknown.
    pub fn service_seconds(&self, class: RequestClass, batch_size: usize) -> f64 {
        assert!(batch_size >= 1, "a batch serves at least one request");
        let first = self.cost(class).cycles as f64 * self.seconds_per_cycle;
        first * (1.0 + self.marginal_fraction * (batch_size - 1) as f64)
    }

    /// The shortest-job-first weight of one request of a class.
    pub fn weight(&self, class: RequestClass) -> u64 {
        self.cost(class).flops
    }

    /// Number of memoised classes.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether no class has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The memoised classes and costs, in class order.
    pub fn entries(&self) -> impl Iterator<Item = (RequestClass, ClassCost)> + '_ {
        self.costs.iter().map(|(class, cost)| (*class, *cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CostTable {
        let mut t = CostTable::new(1e-9);
        t.insert(RequestClass { dataset: 0, shrink: 1 }, ClassCost { cycles: 1_000, flops: 50 });
        t
    }

    #[test]
    fn service_time_amortises_batched_requests() {
        let t = table().with_marginal_fraction(0.5);
        let class = RequestClass { dataset: 0, shrink: 1 };
        let one = t.service_seconds(class, 1);
        let four = t.service_seconds(class, 4);
        assert!((one - 1e-6).abs() < 1e-15);
        assert!((four - one * 2.5).abs() < 1e-15, "1 + 0.5 * 3 = 2.5x the single cost");
        assert!(four < 4.0 * one, "batching must be cheaper than serving separately");
    }

    #[test]
    fn zero_marginal_fraction_makes_batches_free_after_the_first() {
        let t = table().with_marginal_fraction(0.0);
        let class = RequestClass { dataset: 0, shrink: 1 };
        assert_eq!(t.service_seconds(class, 1), t.service_seconds(class, 8));
    }

    #[test]
    fn for_config_uses_the_chip_frequency() {
        let t = CostTable::for_config(&ChipConfig::tile_16());
        assert!(t.is_empty());
        let mut t = t;
        t.insert(
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000_000_000, flops: 1 },
        );
        // Tile-16 runs at 1 GHz, so a billion cycles is one second.
        let s = t.service_seconds(RequestClass { dataset: 0, shrink: 1 }, 1);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no memoised cost")]
    fn unknown_class_fails_loudly() {
        table().cost(RequestClass { dataset: 9, shrink: 1 });
    }

    #[test]
    fn entries_iterate_in_class_order() {
        let mut t = CostTable::new(1.0);
        t.insert(RequestClass { dataset: 1, shrink: 1 }, ClassCost { cycles: 2, flops: 2 });
        t.insert(RequestClass { dataset: 0, shrink: 2 }, ClassCost { cycles: 1, flops: 1 });
        let classes: Vec<RequestClass> = t.entries().map(|(c, _)| c).collect();
        assert_eq!(
            classes,
            vec![RequestClass { dataset: 0, shrink: 2 }, RequestClass { dataset: 1, shrink: 1 }]
        );
        assert_eq!(t.len(), 2);
    }
}
