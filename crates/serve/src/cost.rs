//! The memoised batch cost model.
//!
//! Simulating every request of a stream cycle-by-cycle would make serving
//! experiments quadratically expensive, so the serving layer charges each
//! dispatched batch a *memoised* cycle cost: one cycle-level simulation per
//! distinct *(chip fingerprint, [`RequestClass`])* pair, measured once up
//! front and reused for every batch of that class on every shard running
//! that silicon. Keying by [`ChipConfig::fingerprint`] rather than by fleet
//! group means a heterogeneous fleet whose groups share a configuration
//! never re-simulates the shared classes, and two groups with different
//! chips each get their own measured costs.
//!
//! Batching amortises operand traffic — every request of a batch queries
//! the same graph — so requests beyond the first are charged only a
//! marginal fraction of the single-request cost.
//!
//! Costs can be *priced* by either tier of the two-tier chip model (see
//! [`CostModel`]): the cycle-accurate simulator (the default truth
//! oracle), the closed-form [`neura_chip::analytic`] estimate (nanoseconds
//! per class, unlocking huge class counts), or a hybrid that anchors the
//! analytic estimate to one cycle measurement per fingerprint. The table
//! itself is pricing-agnostic — it stores whatever cycles the chosen
//! model produced.

use std::collections::BTreeMap;

use neura_chip::analytic::{AnalyticModel, WorkloadFeatures};
use neura_chip::config::ChipConfig;

/// The workload class of one request: which dataset of the serving mix it
/// queries (an index into the mix, not a name — the stream generator and
/// the queueing simulation never need the string) and how much the
/// per-request workload is shrunk relative to the full simulator workload
/// (1 = full size, 2 = half, … — the same fidelity ladder the auto-tuner
/// uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestClass {
    /// Index of the dataset in the serving mix.
    pub dataset: usize,
    /// Workload shrink factor of this request (≥ 1).
    pub shrink: usize,
}

/// Measured cost of serving a *single* request of one class on one chip
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassCost {
    /// Cycle cost of one request, from the cycle-level `neura_chip` run.
    pub cycles: u64,
    /// Floating-point operations of one request
    /// (`WorkloadProfile::flops`) — the shortest-job-first weight, a
    /// property of the workload alone (identical across chips).
    pub flops: u64,
}

/// Fraction of the single-request cost charged to each request of a batch
/// beyond the first (operand fetch and program setup are shared across the
/// batch; accumulation work is not).
pub const DEFAULT_MARGINAL_BATCH_FRACTION: f64 = 0.5;

/// Which tier of the two-tier chip model prices request classes into the
/// [`CostTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Every class is measured by a full cycle-level `neura_chip`
    /// simulation — the truth oracle and the default (artifacts are
    /// byte-identical to a build without the analytic tier).
    #[default]
    Cycle,
    /// Every class is priced by the closed-form
    /// [`neura_chip::analytic`] model — nanoseconds per class, within the
    /// pinned `xval` error bound of the oracle.
    Analytic,
    /// One cycle-level anchor measurement per chip fingerprint; the
    /// remaining classes are analytic estimates rescaled through the
    /// anchor's analytic-vs-measured ratio, correcting any systematic
    /// per-silicon bias at one simulation per fingerprint.
    Hybrid,
}

impl CostModel {
    /// Every pricing model, in flag order.
    pub const ALL: [CostModel; 3] = [CostModel::Cycle, CostModel::Analytic, CostModel::Hybrid];

    /// The flag spelling (`cycle` / `analytic` / `hybrid`).
    pub fn name(&self) -> &'static str {
        match self {
            CostModel::Cycle => "cycle",
            CostModel::Analytic => "analytic",
            CostModel::Hybrid => "hybrid",
        }
    }

    /// Parses a `--cost-model` flag value.
    pub fn parse(value: &str) -> Option<CostModel> {
        CostModel::ALL.into_iter().find(|model| model.name() == value)
    }
}

/// Prices one request class with the calibrated analytic model: estimated
/// cycles for the workload on `config`, exact flops from the symbolic
/// workload analysis (flops are a workload property, so the SJF weights
/// match the cycle path bit-for-bit).
pub fn analytic_class_cost(config: &ChipConfig, workload: &WorkloadFeatures) -> ClassCost {
    ClassCost {
        cycles: AnalyticModel::calibrated().class_cycles(config, workload),
        flops: workload.flops(),
    }
}

/// Rescales an analytic cycle estimate through a hybrid anchor: the ratio
/// of the anchor class's *measured* cycles to its *analytic* estimate on
/// the same silicon, applied to another class's analytic estimate.
/// Clamped to ≥ 1 cycle (the [`CostTable::insert`] invariant).
pub fn hybrid_scaled_cycles(estimate: u64, anchor_measured: u64, anchor_estimate: u64) -> u64 {
    let scale = anchor_measured as f64 / anchor_estimate.max(1) as f64;
    let scaled = (estimate as f64 * scale).round();
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        (scaled as u64).max(1)
    }
}

/// Memoised per-(fingerprint, class) costs plus the per-fingerprint
/// conversion from cycles to seconds.
///
/// A fingerprint must be registered (with its cycle time) before costs can
/// be inserted or queried under it; [`CostTable::register`] derives both
/// from a [`ChipConfig`], and `register_rate` exists for synthetic tables
/// in tests.
#[derive(Debug, Clone)]
pub struct CostTable {
    marginal_fraction: f64,
    /// Fingerprint → cycle time + per-class costs on that silicon. Nested
    /// (rather than keyed by `(String, RequestClass)` pairs) so the
    /// dispatch hot path looks costs up by `&str` without allocating.
    silicon: BTreeMap<String, FingerprintCosts>,
    /// Class → flops (chip-independent; the SJF weight).
    flops: BTreeMap<RequestClass, u64>,
}

/// One registered configuration's cycle time and measured class costs.
#[derive(Debug, Clone)]
struct FingerprintCosts {
    seconds_per_cycle: f64,
    costs: BTreeMap<RequestClass, ClassCost>,
}

impl Default for CostTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CostTable {
    /// Creates an empty table with the default marginal batch fraction.
    pub fn new() -> Self {
        CostTable {
            marginal_fraction: DEFAULT_MARGINAL_BATCH_FRACTION,
            silicon: BTreeMap::new(),
            flops: BTreeMap::new(),
        }
    }

    /// Overrides the marginal batch fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    pub fn with_marginal_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "marginal batch fraction must be within [0, 1]");
        self.marginal_fraction = fraction;
        self
    }

    /// Registers a chip configuration and returns its fingerprint — the key
    /// under which this configuration's class costs live. Registering the
    /// same configuration twice is a no-op returning the same key.
    pub fn register(&mut self, config: &ChipConfig) -> String {
        let fingerprint = config.fingerprint();
        self.register_rate(fingerprint.clone(), config.seconds_per_cycle());
        fingerprint
    }

    /// Registers a synthetic fingerprint with an explicit cycle time —
    /// tables in tests need not construct a full [`ChipConfig`].
    ///
    /// # Panics
    ///
    /// Panics unless `seconds_per_cycle` is finite and positive.
    pub fn register_rate(&mut self, fingerprint: impl Into<String>, seconds_per_cycle: f64) {
        assert!(
            seconds_per_cycle.is_finite() && seconds_per_cycle > 0.0,
            "seconds per cycle must be finite and positive"
        );
        self.silicon
            .entry(fingerprint.into())
            .or_insert(FingerprintCosts { seconds_per_cycle, costs: BTreeMap::new() })
            .seconds_per_cycle = seconds_per_cycle;
    }

    /// Whether a fingerprint has been registered.
    pub fn is_registered(&self, fingerprint: &str) -> bool {
        self.silicon.contains_key(fingerprint)
    }

    /// Whether the cost of a class has been measured under a fingerprint —
    /// the memoisation check: a mixed fleet only simulates the
    /// (fingerprint, class) pairs this returns `false` for.
    pub fn contains(&self, fingerprint: &str, class: RequestClass) -> bool {
        self.silicon.get(fingerprint).is_some_and(|entry| entry.costs.contains_key(&class))
    }

    /// Records the measured cost of one class under one fingerprint
    /// (replacing any previous entry).
    ///
    /// # Panics
    ///
    /// Panics when the fingerprint was never registered — a cost without a
    /// cycle time could never be converted to a service time.
    pub fn insert(&mut self, fingerprint: &str, class: RequestClass, cost: ClassCost) {
        let entry = self.silicon.get_mut(fingerprint).unwrap_or_else(|| {
            panic!("fingerprint {fingerprint:?} must be registered before costs are inserted")
        });
        // A zero-cycle request would serve in zero time, letting a
        // zero-think closed loop spin the event clock in place forever.
        assert!(cost.cycles >= 1, "a request costs at least one cycle");
        entry.costs.insert(class, cost);
        self.flops.insert(class, cost.flops);
    }

    /// The measured cost of one class under one fingerprint.
    ///
    /// # Panics
    ///
    /// Panics when the pair was never measured: a missing entry means the
    /// stream and the memoisation phase disagree about the request mix or
    /// the fleet, which must fail loudly rather than serve a request for
    /// free.
    pub fn cost(&self, fingerprint: &str, class: RequestClass) -> ClassCost {
        *self.silicon.get(fingerprint).and_then(|entry| entry.costs.get(&class)).unwrap_or_else(
            || panic!("no memoised cost for request class {class:?} under {fingerprint:?}"),
        )
    }

    /// Service time of a batch of `batch_size` same-class requests on a
    /// shard running the fingerprinted silicon: the full single-request cost
    /// for the first request plus the marginal fraction for each additional
    /// one.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0` or the pair is unknown.
    pub fn service_seconds(
        &self,
        fingerprint: &str,
        class: RequestClass,
        batch_size: usize,
    ) -> f64 {
        assert!(batch_size >= 1, "a batch serves at least one request");
        let entry = self
            .silicon
            .get(fingerprint)
            .unwrap_or_else(|| panic!("fingerprint {fingerprint:?} was never registered"));
        let cost = entry.costs.get(&class).unwrap_or_else(|| {
            panic!("no memoised cost for request class {class:?} under {fingerprint:?}")
        });
        let first = cost.cycles as f64 * entry.seconds_per_cycle;
        first * (1.0 + self.marginal_fraction * (batch_size - 1) as f64)
    }

    /// The shortest-job-first weight of one request of a class — its flops,
    /// a property of the workload, not of any chip.
    ///
    /// # Panics
    ///
    /// Panics when the class was never measured under any fingerprint.
    pub fn weight(&self, class: RequestClass) -> u64 {
        *self
            .flops
            .get(&class)
            .unwrap_or_else(|| panic!("no memoised weight for request class {class:?}"))
    }

    /// The flops of every memoised class, in class order — the basis for
    /// class-affinity dispatch's big/small split.
    pub fn class_weights(&self) -> impl Iterator<Item = (RequestClass, u64)> + '_ {
        self.flops.iter().map(|(class, flops)| (*class, *flops))
    }

    /// The median flops over all memoised classes (0 when none are
    /// measured): classes at or above it count as "big" for class-affinity
    /// dispatch.
    pub fn median_weight(&self) -> u64 {
        let weights: Vec<u64> = self.flops.values().copied().collect();
        if weights.is_empty() {
            return 0;
        }
        // flops BTreeMap values are not sorted by value; sort a copy.
        let mut sorted = weights;
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Number of memoised (fingerprint, class) entries.
    pub fn len(&self) -> usize {
        self.silicon.values().map(|entry| entry.costs.len()).sum()
    }

    /// Whether no cost has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.silicon.values().all(|entry| entry.costs.is_empty())
    }

    /// The memoised entries, in (fingerprint, class) order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, RequestClass, ClassCost)> + '_ {
        self.silicon.iter().flat_map(|(fp, entry)| {
            entry.costs.iter().map(move |(class, cost)| (fp.as_str(), *class, *cost))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: &str = "test-chip";

    fn table() -> CostTable {
        let mut t = CostTable::new();
        t.register_rate(FP, 1e-9);
        t.insert(
            FP,
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000, flops: 50 },
        );
        t
    }

    #[test]
    fn service_time_amortises_batched_requests() {
        let t = table().with_marginal_fraction(DEFAULT_MARGINAL_BATCH_FRACTION);
        let class = RequestClass { dataset: 0, shrink: 1 };
        let one = t.service_seconds(FP, class, 1);
        let four = t.service_seconds(FP, class, 4);
        assert!((one - 1e-6).abs() < 1e-15);
        assert!((four - one * 2.5).abs() < 1e-15, "1 + 0.5 * 3 = 2.5x the single cost");
        assert!(four < 4.0 * one, "batching must be cheaper than serving separately");
    }

    #[test]
    fn default_table_pins_the_marginal_batch_fraction() {
        // The default-constructed table must charge batches with the one
        // named constant — no duplicated 0.5 literals anywhere in the
        // serving path.
        assert_eq!(DEFAULT_MARGINAL_BATCH_FRACTION, 0.5);
        let t = table(); // CostTable::new(), no override
        let class = RequestClass { dataset: 0, shrink: 1 };
        let one = t.service_seconds(FP, class, 1);
        for batch in [2_usize, 3, 8] {
            let batched = t.service_seconds(FP, class, batch);
            let expected = one * (1.0 + DEFAULT_MARGINAL_BATCH_FRACTION * (batch - 1) as f64);
            assert!((batched - expected).abs() < 1e-15, "batch of {batch}");
        }
    }

    #[test]
    fn zero_marginal_fraction_makes_batches_free_after_the_first() {
        let t = table().with_marginal_fraction(0.0);
        let class = RequestClass { dataset: 0, shrink: 1 };
        assert_eq!(t.service_seconds(FP, class, 1), t.service_seconds(FP, class, 8));
    }

    #[test]
    fn register_uses_the_chip_frequency_and_fingerprint() {
        let config = ChipConfig::tile_16();
        let mut t = CostTable::new();
        let fp = t.register(&config);
        assert_eq!(fp, config.fingerprint());
        assert!(t.is_registered(&fp));
        t.insert(
            &fp,
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1_000_000_000, flops: 1 },
        );
        // Tile-16 runs at 1 GHz, so a billion cycles is one second.
        let s = t.service_seconds(&fp, RequestClass { dataset: 0, shrink: 1 }, 1);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_fingerprints_share_memoised_costs() {
        // Two groups running identical silicon memoise through one key.
        let mut t = CostTable::new();
        let a = t.register(&ChipConfig::tile_16());
        let b = t.register(&ChipConfig::tile_16());
        assert_eq!(a, b);
        let class = RequestClass { dataset: 0, shrink: 1 };
        t.insert(&a, class, ClassCost { cycles: 10, flops: 5 });
        assert!(t.contains(&b, class), "the second group sees the first group's measurement");
        assert_eq!(t.len(), 1);
        // ... while different silicon gets its own entries.
        let c = t.register(&ChipConfig::tile_64());
        assert!(!t.contains(&c, class));
    }

    #[test]
    #[should_panic(expected = "no memoised cost")]
    fn unknown_class_fails_loudly() {
        table().cost(FP, RequestClass { dataset: 9, shrink: 1 });
    }

    #[test]
    #[should_panic(expected = "must be registered")]
    fn inserting_under_an_unregistered_fingerprint_is_a_bug() {
        let mut t = CostTable::new();
        t.insert(
            "ghost",
            RequestClass { dataset: 0, shrink: 1 },
            ClassCost { cycles: 1, flops: 1 },
        );
    }

    #[test]
    fn weights_and_median_are_chip_independent() {
        let mut t = CostTable::new();
        t.register_rate("a", 1e-9);
        t.register_rate("b", 2e-9);
        let small = RequestClass { dataset: 0, shrink: 4 };
        let big = RequestClass { dataset: 0, shrink: 1 };
        t.insert("a", small, ClassCost { cycles: 10, flops: 25 });
        t.insert("a", big, ClassCost { cycles: 100, flops: 100 });
        t.insert("b", big, ClassCost { cycles: 60, flops: 100 });
        assert_eq!(t.weight(big), 100);
        assert_eq!(t.weight(small), 25);
        assert_eq!(t.median_weight(), 100, "median over classes, not entries");
        let classes: Vec<RequestClass> = t.class_weights().map(|(c, _)| c).collect();
        assert_eq!(classes, vec![big, small], "class order: shrink 1 sorts before shrink 4");
    }

    #[test]
    fn cost_model_names_round_trip() {
        for model in CostModel::ALL {
            assert_eq!(CostModel::parse(model.name()), Some(model));
        }
        assert_eq!(CostModel::parse("oracle"), None);
        assert_eq!(CostModel::default(), CostModel::Cycle);
    }

    #[test]
    fn analytic_costs_are_insertable_and_carry_exact_flops() {
        let workload = WorkloadFeatures {
            rows: 500,
            nnz: 4_000,
            partial_products: 90_000,
            output_nnz: 30_000,
            max_row_pp: 1_200,
            active_cols: 480,
            mmh_instructions: [4_000, 2_200, 1_300, 800],
        };
        let config = ChipConfig::tile_16();
        let cost = analytic_class_cost(&config, &workload);
        assert!(cost.cycles >= 1);
        assert_eq!(cost.flops, workload.flops(), "SJF weights match the cycle path exactly");
        let mut t = CostTable::new();
        let fp = t.register(&config);
        t.insert(&fp, RequestClass { dataset: 0, shrink: 1 }, cost);
        assert!(t.service_seconds(&fp, RequestClass { dataset: 0, shrink: 1 }, 1) > 0.0);
    }

    #[test]
    fn hybrid_scaling_corrects_through_the_anchor() {
        // Anchor measured at 2x its estimate => every estimate doubles.
        assert_eq!(hybrid_scaled_cycles(500, 2_000, 1_000), 1_000);
        // Perfect anchor => estimates pass through unchanged.
        assert_eq!(hybrid_scaled_cycles(500, 1_000, 1_000), 500);
        // Never below the one-cycle floor, even for tiny scaled values.
        assert_eq!(hybrid_scaled_cycles(1, 1, 1_000_000), 1);
    }

    #[test]
    fn entries_iterate_in_fingerprint_then_class_order() {
        let mut t = CostTable::new();
        t.register_rate("b", 1.0);
        t.register_rate("a", 1.0);
        t.insert("b", RequestClass { dataset: 0, shrink: 1 }, ClassCost { cycles: 2, flops: 2 });
        t.insert("a", RequestClass { dataset: 1, shrink: 1 }, ClassCost { cycles: 1, flops: 1 });
        let keys: Vec<(&str, RequestClass)> = t.entries().map(|(fp, c, _)| (fp, c)).collect();
        assert_eq!(
            keys,
            vec![
                ("a", RequestClass { dataset: 1, shrink: 1 }),
                ("b", RequestClass { dataset: 0, shrink: 1 })
            ]
        );
        assert_eq!(t.len(), 2);
    }
}
