//! Elastic fleets: a queue-depth controller that grows and shrinks the
//! shard count at runtime.
//!
//! Real serving fleets are not fixed-size: capacity is provisioned when
//! the backlog builds and retired when it drains, and every provisioned
//! shard-second costs money whether or not it is busy. An
//! [`AutoscalePolicy`] describes the controller: per-group shard bounds, a
//! decision interval, a backlog-per-shard threshold and — crucially — a
//! *provisioning delay*: a scale decision made at time *t* only takes
//! effect at *t + delay*, which is what makes autoscaling a real trade-off
//! (by the time capacity arrives, the burst may be over). The simulation
//! reports the resulting shard-seconds cost next to the p99 latency it
//! bought (see [`crate::sim::ServeOutcome`]).
//!
//! The controller itself is deliberately simple and fully deterministic:
//!
//! - **Scale up** when the backlog exceeds `up_backlog_per_shard x active`
//!   and the fleet is below its maximum: one shard, added to the group
//!   with the highest busy fraction (ties to the lowest group index).
//! - **Scale down** when the backlog is empty, an active shard is idle and
//!   the fleet is above its minimum: one shard, removed from the group
//!   with the most idle active shards (ties to the highest group index).
//!   The removal is also scheduled `provision_delay_s` ahead
//!   (decommissioning has lead time too) and is *cancelled* if no shard of
//!   the chosen group is idle when it falls due — capacity never vanishes
//!   mid-batch.

use crate::fleet::ShardFleet;

/// The autoscaling controller's knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    /// Lower bound on each group's active shard count.
    pub min_shards: usize,
    /// Upper bound on each group's active shard count (the capacity the
    /// fleet pre-allocates slots for).
    pub max_shards: usize,
    /// Seconds between a scale decision and its effect.
    pub provision_delay_s: f64,
    /// Seconds between controller decisions.
    pub check_interval_s: f64,
    /// Scale up when `backlog > up_backlog_per_shard x active shards`.
    pub up_backlog_per_shard: f64,
}

impl AutoscalePolicy {
    /// A controller scaling each group between `min` and `max` shards.
    ///
    /// Defaults: decisions every 10 ms, a 50 ms provisioning delay and a
    /// scale-up threshold of 4 queued requests per active shard — override
    /// with the builders (the `serve` binary derives interval and delay
    /// from the memoised mean service time so they stay meaningful at
    /// every scale multiplier).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ min ≤ max`.
    pub fn new(min_shards: usize, max_shards: usize) -> Self {
        assert!(min_shards >= 1, "a group keeps at least one shard");
        assert!(min_shards <= max_shards, "min shards must not exceed max shards");
        AutoscalePolicy {
            min_shards,
            max_shards,
            provision_delay_s: 0.05,
            check_interval_s: 0.01,
            up_backlog_per_shard: 4.0,
        }
    }

    /// Overrides the provisioning delay (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the delay is finite and non-negative.
    pub fn with_provision_delay_s(mut self, delay_s: f64) -> Self {
        assert!(delay_s.is_finite() && delay_s >= 0.0, "provisioning delay must be non-negative");
        self.provision_delay_s = delay_s;
        self
    }

    /// Overrides the decision interval (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the interval is finite and positive.
    pub fn with_check_interval_s(mut self, interval_s: f64) -> Self {
        assert!(
            interval_s.is_finite() && interval_s > 0.0,
            "decision interval must be finite and positive"
        );
        self.check_interval_s = interval_s;
        self
    }

    /// Overrides the scale-up threshold (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the threshold is finite and positive.
    pub fn with_up_backlog_per_shard(mut self, backlog: f64) -> Self {
        assert!(
            backlog.is_finite() && backlog > 0.0,
            "scale-up threshold must be finite and positive"
        );
        self.up_backlog_per_shard = backlog;
        self
    }

    /// The stable ID fragment of this controller (`as1-4`), used in
    /// scenario IDs.
    pub fn id(&self) -> String {
        format!("as{}-{}", self.min_shards, self.max_shards)
    }

    /// The controller's decision at one check: grow, shrink or hold.
    /// `pending` is the *per-group* net effect of decisions already in
    /// flight (+1 per scheduled activation, −1 per scheduled
    /// deactivation), so the controller never over-commits a group while
    /// its capacity is provisioning — the `[min, max]` bounds hold per
    /// group even when several decisions are airborne at once.
    ///
    /// # Panics
    ///
    /// Panics unless `pending` has one entry per fleet group.
    pub fn decide(
        &self,
        fleet: &ShardFleet,
        backlog: usize,
        now: f64,
        pending: &[i64],
    ) -> Decision {
        assert_eq!(pending.len(), fleet.group_count(), "one pending count per group");
        let committed = |g: usize| fleet.active_in_group(g) as i64 + pending[g];
        let active: i64 = (0..fleet.group_count()).map(committed).sum();
        if backlog as f64 > self.up_backlog_per_shard * active.max(1) as f64 {
            if let Some(group) = self.scale_up_group(fleet, now, pending) {
                return Decision::Up { group };
            }
        }
        if backlog == 0 && !fleet.idle_shards(now).is_empty() {
            if let Some(group) = self.scale_down_group(fleet, now, pending) {
                return Decision::Down { group };
            }
        }
        Decision::Hold
    }

    /// The group receiving a new shard: highest busy fraction among groups
    /// whose committed count (active + pending) is below `max_shards`,
    /// ties to the lowest index.
    fn scale_up_group(&self, fleet: &ShardFleet, now: f64, pending: &[i64]) -> Option<usize> {
        (0..fleet.group_count())
            .filter(|&g| fleet.active_in_group(g) as i64 + pending[g] < self.max_shards as i64)
            .max_by(|&a, &b| {
                let fa = busy_fraction(fleet, a, now);
                let fb = busy_fraction(fleet, b, now);
                fa.partial_cmp(&fb).expect("busy fractions are finite").then(b.cmp(&a))
            })
    }

    /// Executes one scheduled scale-down at its effect time: re-checks the
    /// per-group floor (the group's population may have changed since the
    /// decision — a crash may have removed capacity the controller thought
    /// it was shedding) and retires one idle shard through the same fleet
    /// removal path a crash takes. Returns the retired slot, or `None`
    /// when the removal is cancelled — because the group already sits at
    /// its floor, or no shard of the group is idle any more (capacity
    /// never vanishes mid-batch; forced removal is
    /// [`ShardFleet::crash`]'s job, not the controller's).
    pub fn retire_idle(&self, fleet: &mut ShardFleet, group: usize, now: f64) -> Option<usize> {
        if fleet.active_in_group(group) <= self.min_shards {
            return None;
        }
        fleet.deactivate_idle(group, now)
    }

    /// The group losing a shard: most idle active shards among groups
    /// whose committed count (active + pending) is above `min_shards`,
    /// ties to the highest index.
    fn scale_down_group(&self, fleet: &ShardFleet, now: f64, pending: &[i64]) -> Option<usize> {
        (0..fleet.group_count())
            .filter(|&g| fleet.active_in_group(g) as i64 + pending[g] > self.min_shards as i64)
            .max_by(|&a, &b| {
                let ia = idle_in_group(fleet, a, now);
                let ib = idle_in_group(fleet, b, now);
                ia.cmp(&ib).then(a.cmp(&b))
            })
    }
}

fn busy_fraction(fleet: &ShardFleet, group: usize, now: f64) -> f64 {
    let active = fleet.active_in_group(group);
    if active == 0 {
        return 0.0;
    }
    let idle = idle_in_group(fleet, group, now);
    (active - idle) as f64 / active as f64
}

fn idle_in_group(fleet: &ShardFleet, group: usize, now: f64) -> usize {
    fleet.idle_shards(now).into_iter().filter(|&s| fleet.group_of(s) == group).count()
}

/// One controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the fleet as it is.
    Hold,
    /// Provision one shard in `group` (effective after the delay).
    Up {
        /// The growing group.
        group: usize,
    },
    /// Retire one idle shard of `group` (effective after the delay).
    Down {
        /// The shrinking group.
        group: usize,
    },
}

/// One executed fleet-size change, as reported in the outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// When the controller decided.
    pub decision_s: f64,
    /// When the change took effect (`decision_s + provision_delay_s`).
    pub effect_s: f64,
    /// The group that changed.
    pub group: usize,
    /// +1 (provisioned) or −1 (retired).
    pub delta: i64,
    /// Total active shards across the fleet after the change.
    pub active_total: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ShardGroup;
    use neura_chip::config::ChipConfig;

    fn fleet() -> ShardFleet {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 1)];
        ShardFleet::new(&groups, Some(&[4]))
    }

    #[test]
    fn backlog_above_threshold_scales_up_until_max() {
        let policy = AutoscalePolicy::new(1, 4);
        let mut f = fleet();
        assert_eq!(policy.decide(&f, 10, 0.0, &[0]), Decision::Up { group: 0 });
        // Pending activations count against the max.
        assert_eq!(policy.decide(&f, 100, 0.0, &[3]), Decision::Hold);
        f.activate(0, 0.0);
        f.activate(0, 0.0);
        f.activate(0, 0.0);
        assert_eq!(f.active_shards(), 4);
        assert_eq!(policy.decide(&f, 100, 0.0, &[0]), Decision::Hold, "at max");
    }

    #[test]
    fn empty_backlog_with_idle_capacity_scales_down_to_min() {
        let policy = AutoscalePolicy::new(1, 4);
        let mut f = fleet();
        f.activate(0, 0.0);
        assert_eq!(policy.decide(&f, 0, 0.0, &[0]), Decision::Down { group: 0 });
        // A pending deactivation already commits the group to its floor:
        // a second down decision before the first lands must hold.
        assert_eq!(policy.decide(&f, 0, 0.0, &[-1]), Decision::Hold);
        // A busy fleet never sheds capacity, even with an empty backlog.
        f.dispatch(0, 0.0, 5.0, 1);
        f.dispatch(1, 0.0, 5.0, 1);
        assert_eq!(policy.decide(&f, 0, 1.0, &[0]), Decision::Hold);
        // At the minimum, hold.
        let f = fleet();
        assert_eq!(policy.decide(&f, 0, 0.0, &[0]), Decision::Hold);
    }

    #[test]
    fn moderate_backlog_holds() {
        let policy = AutoscalePolicy::new(1, 4).with_up_backlog_per_shard(4.0);
        let f = fleet();
        assert_eq!(policy.decide(&f, 3, 0.0, &[0]), Decision::Hold, "3 <= 4 x 1 active");
    }

    #[test]
    fn per_group_pending_keeps_each_group_inside_its_own_bounds() {
        // Two groups, min 1 each. Group 1 has a deactivation in flight, so
        // even though the fleet-wide committed count (3) sits above the
        // fleet-wide floor (2), neither group may shed another shard:
        // group 1 is committed to its floor and group 0 is at it.
        let groups = vec![
            ShardGroup::new("a", ChipConfig::tile_16(), 1),
            ShardGroup::new("b", ChipConfig::tile_16(), 2),
        ];
        let f = ShardFleet::new(&groups, Some(&[4, 4]));
        let policy = AutoscalePolicy::new(1, 4);
        assert_eq!(policy.decide(&f, 0, 0.0, &[0, -1]), Decision::Hold);
        // Without the pending deactivation, group 1 is the right donor.
        assert_eq!(policy.decide(&f, 0, 0.0, &[0, 0]), Decision::Down { group: 1 });
        // Scale-up similarly respects per-group commitments: group 1 full
        // up with pendings, group 0 takes the shard.
        assert_eq!(policy.decide(&f, 100, 0.0, &[0, 2]), Decision::Up { group: 0 });
    }

    #[test]
    fn retire_idle_rechecks_the_floor_and_cancels_on_busy_groups() {
        let policy = AutoscalePolicy::new(1, 4);
        let mut f = fleet();
        f.activate(0, 0.0);
        assert_eq!(policy.retire_idle(&mut f, 0, 0.0), Some(1), "idle above the floor retires");
        assert_eq!(policy.retire_idle(&mut f, 0, 0.0), None, "at the floor the removal cancels");
        // Above the floor but mid-batch: the removal cancels rather than
        // killing in-flight work — that forced path is `crash`'s alone.
        f.activate(0, 0.0);
        f.dispatch(0, 0.0, 5.0, 1);
        f.dispatch(1, 0.0, 5.0, 1);
        assert_eq!(policy.retire_idle(&mut f, 0, 1.0), None);
        assert_eq!(f.active_shards(), 2);
    }

    #[test]
    fn a_crash_during_a_pending_scale_up_does_not_double_count_the_group() {
        // The controller decided Up (pending +1) at 2 active shards, then
        // one of them crashes before the effect lands. The committed count
        // the next decision sees must be 1 active + 1 pending = 2 — not 3 —
        // so with max 4 and a deep backlog the controller may still grow.
        let policy = AutoscalePolicy::new(1, 4).with_up_backlog_per_shard(2.0);
        let mut f = fleet();
        f.activate(0, 0.0);
        assert_eq!(f.active_in_group(0), 2);
        assert_eq!(policy.decide(&f, 100, 0.0, &[1]), Decision::Up { group: 0 });
        f.dispatch(0, 0.0, 5.0, 1);
        assert!(f.crash(0, 1.0, 1));
        assert_eq!(f.active_in_group(0), 1, "the crash removed exactly one active shard");
        // 100 > 2 x (1 active + 1 pending): still room below max, still Up.
        assert_eq!(policy.decide(&f, 100, 1.0, &[1]), Decision::Up { group: 0 });
        // The pending activation lands and may reuse the crashed slot —
        // the group ends at 2 active, never 3.
        assert_eq!(f.activate(0, 1.5), Some(0));
        assert_eq!(f.active_in_group(0), 2);
        assert_eq!(f.group_stats()[0].peak_active, 2, "no phantom third shard ever existed");
        // At max with pendings the controller holds, crash or no crash.
        assert_eq!(policy.decide(&f, 100, 1.5, &[2]), Decision::Hold);
    }

    #[test]
    fn ids_and_builders() {
        let policy = AutoscalePolicy::new(2, 8)
            .with_provision_delay_s(0.2)
            .with_check_interval_s(0.05)
            .with_up_backlog_per_shard(2.0);
        assert_eq!(policy.id(), "as2-8");
        assert!((policy.provision_delay_s - 0.2).abs() < 1e-12);
        assert!((policy.check_interval_s - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_bounds_are_rejected() {
        AutoscalePolicy::new(4, 2);
    }
}
