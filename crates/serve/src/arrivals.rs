//! Deterministic request generation: open-loop streams and closed-loop
//! client populations.
//!
//! A [`StreamSpec`] names an arrival process, a target rate, a duration and
//! the request mix; [`StreamSpec::generate`] expands it into a concrete,
//! time-sorted request list using the workspace's seeded `StdRng`, so the
//! same spec always produces the identical stream — the property every
//! serving A/B comparison (and the artifact byte-identity contract) rests
//! on. Two processes are modelled:
//!
//! - **Poisson** — memoryless open-loop traffic: exponential inter-arrival
//!   times at the target rate.
//! - **Bursty** — on/off-modulated Poisson traffic: arrivals are generated
//!   at `rate / BURST_ON_FRACTION` and kept only inside the "on" fraction
//!   of each [`BURST_PERIOD_S`] window, preserving the target *mean* rate
//!   while concentrating it into bursts (the worst case for tail latency).
//!
//! Open-loop arrivals ignore completions: the stream keeps coming however
//! slow the fleet is, which is right for aggregate internet traffic but
//! wrong for interactive users, who wait for a response before issuing the
//! next request. A [`ClosedLoopSpec`] models those: `clients` users, each
//! issuing one request, thinking for an exponential
//! [`think_s`](ClosedLoopSpec::think_s)-mean pause after its response, then
//! issuing the next — so at most `clients` requests are ever in flight and
//! offered load backs off under saturation. Closed-loop arrivals depend on
//! completions, so they cannot be pre-materialised; the simulation drives
//! them through an event source (see [`crate::sim`]) while each client's
//! draws come from its own seeded RNG stream, keeping the replay a pure
//! function of the spec regardless of service order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::RequestClass;

/// Fraction of each burst period during which a bursty stream admits
/// arrivals.
pub const BURST_ON_FRACTION: f64 = 0.25;

/// Upper bound on the on/off modulation period of a bursty stream, in
/// seconds. Streams shorter than [`BURST_PERIODS_MIN`] such periods shrink
/// the period to `duration / BURST_PERIODS_MIN` instead (see
/// [`StreamSpec::burst_period_s`]) — thinning a 1/[`BURST_ON_FRACTION`]×
/// peak rate only preserves the target *mean* rate when the stream spans
/// whole periods, so a short stream must never sit inside a single
/// on-window.
pub const BURST_PERIOD_S: f64 = 0.5;

/// Minimum number of on/off periods a bursty stream spans.
pub const BURST_PERIODS_MIN: f64 = 8.0;

/// The arrival process shaping a request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless open-loop arrivals at the target rate.
    Poisson,
    /// On/off-modulated Poisson arrivals with the same mean rate.
    Bursty,
}

impl ArrivalProcess {
    /// Every supported process.
    pub const ALL: [ArrivalProcess; 2] = [ArrivalProcess::Poisson, ArrivalProcess::Bursty];

    /// Lower-case name, used in run IDs and command lines.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Bursty => "bursty",
        }
    }

    /// Parses a process name (`"poisson"` / `"bursty"`, case-insensitive).
    pub fn parse(raw: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name().eq_ignore_ascii_case(raw))
    }
}

/// One inference request of a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the stream (0-based, arrival order).
    pub id: usize,
    /// Arrival time in seconds from the start of the scenario.
    pub arrival_s: f64,
    /// The request's workload class.
    pub class: RequestClass,
    /// The issuing tenant: an index into the scenario's
    /// [`TenantMix`](crate::scenario::TenantMix), or 0 for single-tenant
    /// workloads.
    pub tenant: usize,
}

/// Declarative description of one request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Target mean arrival rate in requests per second.
    pub rps: f64,
    /// Stream duration in seconds (arrivals beyond it are dropped).
    pub duration_s: f64,
    /// Number of datasets in the serving mix; each request draws its
    /// dataset index uniformly from `0..mix_size`.
    pub mix_size: usize,
    /// Per-request workload shrink factors, drawn uniformly per request.
    pub shrinks: Vec<usize>,
    /// RNG seed — the stream is a pure function of the spec.
    pub seed: u64,
}

impl StreamSpec {
    /// The on/off modulation period a bursty version of this stream uses:
    /// [`BURST_PERIOD_S`], shrunk so the duration always spans at least
    /// [`BURST_PERIODS_MIN`] whole periods. `duration / BURST_PERIODS_MIN`
    /// divides the duration exactly, so the on-time fraction — and with it
    /// the realised mean rate — matches [`BURST_ON_FRACTION`] for short
    /// streams too.
    pub fn burst_period_s(&self) -> f64 {
        (self.duration_s / BURST_PERIODS_MIN).min(BURST_PERIOD_S)
    }

    /// Expands the spec into a concrete stream: requests sorted by arrival
    /// time with ids in arrival order.
    ///
    /// # Panics
    ///
    /// Panics when the rate or duration is not finite and positive, the mix
    /// is empty, or no shrink factor is given.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.rps.is_finite() && self.rps > 0.0, "arrival rate must be positive");
        assert!(
            self.duration_s.is_finite() && self.duration_s > 0.0,
            "stream duration must be positive"
        );
        assert!(self.mix_size >= 1, "the serving mix needs at least one dataset");
        assert!(!self.shrinks.is_empty(), "at least one request shrink factor is required");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let peak_rate = match self.arrival {
            ArrivalProcess::Poisson => self.rps,
            ArrivalProcess::Bursty => self.rps / BURST_ON_FRACTION,
        };

        let burst_period = self.burst_period_s();
        let mut requests = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse CDF; u ∈ [0, 1) keeps
            // the argument of ln strictly positive.
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / peak_rate;
            if t >= self.duration_s {
                break;
            }
            if self.arrival == ArrivalProcess::Bursty && !in_burst_window(t, burst_period) {
                continue;
            }
            let dataset = rng.gen_range(0..self.mix_size);
            let shrink = self.shrinks[rng.gen_range(0..self.shrinks.len())];
            requests.push(Request {
                id: requests.len(),
                arrival_s: t,
                class: RequestClass { dataset, shrink },
                tenant: 0,
            });
        }
        requests
    }
}

/// Whether `t` falls inside the "on" fraction of its modulation period.
fn in_burst_window(t: f64, period_s: f64) -> bool {
    (t / period_s).fract() < BURST_ON_FRACTION
}

/// Declarative description of a closed-loop client population.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Number of clients; the hard cap on in-flight requests.
    pub clients: usize,
    /// Mean think time in seconds (exponential): the pause between
    /// receiving a response and issuing the next request. Client start
    /// times are staggered by one think draw each, so the population does
    /// not arrive as a thundering herd at t = 0.
    pub think_s: f64,
    /// Horizon in seconds: no request is *issued* at or after it
    /// (in-flight requests still complete).
    pub duration_s: f64,
    /// Number of datasets in the serving mix; each request draws its
    /// dataset index uniformly from `0..mix_size`.
    pub mix_size: usize,
    /// Per-request workload shrink factors, drawn uniformly per request.
    pub shrinks: Vec<usize>,
    /// Base RNG seed; each client derives its own stream from it.
    pub seed: u64,
}

/// Per-client request-generation state: one independently seeded RNG per
/// client, so the sequence of (think, class) draws a client makes is a pure
/// function of `(spec, client index)` — the order in which the fleet serves
/// other clients cannot perturb it.
#[derive(Debug, Clone)]
pub struct ClosedLoopClients {
    spec: ClosedLoopSpec,
    rngs: Vec<StdRng>,
}

impl ClosedLoopSpec {
    /// Validates the spec and builds the per-client generator state plus
    /// each client's first issue time (one staggered think draw each).
    ///
    /// # Panics
    ///
    /// Panics when there are no clients, the think time is negative or
    /// non-finite, the duration is not positive, the mix is empty, or no
    /// shrink factor is given.
    pub fn clients(&self) -> (ClosedLoopClients, Vec<(f64, usize)>) {
        self.lane_clients(0, 1)
    }

    /// The lane `lane` slice of a `lanes`-way round-robin split of the
    /// population: global clients `lane, lane + lanes, lane + 2·lanes, …`
    /// renumbered to lane-local indices `0, 1, 2, …`. Every client's RNG
    /// stream is seeded from its *global* index, so the union of all
    /// lanes draws exactly the think times and request classes the
    /// undecomposed population (`lane_clients(0, 1)`, i.e.
    /// [`Self::clients`]) draws — the decomposition moves clients between
    /// lanes without resampling them.
    ///
    /// # Panics
    ///
    /// As [`Self::clients`], plus when `lane >= lanes`.
    pub fn lane_clients(
        &self,
        lane: usize,
        lanes: usize,
    ) -> (ClosedLoopClients, Vec<(f64, usize)>) {
        assert!(lanes >= 1 && lane < lanes, "lane index must lie within the lane count");
        assert!(self.clients >= 1, "a closed loop needs at least one client");
        assert!(
            self.think_s.is_finite() && self.think_s >= 0.0,
            "think time must be finite and non-negative"
        );
        assert!(
            self.duration_s.is_finite() && self.duration_s > 0.0,
            "closed-loop duration must be positive"
        );
        assert!(self.mix_size >= 1, "the serving mix needs at least one dataset");
        assert!(!self.shrinks.is_empty(), "at least one request shrink factor is required");

        let mut rngs = Vec::new();
        let mut first = Vec::new();
        for (local, client) in (lane..self.clients).step_by(lanes).enumerate() {
            let seed = neura_lab::spec::derive_seed(self.seed, &format!("client{client}"));
            let mut rng = StdRng::seed_from_u64(seed);
            let start = exp_draw(&mut rng, self.think_s);
            rngs.push(rng);
            first.push((start, local));
        }
        (ClosedLoopClients { spec: self.clone(), rngs }, first)
    }
}

impl ClosedLoopClients {
    /// Draws the class of `client`'s next request.
    pub fn draw_class(&mut self, client: usize) -> RequestClass {
        let rng = &mut self.rngs[client];
        let dataset = rng.gen_range(0..self.spec.mix_size);
        let shrink = self.spec.shrinks[rng.gen_range(0..self.spec.shrinks.len())];
        RequestClass { dataset, shrink }
    }

    /// The time `client` issues its next request after a response at
    /// `completion_s`, or `None` when that lands at or beyond the horizon
    /// (the client retires).
    pub fn next_issue_at(&mut self, client: usize, completion_s: f64) -> Option<f64> {
        let think = exp_draw(&mut self.rngs[client], self.spec.think_s);
        let at = completion_s + think;
        (at < self.spec.duration_s).then_some(at)
    }

    /// The population's horizon.
    pub fn duration_s(&self) -> f64 {
        self.spec.duration_s
    }
}

/// An exponential draw with the given mean (0 when the mean is 0). The RNG
/// is always advanced, so think-time settings never shift later draws.
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

/// One serving workload: an open-loop stream (stationary or rate-shaped)
/// or a closed-loop population. The unit every scenario simulates and
/// every sweep axis enumerates.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Open-loop: arrivals ignore completions.
    Open(StreamSpec),
    /// Open-loop with rate shapes and/or tenants composed over the base
    /// generator (see [`crate::scenario`]).
    Shaped(crate::scenario::ShapedStream),
    /// Closed-loop: each client waits for its response (plus a think time)
    /// before issuing the next request.
    Closed(ClosedLoopSpec),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrival: ArrivalProcess, seed: u64) -> StreamSpec {
        StreamSpec {
            arrival,
            rps: 400.0,
            duration_s: 2.0,
            mix_size: 3,
            shrinks: vec![1, 2, 4],
            seed,
        }
    }

    #[test]
    fn streams_are_sorted_and_ids_are_positional() {
        for arrival in ArrivalProcess::ALL {
            let requests = spec(arrival, 7).generate();
            assert!(!requests.is_empty());
            assert!(requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
            for (i, r) in requests.iter().enumerate() {
                assert_eq!(r.id, i);
                assert!(r.arrival_s < 2.0);
                assert!(r.class.dataset < 3);
                assert!([1, 2, 4].contains(&r.class.shrink));
            }
        }
    }

    #[test]
    fn same_seed_reproduces_the_stream_and_different_seeds_decorrelate() {
        let a = spec(ArrivalProcess::Poisson, 7).generate();
        let b = spec(ArrivalProcess::Poisson, 7).generate();
        assert_eq!(a, b);
        let c = spec(ArrivalProcess::Poisson, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn mean_rate_is_close_to_the_target_for_both_processes() {
        for arrival in ArrivalProcess::ALL {
            let s = spec(arrival, 3);
            let n = s.generate().len() as f64;
            let expected = s.rps * s.duration_s;
            assert!(
                (n - expected).abs() < expected * 0.25,
                "{}: {n} arrivals vs expected {expected}",
                arrival.name()
            );
        }
    }

    #[test]
    fn bursty_streams_concentrate_arrivals_into_on_windows() {
        let s = spec(ArrivalProcess::Bursty, 5);
        let period = s.burst_period_s();
        assert!(s.generate().iter().all(|r| in_burst_window(r.arrival_s, period)));
    }

    #[test]
    fn short_bursty_streams_still_hit_the_target_mean_rate() {
        // A 20 ms stream fits entirely inside one BURST_PERIOD_S on-window;
        // without the adaptive period the 4x peak rate would never be
        // thinned and the realised mean rate would be ~4x the target.
        let s = StreamSpec {
            arrival: ArrivalProcess::Bursty,
            rps: 50_000.0,
            duration_s: 0.02,
            mix_size: 1,
            shrinks: vec![1],
            seed: 11,
        };
        assert!(s.burst_period_s() < BURST_PERIOD_S);
        let n = s.generate().len() as f64;
        let expected = s.rps * s.duration_s;
        assert!(
            (n - expected).abs() < expected * 0.25,
            "{n} arrivals vs expected {expected} — short bursty streams must stay thinned"
        );
    }

    #[test]
    fn parse_round_trips_names() {
        for arrival in ArrivalProcess::ALL {
            assert_eq!(ArrivalProcess::parse(arrival.name()), Some(arrival));
        }
        assert_eq!(ArrivalProcess::parse("POISSON"), Some(ArrivalProcess::Poisson));
        assert_eq!(ArrivalProcess::parse("uniform"), None);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_is_rejected() {
        StreamSpec { rps: 0.0, ..spec(ArrivalProcess::Poisson, 1) }.generate();
    }

    fn closed_spec(seed: u64) -> ClosedLoopSpec {
        ClosedLoopSpec {
            clients: 4,
            think_s: 0.01,
            duration_s: 1.0,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        }
    }

    #[test]
    fn closed_loop_clients_are_seeded_independently_and_deterministically() {
        let (mut a, first_a) = closed_spec(9).clients();
        let (mut b, first_b) = closed_spec(9).clients();
        assert_eq!(first_a, first_b, "same spec, same staggered starts");
        assert_eq!(first_a.len(), 4);
        for (start, client) in &first_a {
            assert!(*start >= 0.0 && start.is_finite());
            assert_eq!(a.draw_class(*client), b.draw_class(*client));
        }
        // Interleaving other clients' draws must not perturb a client's own
        // stream: draw client 0 again on `a` after touching 1..3 above, and
        // on `b` directly.
        assert_eq!(a.draw_class(0), b.draw_class(0));
        let (_, first_c) = closed_spec(10).clients();
        assert_ne!(first_a, first_c, "different seeds decorrelate");
    }

    #[test]
    fn closed_loop_clients_retire_at_the_horizon() {
        let (mut clients, _) = closed_spec(3).clients();
        let next = clients.next_issue_at(0, 0.5).expect("mid-stream completions re-issue");
        assert!(next > 0.5 && next < 1.0 + 1.0, "completion plus a think draw");
        assert_eq!(clients.next_issue_at(0, 1.0), None, "at the horizon the client retires");
        assert_eq!(clients.duration_s(), 1.0);
    }

    #[test]
    fn zero_think_time_issues_immediately_and_still_advances_the_rng() {
        let spec = ClosedLoopSpec { think_s: 0.0, ..closed_spec(5) };
        let (mut clients, first) = spec.clients();
        assert!(first.iter().all(|&(t, _)| t == 0.0));
        assert_eq!(clients.next_issue_at(0, 0.25), Some(0.25));
        let with_think = ClosedLoopSpec { think_s: 0.01, ..closed_spec(5) };
        let (mut thinking, _) = with_think.clients();
        // Same seed: class draws line up because the think draw consumed
        // one RNG step in both populations.
        thinking.next_issue_at(0, 0.25);
        assert_eq!(clients.draw_class(0), thinking.draw_class(0));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_client_population_is_rejected() {
        ClosedLoopSpec { clients: 0, ..closed_spec(1) }.clients();
    }
}
