//! Declarative serving sweeps: arrival process × arrival rate × policy ×
//! shard count, enumerated as stable scenarios for the `neura_lab` runner.
//!
//! Mirrors the design of `neura_lab::spec`: scenarios are enumerated in a
//! stable, documented order with stable human-readable IDs, and each
//! scenario's stream seed is derived by hashing the sweep name, the arrival
//! process and the rate — deliberately *excluding* the policy and shard
//! axes, so every policy/shard arm of a comparison replays the identical
//! request stream and differs only in how it is served.

use neura_lab::spec::derive_seed;

use crate::arrivals::{ArrivalProcess, StreamSpec};
use crate::policy::Policy;

/// The axes of a serving sweep. An empty axis contributes its single
/// default setting (Poisson arrivals, [`DEFAULT_RPS`], FIFO, one shard).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSweep {
    /// Arrival processes to sweep.
    pub arrivals: Vec<ArrivalProcess>,
    /// Mean arrival rates (requests/second) to sweep.
    pub rps: Vec<f64>,
    /// Scheduling/batching policies to sweep.
    pub policies: Vec<Policy>,
    /// Shard counts to sweep.
    pub shards: Vec<usize>,
}

/// Arrival rate used when the rate axis is left empty.
pub const DEFAULT_RPS: f64 = 800.0;

impl ServeSweep {
    /// An empty sweep: one all-default scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the arrival-process axis (builder style).
    pub fn arrivals(mut self, arrivals: impl IntoIterator<Item = ArrivalProcess>) -> Self {
        self.arrivals = arrivals.into_iter().collect();
        self
    }

    /// Sets the arrival-rate axis (builder style).
    pub fn rps(mut self, rps: impl IntoIterator<Item = f64>) -> Self {
        self.rps = rps.into_iter().collect();
        self
    }

    /// Sets the policy axis (builder style).
    pub fn policies(mut self, policies: impl IntoIterator<Item = Policy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the shard-count axis (builder style).
    pub fn shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.shards = shards.into_iter().collect();
        self
    }

    /// Number of scenarios the sweep enumerates.
    pub fn len(&self) -> usize {
        [self.arrivals.len(), self.rps.len(), self.policies.len(), self.shards.len()]
            .iter()
            .map(|&n| n.max(1))
            .product()
    }

    /// Whether the sweep enumerates exactly one all-default scenario.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Enumerates every scenario in a stable order (arrival-major, then
    /// rate, policy and shard count — the last axis varies fastest), with
    /// stream seeds derived from `(base_seed, name, arrival, rps)` only.
    pub fn scenarios(&self, name: &str, base_seed: u64) -> Vec<ServeScenario> {
        let arrivals = if self.arrivals.is_empty() {
            vec![ArrivalProcess::Poisson]
        } else {
            self.arrivals.clone()
        };
        let rates = if self.rps.is_empty() { vec![DEFAULT_RPS] } else { self.rps.clone() };
        let policies =
            if self.policies.is_empty() { vec![Policy::Fifo] } else { self.policies.clone() };
        let shards = if self.shards.is_empty() { vec![1] } else { self.shards.clone() };

        let mut scenarios = Vec::with_capacity(self.len());
        for &arrival in &arrivals {
            for &rps in &rates {
                let seed = derive_seed(base_seed, &format!("{name}/{}/rps{rps:?}", arrival.name()));
                for &policy in &policies {
                    for &shard_count in &shards {
                        scenarios.push(ServeScenario {
                            index: scenarios.len(),
                            id: format!(
                                "{name}/{}/rps{rps:?}/{}/s{shard_count}",
                                arrival.name(),
                                policy.name()
                            ),
                            arrival,
                            rps,
                            policy,
                            shards: shard_count,
                            seed,
                        });
                    }
                }
            }
        }
        scenarios
    }
}

/// One enumerated serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Position in the sweep's enumeration order (0-based).
    pub index: usize,
    /// Stable run ID: `<name>/<arrival>/rps<r>/<policy>/s<shards>`.
    pub id: String,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Mean arrival rate in requests per second.
    pub rps: f64,
    /// Scheduling/batching policy.
    pub policy: Policy,
    /// Number of accelerator shards.
    pub shards: usize,
    /// Stream seed (shared across all policy/shard arms of this stream).
    pub seed: u64,
}

impl ServeScenario {
    /// The ordered `(key, value)` parameter list recorded in artifacts.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = vec![
            ("arrival".to_string(), self.arrival.name().to_string()),
            ("rps".to_string(), format!("{:?}", self.rps)),
            ("policy".to_string(), self.policy.name()),
        ];
        if let Policy::BatchByDataset { max_batch, timeout_s } = self.policy {
            params.push(("max_batch".to_string(), max_batch.to_string()));
            params.push(("batch_timeout_ms".to_string(), format!("{:?}", timeout_s * 1e3)));
        }
        params.push(("shards".to_string(), self.shards.to_string()));
        params.push(("seed".to_string(), self.seed.to_string()));
        params
    }

    /// The stream this scenario replays, given the sweep-wide knobs that
    /// are not swept (duration, mix size, request shrink classes).
    pub fn stream_spec(&self, duration_s: f64, mix_size: usize, shrinks: &[usize]) -> StreamSpec {
        StreamSpec {
            arrival: self.arrival,
            rps: self.rps,
            duration_s,
            mix_size,
            shrinks: shrinks.to_vec(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep_is_one_default_scenario() {
        let scenarios = ServeSweep::new().scenarios("serve", 1);
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].id, "serve/poisson/rps800.0/fifo/s1");
        assert_eq!(scenarios[0].shards, 1);
    }

    #[test]
    fn enumeration_order_is_arrival_major_and_ids_are_unique() {
        let sweep = ServeSweep::new()
            .arrivals(ArrivalProcess::ALL)
            .rps([200.0, 400.0])
            .policies([Policy::Fifo, Policy::Sjf])
            .shards([1, 2]);
        let scenarios = sweep.scenarios("s", 9);
        assert_eq!(scenarios.len(), sweep.len());
        assert_eq!(scenarios.len(), 16);
        assert_eq!(scenarios[0].id, "s/poisson/rps200.0/fifo/s1");
        assert_eq!(scenarios[1].id, "s/poisson/rps200.0/fifo/s2");
        assert_eq!(scenarios[15].id, "s/bursty/rps400.0/sjf/s2");
        let ids: std::collections::HashSet<&str> =
            scenarios.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), scenarios.len());
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn seeds_are_shared_across_policy_and_shard_arms_only() {
        let sweep = ServeSweep::new()
            .rps([200.0, 400.0])
            .policies([Policy::Fifo, Policy::Sjf, Policy::batch(8, 0.005)])
            .shards([1, 2, 4]);
        let scenarios = sweep.scenarios("serve", 42);
        let rate_of = |s: &ServeScenario| s.rps;
        for a in &scenarios {
            for b in &scenarios {
                if rate_of(a) == rate_of(b) {
                    assert_eq!(a.seed, b.seed, "{} vs {}", a.id, b.id);
                } else {
                    assert_ne!(a.seed, b.seed, "{} vs {}", a.id, b.id);
                }
            }
        }
    }

    #[test]
    fn params_describe_the_scenario_including_batch_knobs() {
        let sweep = ServeSweep::new().policies([Policy::batch(16, 0.01)]).shards([4]);
        let scenario = &sweep.scenarios("serve", 1)[0];
        let params = scenario.params();
        assert!(params.contains(&("policy".into(), "batch16".into())));
        assert!(params.contains(&("max_batch".into(), "16".into())));
        assert!(params.contains(&("batch_timeout_ms".into(), "10.0".into())));
        assert!(params.contains(&("shards".into(), "4".into())));
    }

    #[test]
    fn stream_spec_carries_the_scenario_seed() {
        let scenario = &ServeSweep::new().scenarios("serve", 7)[0];
        let stream = scenario.stream_spec(2.0, 3, &[1, 2]);
        assert_eq!(stream.seed, scenario.seed);
        assert_eq!(stream.mix_size, 3);
        assert_eq!(stream.shrinks, vec![1, 2]);
    }
}
