//! Declarative serving sweeps: workload (open arrival × rate, or
//! closed-loop client count) × fleet mix × dispatch policy × autoscaler ×
//! scheduling policy, enumerated as stable scenarios for the `neura_lab`
//! runner.
//!
//! Mirrors the design of `neura_lab::spec`: scenarios are enumerated in a
//! stable, documented order with stable human-readable IDs, and each
//! scenario's workload seed is derived by hashing the sweep name and the
//! *workload* axes only — deliberately excluding the policy, fleet,
//! dispatch and autoscaler axes — so every serving arm of a comparison
//! replays the identical demand and differs only in how it is served.
//! Open- and closed-loop arms of the same mix therefore sit side by side
//! in one artifact, directly comparable.

use neura_chip::config::{ChipConfig, TileSize};
use neura_lab::spec::derive_seed;

use crate::arrivals::{ArrivalProcess, ClosedLoopSpec, StreamSpec, Workload};
use crate::autoscale::AutoscalePolicy;
use crate::dispatch::DispatchKind;
use crate::fleet::ShardGroup;
use crate::policy::Policy;
use crate::scenario::ScenarioSpec;

/// A named fleet composition: one or more shard groups under a stable ID.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMix {
    /// Stable ID used in scenario IDs (`"t16x4"`, `"t64x1+t4x4"`).
    pub id: String,
    /// The groups, in ID order.
    pub groups: Vec<ShardGroup>,
}

impl FleetMix {
    /// A mix with an explicit ID.
    ///
    /// # Panics
    ///
    /// Panics when no group is given.
    pub fn new(id: impl Into<String>, groups: Vec<ShardGroup>) -> Self {
        assert!(!groups.is_empty(), "a fleet mix needs at least one shard group");
        FleetMix { id: id.into(), groups }
    }

    /// A homogeneous mix: `shards` replicas of one named tile size, with
    /// the canonical ID (`t16x4`).
    pub fn uniform(tile: TileSize, shards: usize) -> Self {
        let group = ShardGroup::new(tile.label(), ChipConfig::for_tile_size(tile), shards);
        FleetMix { id: format!("{}x{shards}", tile.label()), groups: vec![group] }
    }

    /// A heterogeneous mix from `(tile, shards)` pairs, named
    /// `t64x1+t4x4`-style in the given order.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or repeats a tile size (group names
    /// must be unique).
    pub fn mixed(parts: &[(TileSize, usize)]) -> Self {
        assert!(!parts.is_empty(), "a fleet mix needs at least one shard group");
        let groups: Vec<ShardGroup> = parts
            .iter()
            .map(|&(tile, shards)| {
                ShardGroup::new(tile.label(), ChipConfig::for_tile_size(tile), shards)
            })
            .collect();
        let id = parts
            .iter()
            .map(|&(tile, shards)| format!("{}x{shards}", tile.label()))
            .collect::<Vec<_>>()
            .join("+");
        Self::new(id, groups)
    }

    /// Parses a mix ID (`"t16x4"`, `"t64x1+t4x4"`; case-insensitive).
    pub fn parse(raw: &str) -> Option<Self> {
        let mut parts = Vec::new();
        for part in raw.split('+') {
            let lower = part.trim().to_ascii_lowercase();
            let (tile_raw, count_raw) = lower.split_once('x')?;
            let tile = match tile_raw {
                "t4" => TileSize::Tile4,
                "t16" => TileSize::Tile16,
                "t64" => TileSize::Tile64,
                _ => return None,
            };
            let shards: usize = count_raw.parse().ok().filter(|&n| n >= 1)?;
            parts.push((tile, shards));
        }
        if parts.is_empty() || has_duplicate_tiles(&parts) {
            return None;
        }
        Some(Self::mixed(&parts))
    }

    /// Total shards across all groups.
    pub fn total_shards(&self) -> usize {
        self.groups.iter().map(|g| g.shards).sum()
    }
}

fn has_duplicate_tiles(parts: &[(TileSize, usize)]) -> bool {
    parts.iter().enumerate().any(|(i, (tile, _))| parts[..i].iter().any(|(t, _)| t == tile))
}

/// One point on the workload axis: open-loop demand at a rate, or a
/// closed-loop client population.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadAxis {
    /// Open-loop arrivals (process × mean rate).
    Open {
        /// Arrival process.
        arrival: ArrivalProcess,
        /// Mean arrival rate in requests per second.
        rps: f64,
    },
    /// Closed-loop clients with a mean think time.
    Closed {
        /// Client count — the in-flight cap.
        clients: usize,
        /// Mean think time in seconds.
        think_s: f64,
    },
}

impl WorkloadAxis {
    /// The ID fragment of this workload (`"poisson/rps800.0"`,
    /// `"closed64/think5.0"` — think time in milliseconds).
    pub fn id(&self) -> String {
        match self {
            WorkloadAxis::Open { arrival, rps } => format!("{}/rps{rps:?}", arrival.name()),
            WorkloadAxis::Closed { clients, think_s } => {
                format!("closed{clients}/think{:?}", think_s * 1e3)
            }
        }
    }
}

/// The axes of a serving sweep. An empty axis contributes its single
/// default setting (Poisson arrivals at [`DEFAULT_RPS`], no closed-loop
/// arms, FIFO, one Tile-16 shard, least-loaded dispatch, fixed fleet).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSweep {
    /// Arrival processes of the open-loop arms.
    pub arrivals: Vec<ArrivalProcess>,
    /// Mean arrival rates (requests/second) of the open-loop arms.
    pub rps: Vec<f64>,
    /// Client counts of the closed-loop arms (empty = open-loop only).
    pub closed_clients: Vec<usize>,
    /// Mean think time shared by every closed-loop arm, in seconds.
    pub think_s: f64,
    /// Scheduling/batching policies to sweep.
    pub policies: Vec<Policy>,
    /// Fleet mixes to sweep.
    pub fleets: Vec<FleetMix>,
    /// Dispatch policies to sweep.
    pub dispatches: Vec<DispatchKind>,
    /// Autoscaler settings to sweep (`None` = fixed fleet).
    pub autoscale: Vec<Option<AutoscalePolicy>>,
}

/// Arrival rate used when the rate axis is left empty.
pub const DEFAULT_RPS: f64 = 800.0;

/// Mean think time used when none is set, in seconds.
pub const DEFAULT_THINK_S: f64 = 0.005;

impl Default for ServeSweep {
    fn default() -> Self {
        ServeSweep {
            arrivals: Vec::new(),
            rps: Vec::new(),
            closed_clients: Vec::new(),
            think_s: DEFAULT_THINK_S,
            policies: Vec::new(),
            fleets: Vec::new(),
            dispatches: Vec::new(),
            autoscale: Vec::new(),
        }
    }
}

impl ServeSweep {
    /// An empty sweep: one all-default scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the arrival-process axis (builder style).
    pub fn arrivals(mut self, arrivals: impl IntoIterator<Item = ArrivalProcess>) -> Self {
        self.arrivals = arrivals.into_iter().collect();
        self
    }

    /// Sets the arrival-rate axis (builder style).
    pub fn rps(mut self, rps: impl IntoIterator<Item = f64>) -> Self {
        self.rps = rps.into_iter().collect();
        self
    }

    /// Sets the closed-loop client-count axis (builder style).
    pub fn closed_clients(mut self, clients: impl IntoIterator<Item = usize>) -> Self {
        self.closed_clients = clients.into_iter().collect();
        self
    }

    /// Sets the closed-loop mean think time (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the think time is finite and non-negative.
    pub fn think_s(mut self, think_s: f64) -> Self {
        assert!(think_s.is_finite() && think_s >= 0.0, "think time must be non-negative");
        self.think_s = think_s;
        self
    }

    /// Sets the policy axis (builder style).
    pub fn policies(mut self, policies: impl IntoIterator<Item = Policy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the fleet-mix axis (builder style).
    pub fn fleets(mut self, fleets: impl IntoIterator<Item = FleetMix>) -> Self {
        self.fleets = fleets.into_iter().collect();
        self
    }

    /// Sets the fleet axis to homogeneous Tile-16 fleets of the given
    /// sizes (builder style) — the classic shard-scaling sweep.
    pub fn shards(self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.fleets(shards.into_iter().map(|n| FleetMix::uniform(TileSize::Tile16, n)))
    }

    /// Sets the dispatch-policy axis (builder style).
    pub fn dispatches(mut self, dispatches: impl IntoIterator<Item = DispatchKind>) -> Self {
        self.dispatches = dispatches.into_iter().collect();
        self
    }

    /// Sets the autoscaler axis (builder style); `None` entries run the
    /// fleet fixed.
    pub fn autoscale(
        mut self,
        settings: impl IntoIterator<Item = Option<AutoscalePolicy>>,
    ) -> Self {
        self.autoscale = settings.into_iter().collect();
        self
    }

    /// The workload axis this sweep enumerates: every open-loop
    /// (arrival, rate) pair, then every closed-loop client count. A sweep
    /// that sets *only* the closed-loop axis is closed-only — open arms
    /// appear when an open axis is set explicitly or no closed arm exists.
    pub fn workloads(&self) -> Vec<WorkloadAxis> {
        let mut workloads = Vec::new();
        if self.closed_clients.is_empty() || !self.arrivals.is_empty() || !self.rps.is_empty() {
            let arrivals = if self.arrivals.is_empty() {
                vec![ArrivalProcess::Poisson]
            } else {
                self.arrivals.clone()
            };
            let rates = if self.rps.is_empty() { vec![DEFAULT_RPS] } else { self.rps.clone() };
            for &arrival in &arrivals {
                for &rps in &rates {
                    workloads.push(WorkloadAxis::Open { arrival, rps });
                }
            }
        }
        for &clients in &self.closed_clients {
            workloads.push(WorkloadAxis::Closed { clients, think_s: self.think_s });
        }
        workloads
    }

    /// Number of scenarios the sweep enumerates.
    pub fn len(&self) -> usize {
        self.workloads().len()
            * [self.fleets.len(), self.dispatches.len(), self.autoscale.len(), self.policies.len()]
                .iter()
                .map(|&n| n.max(1))
                .product::<usize>()
    }

    /// Whether the sweep enumerates exactly one all-default scenario.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Enumerates every scenario in a stable order (workload-major — open
    /// arms before closed arms — then fleet, dispatch, autoscaler and
    /// policy; the last axis varies fastest), with workload seeds derived
    /// from `(base_seed, name, workload)` only.
    pub fn scenarios(&self, name: &str, base_seed: u64) -> Vec<ServeScenario> {
        let workloads = self.workloads();
        let policies =
            if self.policies.is_empty() { vec![Policy::Fifo] } else { self.policies.clone() };
        let fleets = if self.fleets.is_empty() {
            vec![FleetMix::uniform(TileSize::Tile16, 1)]
        } else {
            self.fleets.clone()
        };
        let dispatches = if self.dispatches.is_empty() {
            vec![DispatchKind::LeastLoaded]
        } else {
            self.dispatches.clone()
        };
        let autoscale = if self.autoscale.is_empty() { vec![None] } else { self.autoscale.clone() };

        let mut scenarios = Vec::with_capacity(self.len());
        for workload in &workloads {
            let seed = derive_seed(base_seed, &format!("{name}/{}", workload.id()));
            for fleet in &fleets {
                for &dispatch in &dispatches {
                    for autoscale in &autoscale {
                        for &policy in &policies {
                            let scale_suffix = autoscale
                                .as_ref()
                                .map(|p| format!("/{}", p.id()))
                                .unwrap_or_default();
                            scenarios.push(ServeScenario {
                                index: scenarios.len(),
                                id: format!(
                                    "{name}/{}/{}/{}/{}{scale_suffix}",
                                    workload.id(),
                                    fleet.id,
                                    dispatch.name(),
                                    policy.name()
                                ),
                                workload: workload.clone(),
                                policy,
                                fleet: fleet.clone(),
                                dispatch,
                                autoscale: autoscale.clone(),
                                scenario: None,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }
}

/// One enumerated serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Position in the sweep's enumeration order (0-based).
    pub index: usize,
    /// Stable run ID:
    /// `<name>/<workload>/<fleet>/<dispatch>/<policy>[/<autoscale>]`.
    pub id: String,
    /// The workload axis point.
    pub workload: WorkloadAxis,
    /// Scheduling/batching policy.
    pub policy: Policy,
    /// Fleet composition.
    pub fleet: FleetMix,
    /// Dispatch policy.
    pub dispatch: DispatchKind,
    /// Autoscaler (`None` = fixed fleet).
    pub autoscale: Option<AutoscalePolicy>,
    /// Library scenario this arm replays (`None` for plain sweep arms).
    /// When set, [`Self::workload_spec`] wraps the open-loop stream in
    /// the scenario's rate shapes and tenant mix, and the scenario's
    /// queue bound and fault regime apply (the `serve` binary wires
    /// those into the [`ServeConfig`](crate::sim::ServeConfig)).
    pub scenario: Option<ScenarioSpec>,
    /// Workload seed (shared across every serving arm of this workload).
    pub seed: u64,
}

impl ServeScenario {
    /// The ordered `(key, value)` parameter list recorded in artifacts.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = Vec::new();
        match &self.workload {
            WorkloadAxis::Open { arrival, rps } => {
                params.push(("loop".to_string(), "open".to_string()));
                params.push(("arrival".to_string(), arrival.name().to_string()));
                params.push(("rps".to_string(), format!("{rps:?}")));
            }
            WorkloadAxis::Closed { clients, think_s } => {
                params.push(("loop".to_string(), "closed".to_string()));
                params.push(("clients".to_string(), clients.to_string()));
                params.push(("think_ms".to_string(), format!("{:?}", think_s * 1e3)));
            }
        }
        params.push(("policy".to_string(), self.policy.name()));
        if let Policy::BatchByDataset { max_batch, timeout_s } = self.policy {
            params.push(("max_batch".to_string(), max_batch.to_string()));
            params.push(("batch_timeout_ms".to_string(), format!("{:?}", timeout_s * 1e3)));
        }
        params.push(("fleet".to_string(), self.fleet.id.clone()));
        params.push(("shards".to_string(), self.fleet.total_shards().to_string()));
        params.push(("dispatch".to_string(), self.dispatch.name().to_string()));
        if let Some(autoscale) = &self.autoscale {
            params.push(("autoscale".to_string(), autoscale.id()));
            params.push((
                "provision_delay_ms".to_string(),
                format!("{:?}", autoscale.provision_delay_s * 1e3),
            ));
        }
        if let Some(scenario) = &self.scenario {
            params.push(("scenario".to_string(), scenario.name.to_string()));
            params.push(("load".to_string(), format!("{:?}", scenario.load)));
            if let Some(bound) = scenario.queue_bound {
                params.push(("queue_bound".to_string(), bound.to_string()));
            }
            if let Some(tenants) = &scenario.tenants {
                params.push(("tenants".to_string(), tenants.id()));
            }
            if let Some(fault) = scenario.fault_spec(self.seed, 1.0) {
                params.push(("faults".to_string(), fault.id()));
            }
        }
        params.push(("seed".to_string(), self.seed.to_string()));
        params
    }

    /// The workload this scenario replays, given the sweep-wide knobs that
    /// are not swept (duration, mix size, request shrink classes).
    pub fn workload_spec(&self, duration_s: f64, mix_size: usize, shrinks: &[usize]) -> Workload {
        match &self.workload {
            WorkloadAxis::Open { arrival, rps } => {
                let base = StreamSpec {
                    arrival: *arrival,
                    rps: *rps,
                    duration_s,
                    mix_size,
                    shrinks: shrinks.to_vec(),
                    seed: self.seed,
                };
                match &self.scenario {
                    Some(scenario) => Workload::Shaped(scenario.shaped(base)),
                    None => Workload::Open(base),
                }
            }
            WorkloadAxis::Closed { clients, think_s } => Workload::Closed(ClosedLoopSpec {
                clients: *clients,
                think_s: *think_s,
                duration_s,
                mix_size,
                shrinks: shrinks.to_vec(),
                seed: self.seed,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep_is_one_default_scenario() {
        let scenarios = ServeSweep::new().scenarios("serve", 1);
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].id, "serve/poisson/rps800.0/t16x1/least-loaded/fifo");
        assert_eq!(scenarios[0].fleet.total_shards(), 1);
        assert!(scenarios[0].autoscale.is_none());
    }

    #[test]
    fn enumeration_order_is_workload_major_and_ids_are_unique() {
        let sweep = ServeSweep::new()
            .arrivals(ArrivalProcess::ALL)
            .rps([200.0, 400.0])
            .closed_clients([16])
            .policies([Policy::Fifo, Policy::Sjf])
            .shards([1, 2]);
        let scenarios = sweep.scenarios("s", 9);
        assert_eq!(scenarios.len(), sweep.len());
        assert_eq!(scenarios.len(), (2 * 2 + 1) * 2 * 2);
        assert_eq!(scenarios[0].id, "s/poisson/rps200.0/t16x1/least-loaded/fifo");
        assert_eq!(scenarios[1].id, "s/poisson/rps200.0/t16x1/least-loaded/sjf");
        assert_eq!(scenarios[2].id, "s/poisson/rps200.0/t16x2/least-loaded/fifo");
        let last = &scenarios[scenarios.len() - 1];
        assert_eq!(last.id, "s/closed16/think5.0/t16x2/least-loaded/sjf");
        let ids: std::collections::HashSet<&str> =
            scenarios.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), scenarios.len());
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn seeds_are_shared_across_serving_arms_only() {
        let sweep = ServeSweep::new()
            .rps([200.0, 400.0])
            .closed_clients([8])
            .policies([Policy::Fifo, Policy::Sjf, Policy::batch(8, 0.005)])
            .fleets([
                FleetMix::uniform(TileSize::Tile16, 1),
                FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)]),
            ])
            .dispatches(DispatchKind::ALL)
            .autoscale([None, Some(AutoscalePolicy::new(1, 4))]);
        let scenarios = sweep.scenarios("serve", 42);
        assert_eq!(scenarios.len(), (2 + 1) * 3 * 2 * 3 * 2);
        for a in &scenarios {
            for b in &scenarios {
                if a.workload == b.workload {
                    assert_eq!(a.seed, b.seed, "{} vs {}", a.id, b.id);
                } else {
                    assert_ne!(a.seed, b.seed, "{} vs {}", a.id, b.id);
                }
            }
        }
    }

    #[test]
    fn fleet_mix_ids_parse_and_round_trip() {
        let uniform = FleetMix::uniform(TileSize::Tile16, 4);
        assert_eq!(uniform.id, "t16x4");
        assert_eq!(FleetMix::parse("t16x4"), Some(uniform));
        let mixed = FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)]);
        assert_eq!(mixed.id, "t64x1+t4x4");
        assert_eq!(mixed.total_shards(), 5);
        assert_eq!(FleetMix::parse("T64x1+T4x4"), Some(mixed));
        assert_eq!(FleetMix::parse("t8x2"), None, "unknown tile");
        assert_eq!(FleetMix::parse("t16x0"), None, "zero shards");
        assert_eq!(FleetMix::parse("t16x2+t16x1"), None, "duplicate tile");
        assert_eq!(FleetMix::parse(""), None);
    }

    #[test]
    fn params_describe_the_scenario_including_new_axes() {
        let sweep = ServeSweep::new()
            .policies([Policy::batch(16, 0.01)])
            .fleets([FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)])])
            .dispatches([DispatchKind::ClassAffinity])
            .autoscale([Some(AutoscalePolicy::new(1, 8))]);
        let scenario = &sweep.scenarios("serve", 1)[0];
        assert!(scenario.id.ends_with("/t64x1+t4x4/affinity/batch16/as1-8"));
        let params = scenario.params();
        assert!(params.contains(&("loop".into(), "open".into())));
        assert!(params.contains(&("policy".into(), "batch16".into())));
        assert!(params.contains(&("max_batch".into(), "16".into())));
        assert!(params.contains(&("batch_timeout_ms".into(), "10.0".into())));
        assert!(params.contains(&("fleet".into(), "t64x1+t4x4".into())));
        assert!(params.contains(&("shards".into(), "5".into())));
        assert!(params.contains(&("dispatch".into(), "affinity".into())));
        assert!(params.contains(&("autoscale".into(), "as1-8".into())));
    }

    #[test]
    fn workload_spec_carries_the_scenario_seed_for_both_loops() {
        let open = &ServeSweep::new().scenarios("serve", 7)[0];
        match open.workload_spec(2.0, 3, &[1, 2]) {
            Workload::Open(stream) => {
                assert_eq!(stream.seed, open.seed);
                assert_eq!(stream.mix_size, 3);
                assert_eq!(stream.shrinks, vec![1, 2]);
            }
            _ => panic!("default sweeps are plain open-loop"),
        }
        let sweep = ServeSweep::new().closed_clients([32]).think_s(0.002);
        let closed = sweep
            .scenarios("serve", 7)
            .into_iter()
            .find(|s| matches!(s.workload, WorkloadAxis::Closed { .. }))
            .expect("closed arm enumerated");
        match closed.workload_spec(2.0, 3, &[1, 2]) {
            Workload::Closed(spec) => {
                assert_eq!(spec.clients, 32);
                assert!((spec.think_s - 0.002).abs() < 1e-12);
                assert_eq!(spec.seed, closed.seed);
            }
            _ => panic!("expected the closed arm"),
        }
    }

    #[test]
    fn scenario_arms_wrap_the_stream_and_report_their_params() {
        let mut arm = ServeSweep::new().scenarios("serve", 7).remove(0);
        arm.scenario = ScenarioSpec::by_name("tenants");
        match arm.workload_spec(2.0, 3, &[1]) {
            Workload::Shaped(shaped) => {
                assert_eq!(shaped.base.seed, arm.seed);
                assert!(shaped.tenants.is_some(), "the mix travels with the stream");
            }
            _ => panic!("scenario arms are shaped"),
        }
        let params = arm.params();
        assert!(params.contains(&("scenario".into(), "tenants".into())));
        assert!(params.contains(&("load".into(), "1.5".into())));
        assert!(params.contains(&("queue_bound".into(), "64".into())));
        assert!(params.iter().any(|(k, _)| k == "tenants"));
        assert!(!params.iter().any(|(k, _)| k == "faults"), "tenants arm is fault-free");

        arm.scenario = ScenarioSpec::by_name("crash");
        let params = arm.params();
        assert!(params.contains(&("faults".into(), "crash2".into())));
    }
}
