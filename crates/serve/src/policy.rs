//! Scheduling and batching policies for the serving queue.

/// Default maximum batch size of [`Policy::BatchByDataset`].
pub const DEFAULT_MAX_BATCH: usize = 8;

/// Default batching timeout of [`Policy::BatchByDataset`], in seconds: how
/// long the oldest queued request of a class may wait before its partial
/// batch is flushed.
pub const DEFAULT_BATCH_TIMEOUT_S: f64 = 0.005;

/// How queued requests are ordered and grouped into dispatch units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// First-in-first-out: requests dispatch one at a time in arrival order.
    Fifo,
    /// Shortest-job-first: the queued request with the smallest estimated
    /// work (`WorkloadProfile::flops` of its class) dispatches next, ties
    /// broken by arrival order.
    Sjf,
    /// Group queued requests of the same class (dataset × shrink) into
    /// batches: a batch dispatches once it reaches `max_batch` requests or
    /// its oldest member has waited `timeout_s`.
    BatchByDataset {
        /// Largest number of requests a batch may carry.
        max_batch: usize,
        /// Longest time the oldest member of a partial batch may wait.
        timeout_s: f64,
    },
}

impl Policy {
    /// A batching policy with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch == 0` or `timeout_s` is negative or non-finite.
    pub fn batch(max_batch: usize, timeout_s: f64) -> Self {
        assert!(max_batch >= 1, "a batch carries at least one request");
        assert!(timeout_s.is_finite() && timeout_s >= 0.0, "batch timeout must be non-negative");
        Policy::BatchByDataset { max_batch, timeout_s }
    }

    /// Parses a policy name (`"fifo"`, `"sjf"`, `"batch"` with the default
    /// knobs; case-insensitive).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.to_ascii_lowercase().as_str() {
            "fifo" => Some(Policy::Fifo),
            "sjf" => Some(Policy::Sjf),
            "batch" => Some(Policy::batch(DEFAULT_MAX_BATCH, DEFAULT_BATCH_TIMEOUT_S)),
            _ => None,
        }
    }

    /// Short name used in run IDs (`"fifo"`, `"sjf"`, `"batch8"`).
    pub fn name(&self) -> String {
        match self {
            Policy::Fifo => "fifo".to_string(),
            Policy::Sjf => "sjf".to_string(),
            Policy::BatchByDataset { max_batch, .. } => format!("batch{max_batch}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_the_three_policies() {
        assert_eq!(Policy::parse("fifo"), Some(Policy::Fifo));
        assert_eq!(Policy::parse("SJF"), Some(Policy::Sjf));
        assert_eq!(
            Policy::parse("batch"),
            Some(Policy::BatchByDataset {
                max_batch: DEFAULT_MAX_BATCH,
                timeout_s: DEFAULT_BATCH_TIMEOUT_S
            })
        );
        assert_eq!(Policy::parse("round-robin"), None);
    }

    #[test]
    fn names_encode_the_batch_size() {
        assert_eq!(Policy::Fifo.name(), "fifo");
        assert_eq!(Policy::Sjf.name(), "sjf");
        assert_eq!(Policy::batch(16, 0.01).name(), "batch16");
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_max_batch_is_rejected() {
        Policy::batch(0, 0.01);
    }
}
