//! Composable production-traffic scenarios: rate shapes, tenant mixes and
//! a library of named scenario definitions.
//!
//! The generators in [`crate::arrivals`] produce *stationary* demand — a
//! fixed mean rate for the whole stream. Production traffic is not
//! stationary: it follows daily cycles, spikes when something goes viral,
//! and arrives from tenants with different weights, rate limits and
//! latency SLOs. Rather than new generators, this module composes
//! [`RateShape`]s *over* the existing ones by thinning: the base stream is
//! generated at the shapes' peak rate, then each request survives with
//! probability `shape(t) / peak` drawn from a seed-derived RNG — so a
//! shaped stream is exactly as deterministic as its base, Poisson and
//! bursty processes both shape correctly, and shapes stack
//! multiplicatively (a diurnal wave with a flash crowd on top is just two
//! entries in the list).
//!
//! A [`TenantMix`] assigns every surviving request a tenant drawn by
//! weight from its own seed-derived stream; per-tenant rate limits and
//! SLOs travel with the mix into the simulation's admission control (see
//! [`crate::sim`]).
//!
//! [`ScenarioSpec::library`] names the canonical scenarios — diurnal,
//! flash crowd, overload with load shedding, multi-tenant, crash/recovery
//! and degraded silicon — each with the property its tests pin. The
//! `serve` binary runs every one of them as a named arm of its default
//! sweep, so the trend gate tracks the whole failure/overload regime
//! across PRs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use neura_lab::spec::derive_seed;

use crate::arrivals::{Request, StreamSpec};
use crate::fault::FaultSpec;

/// A multiplicative modulation of the arrival rate over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateShape {
    /// Sinusoidal day/night modulation:
    /// `rate(t) = base x (1 + depth x sin(2π x cycles x t / duration))`.
    /// The wave averages to 1 over whole cycles, so the stream keeps its
    /// base *mean* rate while peaks reach `1 + depth` times it.
    Diurnal {
        /// Whole modulation cycles over the stream duration.
        cycles: f64,
        /// Peak deviation from the base rate, in `[0, 1)`.
        depth: f64,
    },
    /// A flash crowd: the rate multiplies by `boost` inside the window
    /// starting at fraction `start` of the duration and lasting fraction
    /// `width` of it.
    Flash {
        /// Window start as a fraction of the duration, in `[0, 1)`.
        start: f64,
        /// Window width as a fraction of the duration, in `(0, 1]`.
        width: f64,
        /// Rate multiplier inside the window.
        boost: f64,
    },
}

impl RateShape {
    /// The rate factor at time `t` of a `duration_s`-long stream.
    ///
    /// # Panics
    ///
    /// Panics when a shape parameter is outside its documented range.
    pub fn factor(&self, t: f64, duration_s: f64) -> f64 {
        match *self {
            RateShape::Diurnal { cycles, depth } => {
                assert!(cycles > 0.0 && cycles.is_finite(), "diurnal cycles must be positive");
                assert!((0.0..1.0).contains(&depth), "diurnal depth must lie in [0, 1)");
                1.0 + depth * (std::f64::consts::TAU * cycles * t / duration_s).sin()
            }
            RateShape::Flash { start, width, boost } => {
                assert!((0.0..1.0).contains(&start), "flash start must lie in [0, 1)");
                assert!(width > 0.0 && width <= 1.0, "flash width must lie in (0, 1]");
                assert!(boost.is_finite() && boost > 0.0, "flash boost must be positive");
                let frac = t / duration_s;
                if frac >= start && frac < start + width {
                    boost
                } else {
                    1.0
                }
            }
        }
    }

    /// The shape's largest factor — the thinning generator's headroom.
    pub fn peak(&self) -> f64 {
        match *self {
            RateShape::Diurnal { depth, .. } => 1.0 + depth,
            RateShape::Flash { boost, .. } => boost.max(1.0),
        }
    }

    /// Stable ID fragment (`"diurnal4x0.8"`, `"flash4.0@0.5"`).
    pub fn id(&self) -> String {
        match *self {
            RateShape::Diurnal { cycles, depth } => format!("diurnal{cycles:?}x{depth:?}"),
            RateShape::Flash { start, boost, .. } => format!("flash{boost:?}@{start:?}"),
        }
    }
}

/// One tenant of a multi-tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Stable name, used in per-tenant record IDs.
    pub name: String,
    /// Relative traffic weight (requests draw tenants by weight).
    pub weight: f64,
    /// Admitted-throughput cap in requests per second (`None` =
    /// unlimited). Enforced by the simulation's token-bucket admission.
    pub rate_limit_rps: Option<f64>,
    /// Latency SLO in seconds (`None` = none); reported as per-tenant SLO
    /// attainment, never enforced.
    pub slo_s: Option<f64>,
}

/// Burst allowance of the admission token bucket, in seconds of the
/// tenant's rate limit: a tenant may briefly admit up to
/// `rate x TENANT_BURST_S` requests beyond the steady rate (at least 1).
pub const TENANT_BURST_S: f64 = 0.25;

/// A weighted tenant population with optional per-tenant limits and SLOs.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// A mix from explicit tenant specs.
    ///
    /// # Panics
    ///
    /// Panics when the mix is empty, a weight is not finite and positive,
    /// a name repeats, or a rate limit / SLO is not finite and positive.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "a tenant mix needs at least one tenant");
        for (i, tenant) in tenants.iter().enumerate() {
            assert!(
                tenant.weight.is_finite() && tenant.weight > 0.0,
                "tenant {:?} weight must be positive",
                tenant.name
            );
            assert!(
                tenants[..i].iter().all(|t| t.name != tenant.name),
                "duplicate tenant name {:?}",
                tenant.name
            );
            if let Some(limit) = tenant.rate_limit_rps {
                assert!(limit.is_finite() && limit > 0.0, "rate limits must be positive");
            }
            if let Some(slo) = tenant.slo_s {
                assert!(slo.is_finite() && slo > 0.0, "SLOs must be positive");
            }
        }
        TenantMix { tenants }
    }

    /// Parses one `name:weight[:limit_rps[:slo_ms]]` flag value (0 in the
    /// limit or SLO position means "none"). Call once per `--tenant` flag
    /// and collect into [`Self::new`].
    pub fn parse_tenant(raw: &str) -> Option<TenantSpec> {
        let mut parts = raw.split(':');
        let name = parts.next()?.trim();
        if name.is_empty() {
            return None;
        }
        let weight: f64 = parts.next()?.trim().parse().ok()?;
        if !weight.is_finite() || weight <= 0.0 {
            return None;
        }
        let optional = |raw: Option<&str>| -> Option<Option<f64>> {
            match raw {
                None => Some(None),
                Some(text) => {
                    let value: f64 = text.trim().parse().ok()?;
                    if value < 0.0 || !value.is_finite() {
                        return None;
                    }
                    Some((value > 0.0).then_some(value))
                }
            }
        };
        let rate_limit_rps = optional(parts.next())?;
        let slo_ms = optional(parts.next())?;
        if parts.next().is_some() {
            return None;
        }
        Some(TenantSpec {
            name: name.to_string(),
            weight,
            rate_limit_rps,
            slo_s: slo_ms.map(|ms| ms / 1e3),
        })
    }

    /// The tenants, in declaration order (request `tenant` indices point
    /// into this slice).
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Never true — [`Self::new`] rejects empty mixes.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Draws one tenant index by weight.
    pub fn draw(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.tenants.iter().map(|t| t.weight).sum();
        let mut u = rng.gen::<f64>() * total;
        for (i, tenant) in self.tenants.iter().enumerate() {
            u -= tenant.weight;
            if u < 0.0 {
                return i;
            }
        }
        self.tenants.len() - 1
    }

    /// Stable ID fragment (`"gold4+free1"` — names and weights).
    pub fn id(&self) -> String {
        self.tenants
            .iter()
            .map(|t| format!("{}{:?}", t.name, t.weight))
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// A rate-shaped, optionally multi-tenant stream: shapes compose over the
/// base generator by thinning, so the result is exactly as deterministic
/// as the base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapedStream {
    /// The base stationary stream (its `rps` is the shaped stream's mean
    /// rate wherever the shapes average to 1).
    pub base: StreamSpec,
    /// Rate shapes, composed multiplicatively (empty = stationary).
    pub shapes: Vec<RateShape>,
    /// Tenant population (`None` = single implicit tenant 0).
    pub tenants: Option<TenantMix>,
}

impl ShapedStream {
    /// A stream that only assigns tenants, without reshaping the rate.
    pub fn tenants_only(base: StreamSpec, tenants: TenantMix) -> Self {
        ShapedStream { base, shapes: Vec::new(), tenants: Some(tenants) }
    }

    /// Expands the spec into a concrete stream: the base generator runs at
    /// the shapes' combined peak rate, each candidate survives with
    /// probability `factor(t) / peak`, survivors are re-numbered in
    /// arrival order and assigned tenants by weight. Thinning and tenant
    /// draws come from RNG streams derived from the base seed, so the
    /// result is a pure function of the spec.
    ///
    /// # Panics
    ///
    /// As [`StreamSpec::generate`], plus the [`RateShape`] parameter
    /// checks.
    pub fn generate(&self) -> Vec<Request> {
        let peak: f64 = self.shapes.iter().map(RateShape::peak).product();
        let raw = StreamSpec { rps: self.base.rps * peak, ..self.base.clone() }.generate();
        let mut thin = StdRng::seed_from_u64(derive_seed(self.base.seed, "shape"));
        let mut tenant_rng = StdRng::seed_from_u64(derive_seed(self.base.seed, "tenant"));
        let mut requests = Vec::new();
        for request in raw {
            let factor: f64 = self
                .shapes
                .iter()
                .map(|s| s.factor(request.arrival_s, self.base.duration_s))
                .product();
            // Draw unconditionally so the survivor set of a request never
            // depends on how earlier draws were used.
            let keep = thin.gen::<f64>() < factor / peak;
            if !keep {
                continue;
            }
            let tenant = self.tenants.as_ref().map_or(0, |mix| mix.draw(&mut tenant_rng));
            requests.push(Request {
                id: requests.len(),
                arrival_s: request.arrival_s,
                class: request.class,
                tenant,
            });
        }
        requests
    }

    /// Stable ID fragment: the shape IDs joined by `+` (`"flat"` when no
    /// shape is configured).
    pub fn shape_id(&self) -> String {
        if self.shapes.is_empty() {
            "flat".to_string()
        } else {
            self.shapes.iter().map(RateShape::id).collect::<Vec<_>>().join("+")
        }
    }
}

/// One named scenario of the library: a rate shape, a failure regime and
/// admission-control knobs over a calibrated base workload, plus the
/// property its tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Stable name (`"diurnal"`, `"overload"`, ...), used in run IDs.
    pub name: &'static str,
    /// One-line description for docs and the `serve --help` text.
    pub summary: &'static str,
    /// Rate shapes composed over the base stream.
    pub shapes: Vec<RateShape>,
    /// Offered load as a multiple of the scenario fleet's capacity
    /// (1.0 = the fleet can just barely keep up on average).
    pub load: f64,
    /// Backlog bound for load shedding (`None` = admit everything).
    pub queue_bound: Option<usize>,
    /// Tenant population (`None` = single-tenant).
    pub tenants: Option<TenantMix>,
    /// Injected shard crashes.
    pub crashes: usize,
    /// Probability each scheduled scale-up fails.
    pub provision_fail: f64,
    /// Degraded groups as `(group, service multiplier)`.
    pub degraded: Vec<(usize, f64)>,
    /// Whether the scenario runs under the autoscaler (crash recovery
    /// flows through its provisioning path).
    pub elastic: bool,
    /// The property the scenario's tests pin, for the README table.
    pub pinned: &'static str,
}

impl ScenarioSpec {
    /// The canonical scenario library, in stable order. Every entry lands
    /// as a named arm in the `serve` binary's default sweep.
    pub fn library() -> Vec<ScenarioSpec> {
        let flat = |name, summary, pinned| ScenarioSpec {
            name,
            summary,
            shapes: Vec::new(),
            load: 0.8,
            queue_bound: None,
            tenants: None,
            crashes: 0,
            provision_fail: 0.0,
            degraded: Vec::new(),
            elastic: false,
            pinned,
        };
        vec![
            ScenarioSpec {
                shapes: vec![RateShape::Diurnal { cycles: 4.0, depth: 0.8 }],
                load: 0.7,
                elastic: true,
                ..flat(
                    "diurnal",
                    "sinusoidal day/night wave under the autoscaler",
                    "byte-identical across runner threads and repeat runs",
                )
            },
            ScenarioSpec {
                shapes: vec![RateShape::Flash { start: 0.5, width: 0.1, boost: 4.0 }],
                load: 0.7,
                elastic: true,
                ..flat(
                    "flash",
                    "4x flash crowd mid-stream under the autoscaler",
                    "byte-identical across runner threads and repeat runs",
                )
            },
            ScenarioSpec {
                load: 3.0,
                queue_bound: Some(OVERLOAD_QUEUE_BOUND),
                ..flat(
                    "overload",
                    "3x capacity against a bounded queue",
                    "shedding bounds admitted p99 and queue depth; shed rate is monotone in load",
                )
            },
            ScenarioSpec {
                load: 1.5,
                queue_bound: Some(OVERLOAD_QUEUE_BOUND),
                tenants: Some(TenantMix::new(vec![
                    TenantSpec {
                        name: "gold".to_string(),
                        weight: 4.0,
                        rate_limit_rps: None,
                        slo_s: Some(0.25),
                    },
                    TenantSpec {
                        name: "silver".to_string(),
                        weight: 2.0,
                        rate_limit_rps: None,
                        slo_s: None,
                    },
                    TenantSpec {
                        name: "free".to_string(),
                        weight: 2.0,
                        rate_limit_rps: Some(1.0),
                        slo_s: None,
                    },
                ])),
                ..flat(
                    "tenants",
                    "gold/silver/free mix with a rate-limited free tier",
                    "admitted throughput never exceeds a tenant's rate limit",
                )
            },
            ScenarioSpec {
                load: 0.9,
                crashes: 2,
                elastic: true,
                ..flat(
                    "crash",
                    "two seed-derived shard crashes, recovery via the autoscaler",
                    "exactly-once accounting; recovery waits out the provisioning delay",
                )
            },
            ScenarioSpec {
                load: 0.9,
                provision_fail: 0.5,
                degraded: vec![(0, 3.0)],
                elastic: true,
                ..flat(
                    "degraded",
                    "3x-slow silicon with half of all provisioning attempts failing",
                    "exactly-once accounting under degraded service and flaky provisioning",
                )
            },
        ]
    }

    /// Looks a scenario up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        Self::library().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Every library scenario name, in library order.
    pub fn names() -> Vec<&'static str> {
        Self::library().into_iter().map(|s| s.name).collect()
    }

    /// The scenario's failure regime over a `window_s` horizon, seeded
    /// from the scenario seed (`None` when the scenario is fault-free).
    pub fn fault_spec(&self, seed: u64, window_s: f64) -> Option<FaultSpec> {
        let mut spec = FaultSpec::new(derive_seed(seed, "fault"), window_s)
            .with_crashes(self.crashes)
            .with_provision_fail(self.provision_fail);
        for &(group, multiplier) in &self.degraded {
            spec = spec.with_degraded(group, multiplier);
        }
        (!spec.is_benign()).then_some(spec)
    }

    /// Wraps a calibrated base stream in the scenario's shapes and
    /// tenants. The caller sets `base.rps` to
    /// `load x fleet capacity` and `base.seed` to the scenario seed.
    pub fn shaped(&self, base: StreamSpec) -> ShapedStream {
        ShapedStream { base, shapes: self.shapes.clone(), tenants: self.tenants.clone() }
    }
}

/// The backlog bound the overload scenarios shed at.
pub const OVERLOAD_QUEUE_BOUND: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;

    fn base(seed: u64) -> StreamSpec {
        StreamSpec {
            arrival: ArrivalProcess::Poisson,
            rps: 1000.0,
            duration_s: 2.0,
            mix_size: 2,
            shrinks: vec![1, 2],
            seed,
        }
    }

    #[test]
    fn shapes_average_to_their_documented_means() {
        let duration = 2.0;
        let samples = 10_000;
        let mean = |shape: RateShape| {
            (0..samples)
                .map(|i| shape.factor(duration * i as f64 / samples as f64, duration))
                .sum::<f64>()
                / samples as f64
        };
        let diurnal = mean(RateShape::Diurnal { cycles: 4.0, depth: 0.8 });
        assert!((diurnal - 1.0).abs() < 0.01, "whole diurnal cycles average to 1, got {diurnal}");
        let flash = mean(RateShape::Flash { start: 0.5, width: 0.1, boost: 4.0 });
        assert!((flash - 1.3).abs() < 0.01, "flash mean is 1 + width x (boost - 1), got {flash}");
    }

    #[test]
    fn shaped_streams_are_deterministic_sorted_and_positional() {
        let shaped = ShapedStream {
            base: base(11),
            shapes: vec![
                RateShape::Diurnal { cycles: 4.0, depth: 0.8 },
                RateShape::Flash { start: 0.25, width: 0.1, boost: 2.0 },
            ],
            tenants: None,
        };
        let stream = shaped.generate();
        assert!(!stream.is_empty());
        assert_eq!(stream, shaped.generate(), "same spec, same stream");
        assert!(stream.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, request) in stream.iter().enumerate() {
            assert_eq!(request.id, i);
            assert_eq!(request.tenant, 0, "no mix, implicit tenant 0");
        }
    }

    #[test]
    fn unshaped_single_tenant_streams_match_their_base() {
        let shaped = ShapedStream { base: base(3), shapes: Vec::new(), tenants: None };
        assert_eq!(shaped.generate(), base(3).generate());
        assert_eq!(shaped.shape_id(), "flat");
    }

    #[test]
    fn diurnal_thinning_preserves_the_mean_rate() {
        let shaped = ShapedStream {
            base: base(5),
            shapes: vec![RateShape::Diurnal { cycles: 4.0, depth: 0.8 }],
            tenants: None,
        };
        let n = shaped.generate().len() as f64;
        let expected = shaped.base.rps * shaped.base.duration_s;
        assert!((n - expected).abs() < expected * 0.15, "{n} arrivals vs {expected} expected");
    }

    #[test]
    fn flash_windows_concentrate_arrivals() {
        let shaped = ShapedStream {
            base: base(9),
            shapes: vec![RateShape::Flash { start: 0.5, width: 0.1, boost: 4.0 }],
            tenants: None,
        };
        let stream = shaped.generate();
        let duration = shaped.base.duration_s;
        let in_window = stream
            .iter()
            .filter(|r| r.arrival_s >= 0.5 * duration && r.arrival_s < 0.6 * duration)
            .count() as f64;
        // The window holds 10% of the time but boost/(0.9 + 0.1 x boost) =
        // ~31% of the arrivals.
        let share = in_window / stream.len() as f64;
        assert!(share > 0.25, "flash window holds {share} of arrivals, expected ~0.31");
    }

    #[test]
    fn tenants_draw_by_weight_from_their_own_stream() {
        let mix = TenantMix::new(vec![
            TenantSpec { name: "a".into(), weight: 3.0, rate_limit_rps: None, slo_s: None },
            TenantSpec { name: "b".into(), weight: 1.0, rate_limit_rps: None, slo_s: None },
        ]);
        let shaped = ShapedStream::tenants_only(base(13), mix);
        let stream = shaped.generate();
        let b_share = stream.iter().filter(|r| r.tenant == 1).count() as f64 / stream.len() as f64;
        assert!((b_share - 0.25).abs() < 0.05, "tenant b drew {b_share}, expected ~0.25");
        // Tenant assignment must not perturb arrival times: same base,
        // same arrivals.
        let plain = base(13).generate();
        assert_eq!(stream.len(), plain.len());
        assert!(stream.iter().zip(&plain).all(|(s, p)| s.arrival_s == p.arrival_s));
    }

    #[test]
    fn tenant_flags_parse_and_reject_malformed_input() {
        let gold = TenantMix::parse_tenant("gold:4:0:250").expect("full form parses");
        assert_eq!(gold.name, "gold");
        assert_eq!(gold.rate_limit_rps, None, "0 means no limit");
        assert_eq!(gold.slo_s, Some(0.25));
        let free = TenantMix::parse_tenant("free:1:200").expect("limit-only form parses");
        assert_eq!(free.rate_limit_rps, Some(200.0));
        assert_eq!(free.slo_s, None);
        assert!(TenantMix::parse_tenant("bare:2").is_some());
        for bad in ["", "noweight", "x:-1", "x:0", "x:1:2:3:4", ":2"] {
            assert!(TenantMix::parse_tenant(bad).is_none(), "{bad:?} must not parse");
        }
        let mix = TenantMix::new(vec![gold, free]);
        assert_eq!(mix.id(), "gold4.0+free1.0");
        assert_eq!(mix.len(), 2);
    }

    #[test]
    fn the_library_is_stable_and_named_uniquely() {
        let library = ScenarioSpec::library();
        assert!(library.len() >= 5, "the default sweep promises at least 5 scenario arms");
        let names = ScenarioSpec::names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "scenario names are unique");
        for scenario in &library {
            assert_eq!(ScenarioSpec::by_name(scenario.name).as_ref(), Some(scenario));
            assert!(!scenario.pinned.is_empty(), "every scenario pins a property");
            assert!(scenario.load > 0.0);
        }
        assert!(ScenarioSpec::by_name("DIURNAL").is_some(), "lookup is case-insensitive");
        assert!(ScenarioSpec::by_name("nope").is_none());
        // The fault-free scenarios produce no fault spec; the crash
        // scenario derives one from the seed.
        let diurnal = ScenarioSpec::by_name("diurnal").unwrap();
        assert!(diurnal.fault_spec(1, 2.0).is_none());
        let crash = ScenarioSpec::by_name("crash").unwrap();
        let fault = crash.fault_spec(1, 2.0).expect("crash scenario has faults");
        assert_eq!(fault.crashes, 2);
        assert_eq!(fault.id(), "crash2");
    }

    #[test]
    #[should_panic(expected = "duplicate tenant name")]
    fn duplicate_tenant_names_are_rejected() {
        let t = |name: &str| TenantSpec {
            name: name.to_string(),
            weight: 1.0,
            rate_limit_rps: None,
            slo_s: None,
        };
        TenantMix::new(vec![t("a"), t("a")]);
    }
}
