//! `neura_serve` — request-stream serving simulation over the NeuraChip
//! model.
//!
//! The rest of the workspace evaluates the accelerator one kernel at a
//! time; this crate models what happens when *many* GNN/SpGEMM inference
//! requests contend for a fleet of simulated chips: open-loop arrival
//! streams, scheduling/batching policies and multi-chip sharding, measured
//! as tail latency, sustained throughput, queue depth and per-shard
//! utilisation. Data flows through five modules:
//!
//! 1. **[`arrivals`]** — a [`StreamSpec`] (Poisson or bursty on/off
//!    arrivals, target rate, duration, request mix) expands into a
//!    deterministic, time-sorted request stream via the workspace's seeded
//!    `StdRng`.
//! 2. **[`cost`]** — a [`CostTable`] memoises the cycle cost of one request
//!    per [`RequestClass`] (dataset × per-request shrink), measured once on
//!    the fleet's `ChipConfig` through the existing cycle-level `neura_chip`
//!    execution path, so large streams never re-simulate the chip.
//! 3. **[`policy`]** — FIFO, shortest-job-first (weighted by
//!    `WorkloadProfile::flops`) and batch-by-dataset (max-batch-size /
//!    timeout knobs) dispatch ordering.
//! 4. **[`fleet`]** — the shard model: identical chip replicas, each batch
//!    dispatched to the least-loaded idle shard.
//! 5. **[`sim`]** — the event-driven replay producing a [`ServeOutcome`]:
//!    p50/p95/p99 latency, throughput, queue depth and utilisation, emitted
//!    as `neura_lab` `RunRecord`s.
//!
//! On top sits **[`spec`]**: a [`ServeSweep`] enumerates arrival × rate ×
//! policy × shards scenarios with stable IDs and stream seeds derived from
//! the arrival axes only — so every policy/shard arm replays the identical
//! stream — ready to fan out on `neura_lab::Runner` (the `serve` binary in
//! `neura_bench` does exactly that, and its artifact is byte-identical for
//! any `NEURA_LAB_THREADS`).

#![warn(missing_docs)]

pub mod arrivals;
pub mod cost;
pub mod fleet;
pub mod policy;
pub mod sim;
pub mod spec;

pub use arrivals::{ArrivalProcess, Request, StreamSpec};
pub use cost::{ClassCost, CostTable, RequestClass};
pub use fleet::{ShardFleet, ShardStats};
pub use policy::Policy;
pub use sim::{simulate, ServeOutcome};
pub use spec::{ServeScenario, ServeSweep};
