//! `neura_serve` — request-stream serving simulation over the NeuraChip
//! model.
//!
//! The rest of the workspace evaluates the accelerator one kernel at a
//! time; this crate models what happens when *many* GNN/SpGEMM inference
//! requests contend for a fleet of simulated chips: open- and closed-loop
//! workloads, rate-shaped multi-tenant traffic, scheduling/batching
//! policies, heterogeneous multi-chip sharding with class-aware dispatch,
//! elastic (autoscaled) capacity, admission control with load shedding,
//! and deterministic fault injection, measured as tail latency, sustained
//! throughput, shed rate, queue depth, per-shard and per-group
//! utilisation, crash/recovery accounting and provisioned shard-seconds
//! cost. Data flows through nine modules:
//!
//! 1. **[`arrivals`]** — demand. A [`StreamSpec`] (Poisson or bursty
//!    arrivals, target rate, duration, request mix) expands into a
//!    deterministic, time-sorted open-loop stream; a [`ClosedLoopSpec`]
//!    describes N clients with seeded think times whose next request only
//!    exists once the previous response lands. Both are [`Workload`]s.
//! 2. **[`cost`]** — a [`CostTable`] memoises the cycle cost of one
//!    request per *(chip fingerprint, [`RequestClass`])* pair
//!    (`ChipConfig::fingerprint` × dataset × per-request shrink), measured
//!    once through the existing cycle-level `neura_chip` execution path —
//!    so large streams never re-simulate the chip and mixed fleets never
//!    re-simulate classes their groups share.
//! 3. **[`policy`]** — *what* dispatches next: FIFO, shortest-job-first
//!    (weighted by `WorkloadProfile::flops`) and batch-by-dataset
//!    (max-batch-size / timeout knobs).
//! 4. **[`fleet`]** — the shard model: [`ShardGroup`]s of chip replicas
//!    (each group its own `ChipConfig`), with activation bookkeeping for
//!    elastic fleets and per-group shard-seconds accounting.
//! 5. **[`dispatch`]** — *where* it dispatches: the class-aware
//!    [`DispatchPolicy`] trait with least-loaded, class-affinity
//!    (big classes → big silicon) and cost-aware implementations.
//! 6. **[`autoscale`]** — elastic capacity: an [`AutoscalePolicy`]
//!    queue-depth controller with a provisioning delay, growing and
//!    shrinking the fleet between bounds while the outcome reports the
//!    shard-seconds the latency cost.
//! 7. **[`scenario`]** — production traffic: [`RateShape`]s (diurnal
//!    waves, flash crowds) composed over the base generators by thinning,
//!    [`TenantMix`]es with per-tenant rate limits and SLOs, and the named
//!    [`ScenarioSpec`] library every `serve` sweep runs.
//! 8. **[`fault`]** — failure regimes: a [`FaultSpec`] expands into a
//!    seed-derived [`FaultPlan`] of shard crashes (in-flight work
//!    re-dispatches), provisioning failures and degraded-silicon service
//!    multipliers.
//! 9. **[`sim`]** — the event-source replay producing a [`ServeOutcome`]:
//!    p50/p95/p99 latency, throughput, shed/crash/recovery accounting,
//!    queue depth, utilisation, shard-seconds and scale events, emitted
//!    as `neura_lab` `RunRecord`s. A [`ServeConfig`] carries the
//!    admission-control and fault knobs alongside the classic
//!    policy/fleet/dispatch/autoscale axes.
//! 10. **[`telemetry`]** — deterministic observability: the `*_traced`
//!     replay entry points record a [`Trace`] of per-request lifecycle
//!     events (arrival → admit/shed → dispatch → completion, plus
//!     crash/scale/provisioning events), a mergeable log-bucketed
//!     [`LatencyHistogram`] bounds percentile error at 1/256, and a
//!     windowed [`Timeline`] replays the trace into fixed-interval
//!     samples of queue depth, in-flight, shed rate, per-group
//!     utilisation, per-tenant throughput and sliding p50/p99 — emitted
//!     as `neura_lab.timeline/v1` artifacts. Tracing is opt-in and costs
//!     nothing when off.
//!
//! On top sits **[`spec`]**: a [`ServeSweep`] enumerates workload × fleet
//! mix × dispatch × autoscaler × policy scenarios with stable IDs and
//! workload seeds derived from the workload axes only — so every serving
//! arm replays the identical demand — ready to fan out on
//! `neura_lab::Runner` (the `serve` binary in `neura_bench` does exactly
//! that, and its artifact is byte-identical for any `NEURA_LAB_THREADS`).

#![warn(missing_docs)]

pub mod arrivals;
pub mod autoscale;
pub mod cost;
pub mod dispatch;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod policy;
pub mod scenario;
pub mod sim;
pub mod spec;
pub mod telemetry;

pub use arrivals::{ArrivalProcess, ClosedLoopSpec, Request, StreamSpec, Workload};
pub use autoscale::{AutoscalePolicy, ScaleEvent};
pub use cost::{ClassCost, CostModel, CostTable, RequestClass, DEFAULT_MARGINAL_BATCH_FRACTION};
pub use dispatch::{ClassAffinity, CostAware, DispatchKind, DispatchPolicy, LeastLoaded};
pub use engine::{
    simulate_config_parallel, simulate_config_traced_parallel, simulate_stream_config_parallel,
    simulate_stream_config_traced_parallel, EnginePlan,
};
pub use fault::{CrashEvent, FaultPlan, FaultSpec};
pub use fleet::{GroupStats, ShardFleet, ShardGroup, ShardStats};
pub use policy::Policy;
pub use scenario::{RateShape, ScenarioSpec, ShapedStream, TenantMix, TenantSpec};
pub use sim::{
    simulate, simulate_config, simulate_config_traced, simulate_stream, simulate_stream_config,
    simulate_stream_config_traced, ServeConfig, ServeOutcome, TenantOutcome, SHED_LATENCY_S,
};
pub use spec::{FleetMix, ServeScenario, ServeSweep, WorkloadAxis};
pub use telemetry::{
    LatencyHistogram, ShedReason, Timeline, Trace, TraceEvent, WindowStats, RELATIVE_ERROR_BOUND,
};
