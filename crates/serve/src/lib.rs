//! `neura_serve` — request-stream serving simulation over the NeuraChip
//! model.
//!
//! The rest of the workspace evaluates the accelerator one kernel at a
//! time; this crate models what happens when *many* GNN/SpGEMM inference
//! requests contend for a fleet of simulated chips: open- and closed-loop
//! workloads, scheduling/batching policies, heterogeneous multi-chip
//! sharding with class-aware dispatch, and elastic (autoscaled) capacity,
//! measured as tail latency, sustained throughput, queue depth, per-shard
//! and per-group utilisation and provisioned shard-seconds cost. Data
//! flows through seven modules:
//!
//! 1. **[`arrivals`]** — demand. A [`StreamSpec`] (Poisson or bursty
//!    arrivals, target rate, duration, request mix) expands into a
//!    deterministic, time-sorted open-loop stream; a [`ClosedLoopSpec`]
//!    describes N clients with seeded think times whose next request only
//!    exists once the previous response lands. Both are [`Workload`]s.
//! 2. **[`cost`]** — a [`CostTable`] memoises the cycle cost of one
//!    request per *(chip fingerprint, [`RequestClass`])* pair
//!    (`ChipConfig::fingerprint` × dataset × per-request shrink), measured
//!    once through the existing cycle-level `neura_chip` execution path —
//!    so large streams never re-simulate the chip and mixed fleets never
//!    re-simulate classes their groups share.
//! 3. **[`policy`]** — *what* dispatches next: FIFO, shortest-job-first
//!    (weighted by `WorkloadProfile::flops`) and batch-by-dataset
//!    (max-batch-size / timeout knobs).
//! 4. **[`fleet`]** — the shard model: [`ShardGroup`]s of chip replicas
//!    (each group its own `ChipConfig`), with activation bookkeeping for
//!    elastic fleets and per-group shard-seconds accounting.
//! 5. **[`dispatch`]** — *where* it dispatches: the class-aware
//!    [`DispatchPolicy`] trait with least-loaded, class-affinity
//!    (big classes → big silicon) and cost-aware implementations.
//! 6. **[`autoscale`]** — elastic capacity: an [`AutoscalePolicy`]
//!    queue-depth controller with a provisioning delay, growing and
//!    shrinking the fleet between bounds while the outcome reports the
//!    shard-seconds the latency cost.
//! 7. **[`sim`]** — the event-source replay producing a [`ServeOutcome`]:
//!    p50/p95/p99 latency, throughput, queue depth, utilisation,
//!    shard-seconds and scale events, emitted as `neura_lab` `RunRecord`s.
//!
//! On top sits **[`spec`]**: a [`ServeSweep`] enumerates workload × fleet
//! mix × dispatch × autoscaler × policy scenarios with stable IDs and
//! workload seeds derived from the workload axes only — so every serving
//! arm replays the identical demand — ready to fan out on
//! `neura_lab::Runner` (the `serve` binary in `neura_bench` does exactly
//! that, and its artifact is byte-identical for any `NEURA_LAB_THREADS`).

#![warn(missing_docs)]

pub mod arrivals;
pub mod autoscale;
pub mod cost;
pub mod dispatch;
pub mod fleet;
pub mod policy;
pub mod sim;
pub mod spec;

pub use arrivals::{ArrivalProcess, ClosedLoopSpec, Request, StreamSpec, Workload};
pub use autoscale::{AutoscalePolicy, ScaleEvent};
pub use cost::{ClassCost, CostTable, RequestClass};
pub use dispatch::{ClassAffinity, CostAware, DispatchKind, DispatchPolicy, LeastLoaded};
pub use fleet::{GroupStats, ShardFleet, ShardGroup, ShardStats};
pub use policy::Policy;
pub use sim::{simulate, simulate_stream, ServeOutcome};
pub use spec::{FleetMix, ServeScenario, ServeSweep, WorkloadAxis};
