//! Deterministic fault injection for serving scenarios.
//!
//! Production fleets lose shards mid-batch, fail to provision replacement
//! capacity, and run degraded silicon that serves slower than its spec.
//! A [`FaultSpec`] describes such a failure regime declaratively — how
//! many shard crashes to inject over a time window, the probability a
//! scheduled provisioning action fails, and per-group service-time
//! multipliers for degraded silicon — and expands it into a concrete
//! [`FaultPlan`] whose every event derives from the spec's seed, exactly
//! like [`StreamSpec::generate`](crate::arrivals::StreamSpec::generate)
//! expands demand: the same spec always injects the identical faults, so
//! fault-injected artifacts stay byte-identical across runner thread
//! counts and repeat runs.
//!
//! The simulation (see [`crate::sim`]) consumes the plan at three points:
//! crash times pop as events (the victim's in-flight batch returns to the
//! queue head and the slot deactivates through the same fleet path a
//! scale-down uses), provisioning rolls gate every scheduled scale-up at
//! its effect time, and degraded multipliers stretch each dispatch on an
//! afflicted group. Recovery is *not* modelled separately: a crashed slot
//! is simply inactive, and the existing autoscaler provisioning path
//! re-activates it — after the usual provisioning delay — once the
//! backlog justifies it.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use neura_lab::spec::derive_seed;

/// Declarative description of a failure regime over one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// RNG seed — the plan is a pure function of the spec.
    pub seed: u64,
    /// Window in seconds over which crash times are drawn (usually the
    /// workload duration).
    pub window_s: f64,
    /// Number of shard crashes to inject, each at a seed-derived time in
    /// a seed-derived group.
    pub crashes: usize,
    /// Probability that a scheduled scale-up fails at its effect time
    /// (the slot stays inactive; the controller must decide again).
    pub provision_fail: f64,
    /// Degraded-silicon groups as `(group index, service multiplier)`;
    /// every dispatch on that group takes `multiplier` times as long.
    pub degraded: Vec<(usize, f64)>,
}

impl FaultSpec {
    /// A benign spec (no crashes, reliable provisioning, healthy
    /// silicon) over the given window.
    ///
    /// # Panics
    ///
    /// Panics unless the window is finite and positive.
    pub fn new(seed: u64, window_s: f64) -> Self {
        assert!(window_s.is_finite() && window_s > 0.0, "fault window must be positive");
        FaultSpec { seed, window_s, crashes: 0, provision_fail: 0.0, degraded: Vec::new() }
    }

    /// Sets the number of injected crashes (builder style).
    pub fn with_crashes(mut self, crashes: usize) -> Self {
        self.crashes = crashes;
        self
    }

    /// Sets the provisioning failure probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the probability lies within `[0, 1]`.
    pub fn with_provision_fail(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "provisioning failure probability must lie in [0, 1]"
        );
        self.provision_fail = probability;
        self
    }

    /// Marks one group as degraded silicon (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the multiplier is finite and at least 1.
    pub fn with_degraded(mut self, group: usize, multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier >= 1.0,
            "a degraded group serves slower, not faster: multiplier must be >= 1"
        );
        self.degraded.push((group, multiplier));
        self
    }

    /// Whether the spec injects nothing at all.
    pub fn is_benign(&self) -> bool {
        self.crashes == 0 && self.provision_fail == 0.0 && self.degraded.is_empty()
    }

    /// Stable ID fragment used in run IDs and artifact params
    /// (`"crash2"`, `"crash2+pf0.5"`, `"deg0x3"`, `"none"`).
    pub fn id(&self) -> String {
        let mut parts = Vec::new();
        if self.crashes > 0 {
            parts.push(format!("crash{}", self.crashes));
        }
        if self.provision_fail > 0.0 {
            parts.push(format!("pf{:?}", self.provision_fail));
        }
        for (group, multiplier) in &self.degraded {
            parts.push(format!("deg{group}x{multiplier:?}"));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Parses an [`id`](Self::id)-style fragment (`"crash2"`,
    /// `"crash1+pf0.5+deg0x3.0"`, `"none"`) into a spec over the given
    /// seed and window — the inverse of `id`, for `--fault` flags.
    pub fn parse(raw: &str, seed: u64, window_s: f64) -> Option<Self> {
        let mut spec = FaultSpec::new(seed, window_s);
        if raw.trim().eq_ignore_ascii_case("none") {
            return Some(spec);
        }
        for part in raw.split('+') {
            let part = part.trim();
            if let Some(count) = part.strip_prefix("crash") {
                spec.crashes = count.parse().ok().filter(|&n| n > 0)?;
            } else if let Some(probability) = part.strip_prefix("pf") {
                let probability: f64 = probability.parse().ok()?;
                if !(0.0..=1.0).contains(&probability) {
                    return None;
                }
                spec.provision_fail = probability;
            } else if let Some(rest) = part.strip_prefix("deg") {
                let (group, multiplier) = rest.split_once('x')?;
                let multiplier: f64 = multiplier.parse().ok()?;
                if !multiplier.is_finite() || multiplier < 1.0 {
                    return None;
                }
                spec.degraded.push((group.parse().ok()?, multiplier));
            } else {
                return None;
            }
        }
        Some(spec)
    }

    /// Expands the spec into a concrete plan for a fleet of `group_count`
    /// groups: crash `(time, group)` pairs drawn from the derived seed and
    /// sorted by time, per-group service multipliers, and the provisioning
    /// roll stream.
    ///
    /// # Panics
    ///
    /// Panics when the fleet has no groups or a degraded entry names a
    /// group outside the fleet.
    pub fn plan(&self, group_count: usize) -> FaultPlan {
        assert!(group_count >= 1, "a fault plan needs at least one shard group");
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, "faults"));
        let mut crashes: Vec<(f64, usize)> = (0..self.crashes)
            .map(|_| {
                let at: f64 = rng.gen::<f64>() * self.window_s;
                let group = rng.gen_range(0..group_count);
                (at, group)
            })
            .collect();
        crashes.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("crash times are finite").then(a.1.cmp(&b.1))
        });
        let mut multipliers = vec![1.0; group_count];
        for &(group, multiplier) in &self.degraded {
            assert!(group < group_count, "degraded group {group} outside fleet of {group_count}");
            multipliers[group] *= multiplier;
        }
        FaultPlan {
            crashes: crashes.into(),
            multipliers,
            provision_fail: self.provision_fail,
            rolls: StdRng::seed_from_u64(derive_seed(self.seed, "provision")),
        }
    }
}

/// The concrete, seed-derived fault schedule the simulation consumes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    crashes: VecDeque<(f64, usize)>,
    multipliers: Vec<f64>,
    provision_fail: f64,
    rolls: StdRng,
}

impl FaultPlan {
    /// The next scheduled crash time, if any remain.
    pub fn next_crash_at(&self) -> Option<f64> {
        self.crashes.front().map(|&(at, _)| at)
    }

    /// Pops the next crash due at or before `now` as `(time, group)`.
    pub fn pop_crash_due(&mut self, now: f64) -> Option<(f64, usize)> {
        if self.next_crash_at()? <= now {
            self.crashes.pop_front()
        } else {
            None
        }
    }

    /// The service-time multiplier of a group (1 for healthy silicon).
    pub fn multiplier(&self, group: usize) -> f64 {
        self.multipliers[group]
    }

    /// Rolls whether one scheduled scale-up succeeds. The roll stream is
    /// seeded, and the simulation consumes rolls in deterministic event
    /// order, so the sequence of outcomes is reproducible.
    pub fn provision_succeeds(&mut self) -> bool {
        if self.provision_fail <= 0.0 {
            return true;
        }
        self.rolls.gen::<f64>() >= self.provision_fail
    }
}

/// One injected shard crash, as reported in the outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// When the shard crashed.
    pub at_s: f64,
    /// The global slot index of the crashed shard.
    pub shard: usize,
    /// The group the shard belonged to.
    pub group: usize,
    /// Requests that were in flight on the shard and returned to the
    /// queue head for re-dispatch (0 when it crashed idle).
    pub redispatched: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let spec = FaultSpec::new(7, 2.0).with_crashes(5);
        let a = spec.plan(3);
        let b = spec.plan(3);
        let mut times_a = Vec::new();
        let mut a = a;
        while let Some((at, group)) = a.pop_crash_due(f64::INFINITY) {
            assert!((0.0..2.0).contains(&at));
            assert!(group < 3);
            times_a.push((at, group));
        }
        assert!(times_a.windows(2).all(|w| w[0].0 <= w[1].0), "crashes pop in time order");
        let mut b = b;
        let times_b: Vec<_> = std::iter::from_fn(|| b.pop_crash_due(f64::INFINITY)).collect();
        assert_eq!(times_a, times_b, "same spec, same plan");
        let mut c = FaultSpec::new(8, 2.0).with_crashes(5).plan(3);
        let times_c: Vec<_> = std::iter::from_fn(|| c.pop_crash_due(f64::INFINITY)).collect();
        assert_ne!(times_a, times_c, "different seeds decorrelate");
    }

    #[test]
    fn crashes_pop_only_when_due() {
        let mut plan = FaultSpec::new(3, 1.0).with_crashes(2).plan(1);
        let first = plan.next_crash_at().expect("two crashes scheduled");
        assert_eq!(plan.pop_crash_due(first - 1e-9), None, "not due yet");
        let (at, group) = plan.pop_crash_due(first).expect("due exactly at its time");
        assert_eq!(at, first);
        assert_eq!(group, 0, "single-group fleets only crash group 0");
    }

    #[test]
    fn degraded_multipliers_compose_and_healthy_groups_stay_at_one() {
        let plan = FaultSpec::new(1, 1.0).with_degraded(1, 2.0).with_degraded(1, 1.5).plan(2);
        assert_eq!(plan.multiplier(0), 1.0);
        assert!((plan.multiplier(1) - 3.0).abs() < 1e-12, "multipliers compose");
    }

    #[test]
    fn provision_rolls_match_the_configured_probability() {
        let mut sure = FaultSpec::new(1, 1.0).plan(1);
        assert!((0..100).all(|_| sure.provision_succeeds()), "benign specs never fail");
        let mut never = FaultSpec::new(1, 1.0).with_provision_fail(1.0).plan(1);
        assert!((0..100).all(|_| !never.provision_succeeds()));
        let mut half = FaultSpec::new(1, 1.0).with_provision_fail(0.5).plan(1);
        let failures = (0..1000).filter(|_| !half.provision_succeeds()).count();
        assert!((350..=650).contains(&failures), "{failures} failures out of 1000 at p=0.5");
    }

    #[test]
    fn ids_encode_the_regime() {
        assert_eq!(FaultSpec::new(1, 1.0).id(), "none");
        assert_eq!(FaultSpec::new(1, 1.0).with_crashes(2).id(), "crash2");
        assert_eq!(
            FaultSpec::new(1, 1.0).with_crashes(1).with_provision_fail(0.5).id(),
            "crash1+pf0.5"
        );
        assert_eq!(FaultSpec::new(1, 1.0).with_degraded(0, 3.0).id(), "deg0x3.0");
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for spec in [
            FaultSpec::new(9, 2.0),
            FaultSpec::new(9, 2.0).with_crashes(3),
            FaultSpec::new(9, 2.0).with_crashes(1).with_provision_fail(0.5),
            FaultSpec::new(9, 2.0).with_degraded(0, 3.0).with_degraded(1, 1.5),
        ] {
            assert_eq!(FaultSpec::parse(&spec.id(), 9, 2.0), Some(spec.clone()), "{}", spec.id());
        }
        for bad in ["crash", "crash0", "pf1.5", "deg0", "deg0x0.5", "bogus", "crash2+", ""] {
            assert!(FaultSpec::parse(bad, 9, 2.0).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    #[should_panic(expected = "outside fleet")]
    fn degraded_groups_must_exist() {
        FaultSpec::new(1, 1.0).with_degraded(2, 2.0).plan(2);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn speedup_multipliers_are_rejected() {
        FaultSpec::new(1, 1.0).with_degraded(0, 0.5);
    }
}
