//! The parallel-in-time serving engine behind [`sim`](crate::sim).
//!
//! The event loop that used to live inline in `sim::run` is factored here
//! into a resumable fragment runner: [`run_until`] advances an
//! [`EngineState`] up to (but excluding) a time limit and can be called
//! again to continue — the seam between two calls carries the backlog,
//! the in-flight batches, the fault plan, the pending provisioning ops
//! and the closed-loop client RNGs, so splitting a replay at any set of
//! boundaries reproduces the serial event sequence exactly.
//!
//! On top of the fragment runner, an [`EnginePlan`] chooses how a
//! scenario parallelises:
//!
//! - **Epochs** partition the simulated timeline at fixed boundaries.
//!   A first (cheap, output-free) pass computes the seam state at every
//!   boundary; a second pass replays all fragments concurrently on the
//!   `neura_lab` work-stealing runner, each recording its slice of the
//!   output, and the slices concatenate in epoch order. Because a pause
//!   happens *before* the time-advance accrual, a span that crosses a
//!   boundary is still accrued in one `f64` operation by the next
//!   fragment — so the merged artifact is byte-identical to the serial
//!   engine for every epoch width and every thread count (serial = one
//!   epoch).
//! - **Lanes** partition a closed-loop scenario *itself*: clients and
//!   shard groups split round-robin into independent sub-scenarios that
//!   replay concurrently and merge deterministically (arrivals by
//!   `(time, lane, id)`, shard slots re-laid group-major, per-group
//!   counters summed in lane order). A lane count is part of the
//!   scenario definition — `lanes = 4` is a *different scenario* than
//!   `lanes = 1`, with identical results for every thread count — and is
//!   what buys near-linear speedup on long closed-loop replays.
//!
//! The [`sim`](crate::sim) entry points are thin wrappers over
//! [`simulate_config_parallel`] and friends with a serial plan.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use neura_lab::Runner;

use crate::arrivals::{ClosedLoopClients, ClosedLoopSpec, Request, Workload};
use crate::autoscale::{Decision, ScaleEvent};
use crate::cost::{CostTable, RequestClass};
use crate::fault::{CrashEvent, FaultPlan};
use crate::fleet::{lane_groups, lane_share, GroupStats, ShardFleet, ShardGroup, ShardStats};
use crate::policy::Policy;
use crate::scenario::{TenantMix, TENANT_BURST_S};
use crate::sim::{ServeConfig, ServeOutcome, TenantOutcome, SHED_LATENCY_S};
use crate::telemetry::{ShedReason, Trace, TraceEvent, TraceGroup, TraceTenant};

/// Upper bound on the number of epoch fragments a plan expands to, so a
/// tiny `--epoch-ms` against a long horizon cannot allocate an absurd
/// seam vector. Beyond it the remaining timeline runs as one fragment.
pub const MAX_EPOCHS: usize = 1024;

/// How a scenario replay is decomposed for parallel execution.
///
/// The default ([`EnginePlan::serial`]) runs the classic single-fragment
/// event loop. Epoch settings split the timeline; a lane count splits a
/// closed-loop scenario into independent sub-scenarios (see the module
/// docs for the determinism contract of each axis).
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePlan {
    /// Number of equal-width timeline epochs over the workload horizon
    /// (used when [`Self::epoch_s`] is unset; `1` = serial).
    pub epochs: usize,
    /// Explicit epoch width in simulated seconds; overrides
    /// [`Self::epochs`] when set.
    pub epoch_s: Option<f64>,
    /// Closed-loop lane count (`1` = undecomposed). Lanes apply only to
    /// closed-loop workloads without autoscaling, admission control,
    /// tenants, or effectful faults; ineligible scenarios fall back to
    /// the epoch/serial path.
    pub lanes: usize,
    /// Worker threads for the fragment fan-out; `None` reads
    /// `NEURA_LAB_THREADS` (the `neura_lab::Runner` default).
    pub threads: Option<usize>,
}

impl Default for EnginePlan {
    fn default() -> Self {
        EnginePlan::serial()
    }
}

impl EnginePlan {
    /// The serial plan: one epoch, one lane, runner-default threads.
    pub fn serial() -> Self {
        EnginePlan { epochs: 1, epoch_s: None, lanes: 1, threads: None }
    }

    /// Sets the epoch count (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `epochs == 0`.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1, "an engine plan needs at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Sets an explicit epoch width in simulated seconds (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `width_s` is finite and positive.
    pub fn with_epoch_s(mut self, width_s: f64) -> Self {
        assert!(width_s.is_finite() && width_s > 0.0, "epoch width must be finite and positive");
        self.epoch_s = Some(width_s);
        self
    }

    /// Sets the closed-loop lane count (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "an engine plan needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Pins the worker thread count (builder style), overriding the
    /// `NEURA_LAB_THREADS` environment default.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "an engine plan needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// Whether this plan decomposes nothing (single epoch, single lane).
    pub fn is_serial(&self) -> bool {
        self.epochs <= 1 && self.epoch_s.is_none() && self.lanes <= 1
    }

    fn runner(&self) -> Runner {
        match self.threads {
            Some(threads) => Runner::new(threads),
            None => Runner::from_env(),
        }
    }

    /// The epoch boundaries (exclusive fragment limits) over `horizon`
    /// simulated seconds — strictly increasing, all within `(0, horizon)`.
    /// Empty for a serial plan or a degenerate horizon.
    fn boundaries(&self, horizon: f64) -> Vec<f64> {
        if !horizon.is_finite() || horizon <= 0.0 {
            return Vec::new();
        }
        let mut cuts = Vec::new();
        if let Some(width) = self.epoch_s {
            // Multiply per boundary instead of accumulating so the cut
            // positions don't drift with float error.
            let mut k = 1usize;
            while (k as f64) * width < horizon && cuts.len() < MAX_EPOCHS - 1 {
                cuts.push(k as f64 * width);
                k += 1;
            }
        } else if self.epochs > 1 {
            let epochs = self.epochs.min(MAX_EPOCHS);
            for k in 1..epochs {
                cuts.push(horizon * k as f64 / epochs as f64);
            }
        }
        cuts.dedup();
        cuts
    }
}

/// Total-order wrapper over a finite `f64` event time, so closed-loop
/// issue times can live in a [`BinaryHeap`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("issue times are finite")
    }
}

/// Min-heap of `(issue time, client)` pairs: pops in ascending
/// `(time, client)` order, the exact order the serial engine's linear
/// scan selected due clients in.
type IssueQueue = BinaryHeap<Reverse<(TimeKey, usize)>>;

fn issue_queue(first: Vec<(f64, usize)>) -> IssueQueue {
    first.into_iter().map(|(at, client)| Reverse((TimeKey(at), client))).collect()
}

/// The central backlog, shaped by the policy.
#[derive(Debug, Clone)]
enum Backlog {
    /// FIFO / SJF: one queue in arrival order.
    Single(VecDeque<usize>),
    /// Batching: one arrival-ordered queue per request class.
    Classed(BTreeMap<RequestClass, VecDeque<usize>>),
}

impl Backlog {
    fn new(policy: Policy) -> Self {
        match policy {
            Policy::Fifo | Policy::Sjf => Backlog::Single(VecDeque::new()),
            Policy::BatchByDataset { .. } => Backlog::Classed(BTreeMap::new()),
        }
    }

    fn push(&mut self, id: usize, class: RequestClass) {
        match self {
            Backlog::Single(queue) => queue.push_back(id),
            Backlog::Classed(queues) => queues.entry(class).or_default().push_back(id),
        }
    }

    /// Returns a unit taken by [`Self::take_ready`] to the head of its
    /// queue, preserving order — used when the dispatch policy holds the
    /// unit for busy preferred silicon, and when a crash returns a
    /// victim's in-flight batch for re-dispatch.
    fn push_front(&mut self, unit: &[usize], class: RequestClass) {
        match self {
            Backlog::Single(queue) => {
                for &id in unit.iter().rev() {
                    queue.push_front(id);
                }
            }
            Backlog::Classed(queues) => {
                let queue = queues.entry(class).or_default();
                for &id in unit.iter().rev() {
                    queue.push_front(id);
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Backlog::Single(queue) => queue.len(),
            Backlog::Classed(queues) => queues.values().map(VecDeque::len).sum(),
        }
    }

    /// The earliest future time at which a currently-unready unit becomes
    /// ready by timeout (batching policy only).
    fn next_deadline(&self, now: f64, policy: Policy, requests: &[Request]) -> Option<f64> {
        let (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) =
            (self, policy)
        else {
            return None;
        };
        queues
            .values()
            .filter(|q| !class_ready(q, requests, max_batch, timeout_s, now))
            .filter_map(|q| q.front().map(|&id| requests[id].arrival_s + timeout_s))
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
    }

    /// Removes and returns the next ready dispatch unit at `now`, if any.
    fn take_ready(
        &mut self,
        now: f64,
        policy: Policy,
        requests: &[Request],
        costs: &CostTable,
    ) -> Option<Vec<usize>> {
        match (self, policy) {
            (Backlog::Single(queue), Policy::Fifo) => queue.pop_front().map(|id| vec![id]),
            (Backlog::Single(queue), Policy::Sjf) => {
                // Smallest estimated work first; arrival order (the queue
                // order) breaks ties because `min_by_key` keeps the first
                // minimum.
                let pos = queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &id)| (costs.weight(requests[id].class), id))
                    .map(|(pos, _)| pos)?;
                queue.remove(pos).map(|id| vec![id])
            }
            (Backlog::Classed(queues), Policy::BatchByDataset { max_batch, timeout_s }) => {
                // Among ready classes, serve the one whose head request has
                // waited longest (ties broken by class order — the BTreeMap
                // key order — so selection is deterministic).
                let class = queues
                    .iter()
                    .filter(|(_, q)| class_ready(q, requests, max_batch, timeout_s, now))
                    .min_by(|(ca, qa), (cb, qb)| {
                        let (ha, hb) = (head_arrival(qa, requests), head_arrival(qb, requests));
                        ha.partial_cmp(&hb).expect("arrival times are finite").then(ca.cmp(cb))
                    })
                    .map(|(class, _)| *class)?;
                let queue = queues.get_mut(&class).expect("selected class is present");
                let take = queue.len().min(max_batch);
                let batch: Vec<usize> = queue.drain(..take).collect();
                if queue.is_empty() {
                    queues.remove(&class);
                }
                Some(batch)
            }
            _ => unreachable!("backlog shape always matches the policy"),
        }
    }
}

fn head_arrival(queue: &VecDeque<usize>, requests: &[Request]) -> f64 {
    queue.front().map(|&id| requests[id].arrival_s).unwrap_or(f64::INFINITY)
}

fn class_ready(
    queue: &VecDeque<usize>,
    requests: &[Request],
    max_batch: usize,
    timeout_s: f64,
    now: f64,
) -> bool {
    queue.len() >= max_batch || head_arrival(queue, requests) + timeout_s <= now
}

/// Where the next request comes from: a cursor into a pre-materialised
/// open-loop stream (the stream itself lives in [`Ctx`], so seam clones
/// stay cheap) or a closed-loop client population driven by completions.
#[derive(Debug, Clone)]
enum SourceState {
    Open { cursor: usize },
    Closed { clients: ClosedLoopClients, pending: IssueQueue, owners: Vec<usize> },
}

impl SourceState {
    /// The next arrival time, if any request is still due.
    fn next_time(&self, stream: &[Request]) -> Option<f64> {
        match self {
            SourceState::Open { cursor } => stream.get(*cursor).map(|r| r.arrival_s),
            SourceState::Closed { pending, .. } => pending.peek().map(|Reverse((t, _))| t.0),
        }
    }

    /// Moves every request due at or before `now` into `arrived`.
    fn pop_due(&mut self, now: f64, stream: &[Request], arrived: &mut Vec<Request>) {
        match self {
            SourceState::Open { cursor } => {
                while let Some(request) = stream.get(*cursor) {
                    if request.arrival_s > now {
                        break;
                    }
                    debug_assert_eq!(request.id, arrived.len(), "open streams arrive in id order");
                    arrived.push(*request);
                    *cursor += 1;
                }
            }
            SourceState::Closed { clients, pending, owners } => {
                // The heap pops due clients in (time, client) order, so
                // ids are deterministic even when issue times tie.
                while let Some(&Reverse((t, client))) = pending.peek() {
                    if t.0 > now {
                        break;
                    }
                    pending.pop();
                    let class = clients.draw_class(client);
                    arrived.push(Request { id: arrived.len(), arrival_s: t.0, class, tenant: 0 });
                    owners.push(client);
                }
            }
        }
    }

    /// Tells the source a request completed (closed loops schedule the
    /// owning client's next request; open streams don't care).
    fn on_complete(&mut self, id: usize, finish: f64) {
        if let SourceState::Closed { clients, pending, owners } = self {
            let client = owners[id];
            if let Some(at) = clients.next_issue_at(client, finish) {
                pending.push(Reverse((TimeKey(at), client)));
            }
        }
    }
}

/// A scheduled fleet-size change waiting for its provisioning delay.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingOp {
    effect_s: f64,
    decision_s: f64,
    group: usize,
    delta: i64,
}

/// One tenant's admission token bucket: `rate` tokens per second up to a
/// `burst` ceiling of [`TENANT_BURST_S`] seconds' worth (at least 1);
/// admitting a request costs one token. Starts full, so a tenant may
/// admit at most `burst + rate × t` requests by time `t`.
#[derive(Debug, Clone, Copy)]
struct TenantGate {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl TenantGate {
    fn new(rate: f64) -> Self {
        let burst = (rate * TENANT_BURST_S).max(1.0);
        TenantGate { rate, burst, tokens: burst, last_s: 0.0 }
    }

    fn admit(&mut self, now: f64) -> bool {
        self.tokens = (self.tokens + (now - self.last_s) * self.rate).min(self.burst);
        self.last_s = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The immutable (fragment-shared) side of one scenario replay.
struct Ctx<'a> {
    cfg: &'a ServeConfig<'a>,
    tenants: Option<&'a TenantMix>,
    /// The open-loop stream (empty for closed loops), referenced by the
    /// cursor in [`SourceState::Open`].
    stream: &'a [Request],
    /// Admission control sheds open-loop arrivals only: closed-loop
    /// clients self-limit (they wait for their response instead of being
    /// dropped), and shedding their zero-think re-issues would spin the
    /// clock.
    admission: bool,
}

/// Everything one fragment hands the next: the complete dynamic state of
/// the event loop at a pause point. Cloning an `EngineState` at an epoch
/// boundary is the seam — queue handoff, in-flight carry-over, fault
/// plan, pending provisioning ops, autoscaler clock, and the closed-loop
/// RNG streams all travel with it.
#[derive(Debug, Clone)]
struct EngineState {
    now: f64,
    fleet: ShardFleet,
    plan: Option<FaultPlan>,
    backlog: Backlog,
    source: SourceState,
    arrived: Vec<Request>,
    in_flight: Vec<Option<Vec<usize>>>,
    gates: Vec<Option<TenantGate>>,
    tenant_offered: Vec<u64>,
    tenant_shed: Vec<u64>,
    shed_queue: u64,
    shed_limit: u64,
    provision_failures: u64,
    pending_ops: Vec<PendingOp>,
    next_check: Option<f64>,
    makespan: f64,
    depth_integral: f64,
    depth_max: usize,
}

/// One fragment's recorded slice of the outputs: everything the serial
/// loop appended to as it ran. Fragments only *append* — outputs never
/// feed back into the dynamics — so slices concatenate in epoch order
/// into exactly the serial vectors.
#[derive(Debug, Default)]
struct FragmentOut {
    /// `(id, latency)` of every request resolved in this fragment —
    /// served at completion, or shed (the [`SHED_LATENCY_S`] sentinel)
    /// at admission.
    latencies: Vec<(usize, f64)>,
    /// Ids shed in this fragment, in event order.
    shed: Vec<usize>,
    /// `(finish, size)` of every batch completed in this fragment.
    batch_sizes: Vec<(f64, usize)>,
    crash_events: Vec<CrashEvent>,
    scale_events: Vec<ScaleEvent>,
    /// Lifecycle events (`Some` only when tracing).
    events: Option<Vec<TraceEvent>>,
}

impl FragmentOut {
    fn new(tracing: bool) -> Self {
        FragmentOut { events: tracing.then(Vec::new), ..Default::default() }
    }
}

fn trace_buf<'b>(out: &'b mut Option<&mut FragmentOut>) -> Option<&'b mut Vec<TraceEvent>> {
    out.as_deref_mut().and_then(|o| o.events.as_mut())
}

/// The event-loop state at `t = 0`, mirroring the serial prelude.
///
/// # Panics
///
/// Panics when the fleet is empty or an autoscaled group starts outside
/// the policy bounds.
fn initial_state(
    cfg: &ServeConfig<'_>,
    tenants: Option<&TenantMix>,
    source: SourceState,
) -> EngineState {
    let capacities: Option<Vec<usize>> = cfg.autoscale.map(|p| {
        cfg.groups
            .iter()
            .map(|g| {
                assert!(
                    (p.min_shards..=p.max_shards).contains(&g.shards),
                    "autoscaled group {:?} starts with {} shards, outside [{}, {}]",
                    g.name,
                    g.shards,
                    p.min_shards,
                    p.max_shards
                );
                p.max_shards
            })
            .collect()
    });
    let fleet = ShardFleet::new(cfg.groups, capacities.as_deref());
    let plan = cfg.faults.map(|f| f.plan(fleet.group_count()));
    let gates: Vec<Option<TenantGate>> = tenants.map_or_else(Vec::new, |mix| {
        mix.tenants().iter().map(|t| t.rate_limit_rps.map(TenantGate::new)).collect()
    });
    let in_flight = vec![None; fleet.capacity()];
    let tenant_count = gates.len();
    EngineState {
        now: 0.0,
        backlog: Backlog::new(cfg.policy),
        next_check: cfg.autoscale.map(|p| p.check_interval_s),
        fleet,
        plan,
        source,
        arrived: Vec::new(),
        in_flight,
        gates,
        tenant_offered: vec![0; tenant_count],
        tenant_shed: vec![0; tenant_count],
        shed_queue: 0,
        shed_limit: 0,
        provision_failures: 0,
        pending_ops: Vec::new(),
        makespan: 0.0,
        depth_integral: 0.0,
        depth_max: 0,
    }
}

/// Advances the event loop until the next event would land at or after
/// `limit`, or until no further event exists. Returns `true` when the
/// replay drained (no event at any time — the terminal state), `false`
/// when it paused at the limit.
///
/// The pause happens *before* the time-advance accrual, so the span that
/// crosses the boundary is accrued in a single `f64` operation by the
/// next fragment, and an event exactly on a boundary belongs to the next
/// fragment (fragments cover half-open windows `[start, limit)`). On
/// drain the terminal capacity accrual runs (provisioned capacity is
/// paid for until the last batch completes) and `now` advances to the
/// makespan, so re-entering a drained state is a no-op rather than a
/// second accrual.
///
/// With `out = None` only the state advances (the cheap seam-finding
/// pass); with `Some`, resolved latencies, batch completions,
/// crash/scale events and (when enabled) lifecycle trace events are
/// recorded in event order.
fn run_until(
    ctx: &Ctx<'_>,
    st: &mut EngineState,
    limit: f64,
    mut out: Option<&mut FragmentOut>,
) -> bool {
    let cfg = ctx.cfg;
    let policy = cfg.policy;
    let costs = cfg.costs;
    let dispatcher = cfg.dispatch.policy();

    loop {
        // Dispatch every unit that is ready while an idle shard exists; the
        // dispatch policy picks *which* idle shard serves each unit, or
        // holds it (returning the unit to the queue head) to wait for busy
        // preferred silicon — in which case the next release is the event
        // that re-offers it. Latencies finalise at *completion*, not here:
        // a crash may still retract the batch. Re-running this loop when a
        // fragment resumes is a state-preserving no-op: everything
        // dispatchable at the pause instant was already dispatched (or
        // held, and the hold re-selects the same unit and restores it).
        loop {
            let idle = st.fleet.idle_shards(st.now);
            if idle.is_empty() {
                break;
            }
            let Some(batch) = st.backlog.take_ready(st.now, policy, &st.arrived, costs) else {
                break;
            };
            let class = st.arrived[batch[0]].class;
            let Some(shard) =
                dispatcher.choose(&st.fleet, &idle, class, batch.len(), st.now, costs)
            else {
                debug_assert!(
                    st.fleet.next_busy_free_at(st.now).is_finite(),
                    "a policy may only hold a batch while some shard is busy"
                );
                st.backlog.push_front(&batch, class);
                break;
            };
            let healthy =
                costs.service_seconds(st.fleet.shard_fingerprint(shard), class, batch.len());
            let degraded = st.plan.as_ref().map_or(1.0, |p| p.multiplier(st.fleet.group_of(shard)));
            let service_s = healthy * degraded;
            st.fleet.dispatch(shard, st.now, service_s, batch.len() as u64);
            if let Some(events) = trace_buf(&mut out) {
                events.push(TraceEvent::Dispatch {
                    at_s: st.now,
                    shard,
                    group: st.fleet.group_of(shard),
                    requests: batch.len(),
                    service_s,
                });
            }
            st.in_flight[shard] = Some(batch);
        }

        // The next event: an arrival, a batch completing, a batch timeout
        // expiring, an injected crash, a scheduled fleet change taking
        // effect, or an autoscaler check (crashes and checks only while
        // work remains — otherwise they could tick forever). After the
        // dispatch loop each of these lies in the future, and every
        // finite-time source below is consumed when due, so the loop
        // always makes progress.
        let work_remains = st.source.next_time(ctx.stream).is_some()
            || st.backlog.len() > 0
            || !st.pending_ops.is_empty()
            || st.in_flight.iter().any(Option::is_some);
        let mut t_next = f64::INFINITY;
        if let Some(t) = st.source.next_time(ctx.stream) {
            t_next = t_next.min(t);
        }
        for (slot, batch) in st.in_flight.iter().enumerate() {
            if batch.is_some() {
                t_next = t_next.min(st.fleet.busy_until(slot));
            }
        }
        if let Some(deadline) = st.backlog.next_deadline(st.now, policy, &st.arrived) {
            t_next = t_next.min(deadline);
        }
        for op in &st.pending_ops {
            t_next = t_next.min(op.effect_s);
        }
        if work_remains {
            if let Some(at) = st.plan.as_ref().and_then(FaultPlan::next_crash_at) {
                t_next = t_next.min(at);
            }
            if let Some(check) = st.next_check {
                t_next = t_next.min(check);
            }
        }
        if !t_next.is_finite() {
            // Drained. Provisioned capacity is paid for until the last
            // batch completes; advancing `now` to the makespan makes the
            // terminal accrual idempotent across later fragments.
            if st.makespan > st.now {
                st.fleet.accrue(st.makespan - st.now);
                st.now = st.makespan;
            }
            return true;
        }
        if t_next >= limit {
            return false;
        }
        st.fleet.accrue(t_next - st.now);
        st.depth_integral += st.backlog.len() as f64 * (t_next - st.now);
        st.now = t_next;

        // 1. Completions due at `now` finalise, in slot order: the batch
        //    really finished, so its latencies are now facts no crash can
        //    retract.
        for (slot, entry) in st.in_flight.iter_mut().enumerate() {
            if entry.is_some() && st.fleet.busy_until(slot) <= st.now {
                let batch = entry.take().expect("slot checked above");
                let finish = st.fleet.busy_until(slot);
                for &id in &batch {
                    let latency = finish - st.arrived[id].arrival_s;
                    st.source.on_complete(id, finish);
                    if let Some(o) = out.as_deref_mut() {
                        o.latencies.push((id, latency));
                        if let Some(events) = o.events.as_mut() {
                            events.push(TraceEvent::Complete {
                                at_s: finish,
                                id,
                                tenant: st.arrived[id].tenant,
                                latency_s: latency,
                            });
                        }
                    }
                }
                st.makespan = st.makespan.max(finish);
                if let Some(o) = out.as_deref_mut() {
                    o.batch_sizes.push((finish, batch.len()));
                }
            }
        }

        // 2. Arrivals due at `now` pass admission into the backlog (after
        //    completions, so a zero-think closed-loop re-issue lands in
        //    the same event). An arrival sheds when the backlog is at its
        //    bound, or when its tenant's token bucket is empty.
        let first_new = st.arrived.len();
        st.source.pop_due(st.now, ctx.stream, &mut st.arrived);
        for req in &st.arrived[first_new..] {
            let (id, class, tenant) = (req.id, req.class, req.tenant);
            if let Some(count) = st.tenant_offered.get_mut(tenant) {
                *count += 1;
            }
            if let Some(events) = trace_buf(&mut out) {
                events.push(TraceEvent::Arrival { at_s: st.now, id, tenant });
            }
            let mut reason = ShedReason::QueueFull;
            let admit = if !ctx.admission {
                true
            } else if cfg.queue_bound.is_some_and(|bound| st.backlog.len() >= bound) {
                st.shed_queue += 1;
                false
            } else if let Some(gate) = st.gates.get_mut(tenant).and_then(Option::as_mut) {
                let pass = gate.admit(st.now);
                if !pass {
                    st.shed_limit += 1;
                    reason = ShedReason::RateLimited;
                }
                pass
            } else {
                true
            };
            if admit {
                st.backlog.push(id, class);
                if let Some(events) = trace_buf(&mut out) {
                    events.push(TraceEvent::Admit { at_s: st.now, id });
                }
            } else {
                if let Some(count) = st.tenant_shed.get_mut(tenant) {
                    *count += 1;
                }
                if let Some(o) = out.as_deref_mut() {
                    o.latencies.push((id, SHED_LATENCY_S));
                    o.shed.push(id);
                    if let Some(events) = o.events.as_mut() {
                        events.push(TraceEvent::Shed { at_s: st.now, id, tenant, reason });
                    }
                }
                st.source.on_complete(id, st.now);
            }
        }
        st.depth_max = st.depth_max.max(st.backlog.len());

        // 3. Injected crashes due at `now`: the victim is the busiest
        //    active shard of the scheduled group (ties to the lowest
        //    slot), its in-flight batch returns to the queue head —
        //    re-queued work bypasses admission; admitted work is never
        //    shed — and the slot deactivates. A crash that would empty
        //    the fleet, or lands in a group with no active shard, is
        //    skipped: the simulation models degraded service, not total
        //    outage.
        if let Some(plan) = st.plan.as_mut() {
            while let Some((at, group)) = plan.pop_crash_due(st.now) {
                debug_assert!(at <= st.now, "crashes pop when due");
                if st.fleet.active_shards() <= 1 {
                    continue;
                }
                let victim = (0..st.fleet.capacity())
                    .filter(|&s| st.fleet.group_of(s) == group && st.fleet.is_active(s))
                    .max_by(|&a, &b| {
                        st.fleet
                            .busy_until(a)
                            .partial_cmp(&st.fleet.busy_until(b))
                            .expect("busy horizons are finite")
                            .then(b.cmp(&a))
                    });
                let Some(victim) = victim else { continue };
                let batch = st.in_flight[victim].take();
                let redispatched = batch.as_ref().map_or(0, Vec::len);
                let lost_service_s = if redispatched > 0 {
                    (st.fleet.busy_until(victim) - st.now).max(0.0)
                } else {
                    0.0
                };
                if let Some(batch) = batch {
                    let class = st.arrived[batch[0]].class;
                    st.backlog.push_front(&batch, class);
                }
                st.fleet.crash(victim, st.now, redispatched as u64);
                if let Some(o) = out.as_deref_mut() {
                    o.crash_events.push(CrashEvent {
                        at_s: st.now,
                        shard: victim,
                        group,
                        redispatched,
                    });
                    if let Some(events) = o.events.as_mut() {
                        events.push(TraceEvent::Crash {
                            at_s: st.now,
                            shard: victim,
                            group,
                            redispatched,
                            lost_service_s,
                        });
                    }
                }
                st.depth_max = st.depth_max.max(st.backlog.len());
            }
        }

        // 4. Provisioning effects due at `now` apply, in (effect,
        //    decision, group, delta) order. A scale-up rolls the fault
        //    plan's provisioning die first — a failed roll leaves the
        //    slot inactive and counts a provisioning failure. Scale-downs
        //    go through the policy's shared retire path, which re-checks
        //    the per-group floor and idleness at effect time.
        while let Some(pos) = st
            .pending_ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.effect_s <= st.now)
            .min_by(|(_, a), (_, b)| {
                a.effect_s
                    .partial_cmp(&b.effect_s)
                    .expect("effect times are finite")
                    .then(a.decision_s.partial_cmp(&b.decision_s).expect("finite"))
                    .then(a.group.cmp(&b.group))
                    .then(a.delta.cmp(&b.delta))
            })
            .map(|(pos, _)| pos)
        {
            let op = st.pending_ops.remove(pos);
            let applied = if op.delta > 0 {
                if st.plan.as_mut().is_none_or(FaultPlan::provision_succeeds) {
                    st.fleet.activate(op.group, st.now).is_some()
                } else {
                    st.provision_failures += 1;
                    if let Some(events) = trace_buf(&mut out) {
                        events.push(TraceEvent::ProvisionFailure { at_s: st.now, group: op.group });
                    }
                    false
                }
            } else {
                cfg.autoscale
                    .expect("pending ops only exist under an autoscaler")
                    .retire_idle(&mut st.fleet, op.group, st.now)
                    .is_some()
            };
            if applied {
                if let Some(o) = out.as_deref_mut() {
                    o.scale_events.push(ScaleEvent {
                        decision_s: op.decision_s,
                        effect_s: st.now,
                        group: op.group,
                        delta: op.delta,
                        active_total: st.fleet.active_shards(),
                    });
                    if let Some(events) = o.events.as_mut() {
                        events.push(TraceEvent::Scale {
                            at_s: st.now,
                            group: op.group,
                            delta: op.delta,
                            active_total: st.fleet.active_shards(),
                        });
                    }
                }
            }
        }

        // 5. The autoscaler's periodic decision.
        if let (Some(policy_as), Some(check)) = (cfg.autoscale, st.next_check) {
            if check <= st.now {
                let mut pending = vec![0i64; st.fleet.group_count()];
                for op in &st.pending_ops {
                    pending[op.group] += op.delta;
                }
                match policy_as.decide(&st.fleet, st.backlog.len(), st.now, &pending) {
                    Decision::Hold => {}
                    Decision::Up { group } => st.pending_ops.push(PendingOp {
                        effect_s: st.now + policy_as.provision_delay_s,
                        decision_s: st.now,
                        group,
                        delta: 1,
                    }),
                    Decision::Down { group } => st.pending_ops.push(PendingOp {
                        effect_s: st.now + policy_as.provision_delay_s,
                        decision_s: st.now,
                        group,
                        delta: -1,
                    }),
                }
                st.next_check = Some(check + policy_as.check_interval_s);
            }
        }
    }
}

/// Builds the final [`ServeOutcome`] (and trace) from a terminal state
/// and the merged fragment outputs.
fn assemble(
    cfg: &ServeConfig<'_>,
    tenants: Option<&TenantMix>,
    st: EngineState,
    out: FragmentOut,
) -> (ServeOutcome, Option<Trace>) {
    let mut latencies = vec![f64::NAN; st.arrived.len()];
    for &(id, latency) in &out.latencies {
        debug_assert!(latencies[id].is_nan(), "request {id} resolved twice");
        latencies[id] = latency;
    }
    debug_assert!(
        latencies.iter().all(|&l| l >= 0.0 || l == SHED_LATENCY_S),
        "every request is served or shed, exactly once"
    );
    let tenant_outcomes = tenants.map_or_else(Vec::new, |mix| {
        mix.tenants()
            .iter()
            .enumerate()
            .map(|(i, t)| TenantOutcome {
                name: t.name.clone(),
                slo_s: t.slo_s,
                offered: st.tenant_offered[i],
                shed: st.tenant_shed[i],
            })
            .collect()
    });
    let trace = out.events.map(|events| Trace {
        groups: cfg
            .groups
            .iter()
            .map(|g| TraceGroup { name: g.name.clone(), initial_shards: g.shards })
            .collect(),
        tenants: tenants.map_or_else(Vec::new, |mix| {
            mix.tenants()
                .iter()
                .map(|t| TraceTenant { name: t.name.clone(), slo_s: t.slo_s })
                .collect()
        }),
        events,
    });
    let outcome = ServeOutcome {
        latencies_s: latencies,
        arrivals_s: st.arrived.iter().map(|r| r.arrival_s).collect(),
        tenants: st.arrived.iter().map(|r| r.tenant).collect(),
        shed: out.shed,
        shed_queue: st.shed_queue,
        shed_limit: st.shed_limit,
        tenant_outcomes,
        crash_events: out.crash_events,
        provision_failures: st.provision_failures,
        makespan_s: st.makespan,
        queue_depth_mean: if st.makespan > 0.0 { st.depth_integral / st.makespan } else { 0.0 },
        queue_depth_max: st.depth_max,
        batch_sizes: out.batch_sizes.into_iter().map(|(_, size)| size).collect(),
        shard_stats: st.fleet.stats().to_vec(),
        shard_groups: st.fleet.shard_groups().to_vec(),
        group_stats: st.fleet.group_stats(),
        scale_events: out.scale_events,
    };
    (outcome, trace)
}

/// Runs one scenario as epoch fragments: a cheap serial pass finds the
/// seam state at every boundary, then every fragment replays concurrently
/// with output recording on and the slices concatenate in epoch order.
fn run_fragments(
    ctx: &Ctx<'_>,
    initial: EngineState,
    horizon: f64,
    plan: &EnginePlan,
    tracing: bool,
) -> (ServeOutcome, Option<Trace>) {
    let boundaries = plan.boundaries(horizon);
    if boundaries.is_empty() {
        // Serial fast path: one fragment, no seam clones, no fan-out.
        let mut st = initial;
        let mut out = FragmentOut::new(tracing);
        run_until(ctx, &mut st, f64::INFINITY, Some(&mut out));
        return assemble(ctx.cfg, ctx.tenants, st, out);
    }

    // Pass 1 (serial, output-free): the seam state at each boundary.
    // Re-entering a drained state is a no-op, so the walk safely covers
    // boundaries past the end of the action.
    let mut fragments: Vec<(EngineState, f64)> = Vec::with_capacity(boundaries.len() + 1);
    let mut cursor = initial;
    for &boundary in &boundaries {
        let mut next = cursor.clone();
        run_until(ctx, &mut next, boundary, None);
        fragments.push((cursor, boundary));
        cursor = next;
    }
    fragments.push((cursor, f64::INFINITY));

    // Pass 2 (parallel): replay every fragment with recording on. The
    // runner returns results in fragment order regardless of thread
    // interleaving, and outputs never feed back into the dynamics, so
    // concatenation reproduces the serial output byte for byte.
    let runner = plan.runner();
    let results = runner.run(&fragments, |_, (seam, limit)| {
        let mut st = seam.clone();
        let mut out = FragmentOut::new(tracing);
        run_until(ctx, &mut st, *limit, Some(&mut out));
        (st, out)
    });

    let mut merged = FragmentOut::new(tracing);
    let mut terminal = None;
    for (state, out) in results {
        merged.latencies.extend(out.latencies);
        merged.shed.extend(out.shed);
        merged.batch_sizes.extend(out.batch_sizes);
        merged.crash_events.extend(out.crash_events);
        merged.scale_events.extend(out.scale_events);
        if let (Some(into), Some(events)) = (merged.events.as_mut(), out.events) {
            into.extend(events);
        }
        terminal = Some(state);
    }
    assemble(ctx.cfg, ctx.tenants, terminal.expect("at least one fragment"), merged)
}

/// How many lanes a closed-loop scenario actually decomposes into under
/// `plan`: the requested count clamped to the client count and the
/// smallest group, and 1 whenever a feature that couples the lanes —
/// autoscaling, admission control, tenants, effectful faults — is on.
fn lane_count(spec: &ClosedLoopSpec, cfg: &ServeConfig<'_>, plan: &EnginePlan) -> usize {
    if plan.lanes <= 1 {
        return 1;
    }
    let decoupled = cfg.autoscale.is_none()
        && cfg.queue_bound.is_none()
        && cfg.tenants.is_none()
        && cfg.faults.is_none_or(|f| f.is_benign());
    if !decoupled {
        return 1;
    }
    let min_shards = cfg.groups.iter().map(|g| g.shards).min().unwrap_or(0);
    plan.lanes.min(min_shards).min(spec.clients).max(1)
}

/// Replays a closed-loop scenario as `lanes` independent sub-scenarios —
/// clients and shard groups split round-robin by global index — and
/// merges them deterministically. Each lane is one serial fragment (the
/// lane split, not the timeline split, is the parallelism axis here).
fn run_lanes(
    spec: &ClosedLoopSpec,
    cfg: &ServeConfig<'_>,
    lanes: usize,
    plan: &EnginePlan,
    tracing: bool,
) -> (ServeOutcome, Option<Trace>) {
    let lane_fleets: Vec<Vec<ShardGroup>> =
        (0..lanes).map(|lane| lane_groups(cfg.groups, lane, lanes)).collect();
    let lane_ids: Vec<usize> = (0..lanes).collect();
    let runner = plan.runner();
    let results = runner.run(&lane_ids, |_, &lane| {
        let mut lane_cfg = *cfg;
        lane_cfg.groups = &lane_fleets[lane];
        let (clients, first) = spec.lane_clients(lane, lanes);
        let source =
            SourceState::Closed { clients, pending: issue_queue(first), owners: Vec::new() };
        let ctx = Ctx { cfg: &lane_cfg, tenants: None, stream: &[], admission: false };
        let mut st = initial_state(&lane_cfg, None, source);
        let mut out = FragmentOut::new(tracing);
        run_until(&ctx, &mut st, f64::INFINITY, Some(&mut out));
        (st, out)
    });
    merge_lanes(cfg, &results, lanes, tracing)
}

/// Deterministic lane merge: global request ids by `(arrival, lane,
/// local id)`, shard slots re-laid group-major with each group's lanes
/// contiguous, batches by `(finish, lane, sequence)`, trace events by
/// `(time, lane, sequence)`, and every `f64` aggregate summed in lane
/// order — so the merged outcome is identical for every thread count.
fn merge_lanes(
    cfg: &ServeConfig<'_>,
    results: &[(EngineState, FragmentOut)],
    lanes: usize,
    tracing: bool,
) -> (ServeOutcome, Option<Trace>) {
    let group_shards: Vec<usize> = cfg.groups.iter().map(|g| g.shards).collect();
    let mut merged_first = vec![0usize; group_shards.len()];
    for g in 1..group_shards.len() {
        merged_first[g] = merged_first[g - 1] + group_shards[g - 1];
    }
    let total_slots: usize = group_shards.iter().sum();

    // Lane-local shard slot → merged slot (lane fleets are group-major
    // over the same groups, so the map is a per-group offset shift).
    let slot_maps: Vec<Vec<usize>> = (0..lanes)
        .map(|lane| {
            let mut map = Vec::new();
            for (g, &shards) in group_shards.iter().enumerate() {
                let before: usize = (0..lane).map(|m| lane_share(shards, m, lanes)).sum();
                let share = lane_share(shards, lane, lanes);
                map.extend((0..share).map(|s| merged_first[g] + before + s));
            }
            map
        })
        .collect();

    // Global ids: every lane's arrivals merged by (time, lane, local id).
    let mut order: Vec<(f64, usize, usize)> = Vec::new();
    for (lane, (st, _)) in results.iter().enumerate() {
        order.extend(st.arrived.iter().map(|r| (r.arrival_s, lane, r.id)));
    }
    order.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("arrival times are finite")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut id_maps: Vec<Vec<usize>> =
        results.iter().map(|(st, _)| vec![usize::MAX; st.arrived.len()]).collect();
    let mut arrivals_s = Vec::with_capacity(order.len());
    for (global, &(at, lane, local)) in order.iter().enumerate() {
        id_maps[lane][local] = global;
        arrivals_s.push(at);
    }

    let total = order.len();
    let mut latencies = vec![f64::NAN; total];
    for (lane, (_, out)) in results.iter().enumerate() {
        for &(local, latency) in &out.latencies {
            debug_assert!(latencies[id_maps[lane][local]].is_nan(), "request resolved twice");
            latencies[id_maps[lane][local]] = latency;
        }
    }
    debug_assert!(
        latencies.iter().all(|&l| l >= 0.0),
        "lane-eligible closed loops serve every request"
    );

    // Batches in (finish, lane, sequence) order.
    let mut batches: Vec<(f64, usize, usize, usize)> = Vec::new();
    for (lane, (_, out)) in results.iter().enumerate() {
        batches.extend(
            out.batch_sizes
                .iter()
                .enumerate()
                .map(|(seq, &(finish, size))| (finish, lane, seq, size)),
        );
    }
    batches.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finish times are finite")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });

    // Scalar aggregates, summed in lane order for f64 determinism.
    let (mut makespan, mut depth_integral, mut depth_max) = (0.0f64, 0.0f64, 0usize);
    for (st, out) in results {
        makespan = makespan.max(st.makespan);
        depth_integral += st.depth_integral;
        depth_max = depth_max.max(st.depth_max);
        debug_assert!(
            out.shed.is_empty() && out.crash_events.is_empty() && out.scale_events.is_empty(),
            "lane-eligible scenarios shed nothing and never change the fleet"
        );
    }

    // Shard slots re-laid group-major; per-group counters summed in lane
    // order. Active shard counts are constant per lane (no autoscaling,
    // no crashes), so summed peaks equal the merged peak.
    let mut shard_stats = vec![ShardStats::default(); total_slots];
    let mut shard_groups = Vec::with_capacity(total_slots);
    for (g, &shards) in group_shards.iter().enumerate() {
        shard_groups.extend(std::iter::repeat_n(g, shards));
    }
    for (lane, (st, _)) in results.iter().enumerate() {
        for (local, stats) in st.fleet.stats().iter().enumerate() {
            shard_stats[slot_maps[lane][local]] = *stats;
        }
    }
    let mut group_stats: Vec<GroupStats> = cfg
        .groups
        .iter()
        .map(|g| GroupStats {
            name: g.name.clone(),
            capacity: g.shards,
            busy_s: 0.0,
            batches: 0,
            requests: 0,
            shard_seconds: 0.0,
            peak_active: 0,
        })
        .collect();
    for (st, _) in results {
        for (g, lane_stats) in st.fleet.group_stats().into_iter().enumerate() {
            let merged = &mut group_stats[g];
            merged.busy_s += lane_stats.busy_s;
            merged.batches += lane_stats.batches;
            merged.requests += lane_stats.requests;
            merged.shard_seconds += lane_stats.shard_seconds;
            merged.peak_active += lane_stats.peak_active;
        }
    }

    let outcome = ServeOutcome {
        latencies_s: latencies,
        arrivals_s,
        tenants: vec![0; total],
        shed: Vec::new(),
        shed_queue: 0,
        shed_limit: 0,
        tenant_outcomes: Vec::new(),
        crash_events: Vec::new(),
        provision_failures: 0,
        makespan_s: makespan,
        queue_depth_mean: if makespan > 0.0 { depth_integral / makespan } else { 0.0 },
        queue_depth_max: depth_max,
        batch_sizes: batches.into_iter().map(|(_, _, _, size)| size).collect(),
        shard_stats,
        shard_groups,
        group_stats,
        scale_events: Vec::new(),
    };

    let trace = tracing.then(|| {
        let mut keyed: Vec<(f64, usize, usize, TraceEvent)> = Vec::new();
        for (lane, (_, out)) in results.iter().enumerate() {
            if let Some(events) = &out.events {
                keyed.extend(events.iter().enumerate().map(|(seq, event)| {
                    (event.at_s(), lane, seq, remap_event(event, &id_maps[lane], &slot_maps[lane]))
                }));
            }
        }
        keyed.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("event times are finite")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        Trace {
            groups: cfg
                .groups
                .iter()
                .map(|g| TraceGroup { name: g.name.clone(), initial_shards: g.shards })
                .collect(),
            tenants: Vec::new(),
            events: keyed.into_iter().map(|(_, _, _, event)| event).collect(),
        }
    });
    (outcome, trace)
}

/// Rewrites a lane-local trace event into merged coordinates.
fn remap_event(event: &TraceEvent, ids: &[usize], slots: &[usize]) -> TraceEvent {
    match *event {
        TraceEvent::Arrival { at_s, id, tenant } => {
            TraceEvent::Arrival { at_s, id: ids[id], tenant }
        }
        TraceEvent::Admit { at_s, id } => TraceEvent::Admit { at_s, id: ids[id] },
        TraceEvent::Shed { at_s, id, tenant, reason } => {
            TraceEvent::Shed { at_s, id: ids[id], tenant, reason }
        }
        TraceEvent::Complete { at_s, id, tenant, latency_s } => {
            TraceEvent::Complete { at_s, id: ids[id], tenant, latency_s }
        }
        TraceEvent::Dispatch { at_s, shard, group, requests, service_s } => {
            TraceEvent::Dispatch { at_s, shard: slots[shard], group, requests, service_s }
        }
        TraceEvent::Crash { at_s, shard, group, redispatched, lost_service_s } => {
            TraceEvent::Crash { at_s, shard: slots[shard], group, redispatched, lost_service_s }
        }
        ref other @ (TraceEvent::Scale { .. } | TraceEvent::ProvisionFailure { .. }) => {
            other.clone()
        }
    }
}

fn run_stream(
    stream: &[Request],
    cfg: &ServeConfig<'_>,
    tenants: Option<&TenantMix>,
    horizon: f64,
    plan: &EnginePlan,
    tracing: bool,
) -> (ServeOutcome, Option<Trace>) {
    let ctx = Ctx { cfg, tenants, stream, admission: true };
    let initial = initial_state(cfg, tenants, SourceState::Open { cursor: 0 });
    run_fragments(&ctx, initial, horizon, plan, tracing)
}

fn run_workload(
    workload: &Workload,
    cfg: &ServeConfig<'_>,
    plan: &EnginePlan,
    tracing: bool,
) -> (ServeOutcome, Option<Trace>) {
    match workload {
        Workload::Open(spec) => {
            let stream = spec.generate();
            assert_sorted(&stream);
            run_stream(&stream, cfg, cfg.tenants, spec.duration_s, plan, tracing)
        }
        Workload::Shaped(shaped) => {
            let stream = shaped.generate();
            let tenants = cfg.tenants.or(shaped.tenants.as_ref());
            run_stream(&stream, cfg, tenants, shaped.base.duration_s, plan, tracing)
        }
        Workload::Closed(spec) => {
            let lanes = lane_count(spec, cfg, plan);
            if lanes > 1 {
                return run_lanes(spec, cfg, lanes, plan, tracing);
            }
            let (clients, first) = spec.clients();
            let source =
                SourceState::Closed { clients, pending: issue_queue(first), owners: Vec::new() };
            let ctx = Ctx { cfg, tenants: cfg.tenants, stream: &[], admission: false };
            let initial = initial_state(cfg, cfg.tenants, source);
            run_fragments(&ctx, initial, spec.duration_s, plan, tracing)
        }
    }
}

fn assert_sorted(requests: &[Request]) {
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "request streams must be sorted by arrival time"
    );
}

/// [`simulate_config`](crate::sim::simulate_config) under an explicit
/// [`EnginePlan`]: the same outcome, computed by epoch fragments and/or
/// closed-loop lanes. With [`EnginePlan::serial`] this *is* the serial
/// engine; with epochs the outcome is byte-identical to serial for every
/// epoch width and thread count; with lanes the lane count is part of
/// the scenario (identical across thread counts at a fixed lane count).
///
/// # Panics
///
/// As [`simulate`](crate::sim::simulate).
pub fn simulate_config_parallel(
    workload: &Workload,
    cfg: &ServeConfig<'_>,
    plan: &EnginePlan,
) -> ServeOutcome {
    run_workload(workload, cfg, plan, false).0
}

/// [`simulate_config_parallel`] that additionally records the lifecycle
/// [`Trace`] (see
/// [`simulate_config_traced`](crate::sim::simulate_config_traced)).
///
/// # Panics
///
/// As [`simulate`](crate::sim::simulate).
pub fn simulate_config_traced_parallel(
    workload: &Workload,
    cfg: &ServeConfig<'_>,
    plan: &EnginePlan,
) -> (ServeOutcome, Trace) {
    let (outcome, trace) = run_workload(workload, cfg, plan, true);
    (outcome, trace.expect("tracing was requested"))
}

/// [`simulate_stream_config`](crate::sim::simulate_stream_config) under
/// an explicit [`EnginePlan`] (epoch fragments only — lanes apply to
/// closed loops).
///
/// # Panics
///
/// As [`simulate`](crate::sim::simulate).
pub fn simulate_stream_config_parallel(
    requests: &[Request],
    cfg: &ServeConfig<'_>,
    plan: &EnginePlan,
) -> ServeOutcome {
    assert_sorted(requests);
    let horizon = requests.last().map_or(0.0, |r| r.arrival_s);
    run_stream(requests, cfg, cfg.tenants, horizon, plan, false).0
}

/// [`simulate_stream_config_parallel`] that additionally records the
/// lifecycle [`Trace`].
///
/// # Panics
///
/// As [`simulate`](crate::sim::simulate).
pub fn simulate_stream_config_traced_parallel(
    requests: &[Request],
    cfg: &ServeConfig<'_>,
    plan: &EnginePlan,
) -> (ServeOutcome, Trace) {
    assert_sorted(requests);
    let horizon = requests.last().map_or(0.0, |r| r.arrival_s);
    let (outcome, trace) = run_stream(requests, cfg, cfg.tenants, horizon, plan, true);
    (outcome, trace.expect("tracing was requested"))
}
