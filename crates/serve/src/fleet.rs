//! The multi-chip shard model: a fleet of identical simulated NeuraChip
//! instances, each serving one batch at a time.
//!
//! Shards carry no per-request state — the queueing simulation holds the
//! backlog centrally — so a shard is just a busy-until horizon plus the
//! counters behind the per-shard utilisation metrics. Dispatch always picks
//! the least-loaded shard (earliest busy-until, ties broken by shard index),
//! which keeps the fleet deterministic and work-conserving.

/// Aggregate counters of one shard over a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Total seconds the shard spent serving batches.
    pub busy_s: f64,
    /// Batches the shard served.
    pub batches: u64,
    /// Requests the shard served (across all its batches).
    pub requests: u64,
}

/// A fleet of identical accelerator shards.
#[derive(Debug, Clone)]
pub struct ShardFleet {
    busy_until: Vec<f64>,
    stats: Vec<ShardStats>,
}

impl ShardFleet {
    /// Creates a fleet of `shards` idle shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a fleet needs at least one shard");
        ShardFleet { busy_until: vec![0.0; shards], stats: vec![ShardStats::default(); shards] }
    }

    /// Number of shards in the fleet.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Whether the fleet has no shards (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// The least-loaded shard that is idle at `now` (earliest busy-until,
    /// ties broken by index), if any.
    pub fn idle_shard(&self, now: f64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &until) in self.busy_until.iter().enumerate() {
            if until <= now && best.is_none_or(|b| until < self.busy_until[b]) {
                best = Some(i);
            }
        }
        best
    }

    /// The earliest time any shard becomes free.
    pub fn next_free_at(&self) -> f64 {
        self.busy_until.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Starts a batch of `requests` requests on `shard` at `now` for
    /// `service_s` seconds; returns the batch completion time.
    ///
    /// # Panics
    ///
    /// Panics when the shard is still busy at `now` — the simulation only
    /// dispatches to idle shards.
    pub fn dispatch(&mut self, shard: usize, now: f64, service_s: f64, requests: u64) -> f64 {
        assert!(
            self.busy_until[shard] <= now,
            "shard {shard} is busy until {} at {now}",
            self.busy_until[shard]
        );
        let finish = now + service_s;
        self.busy_until[shard] = finish;
        self.stats[shard].busy_s += service_s;
        self.stats[shard].batches += 1;
        self.stats[shard].requests += requests;
        finish
    }

    /// Per-shard counters, in shard order.
    pub fn stats(&self) -> &[ShardStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_prefers_the_longest_idle_shard_then_the_lowest_index() {
        let mut fleet = ShardFleet::new(3);
        assert_eq!(fleet.idle_shard(0.0), Some(0), "all idle: lowest index wins");
        fleet.dispatch(0, 0.0, 2.0, 1);
        fleet.dispatch(1, 0.0, 1.0, 1);
        // At t=1.5 shard 1 (free since 1.0) and shard 2 (free since 0.0)
        // are idle; shard 2 has been idle longer.
        assert_eq!(fleet.idle_shard(1.5), Some(2));
        fleet.dispatch(2, 1.5, 5.0, 1);
        assert_eq!(fleet.idle_shard(1.5), Some(1));
        fleet.dispatch(1, 1.5, 5.0, 1);
        assert_eq!(fleet.idle_shard(1.5), None, "every shard busy");
        assert!((fleet.next_free_at() - 2.0).abs() < 1e-12, "shard 0 frees first");
    }

    #[test]
    fn stats_accumulate_busy_time_batches_and_requests() {
        let mut fleet = ShardFleet::new(2);
        fleet.dispatch(0, 0.0, 1.5, 4);
        fleet.dispatch(0, 2.0, 0.5, 1);
        let stats = fleet.stats()[0];
        assert!((stats.busy_s - 2.0).abs() < 1e-12);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.requests, 5);
        assert_eq!(fleet.stats()[1], ShardStats::default());
    }

    #[test]
    #[should_panic(expected = "is busy until")]
    fn dispatching_to_a_busy_shard_is_a_bug() {
        let mut fleet = ShardFleet::new(1);
        fleet.dispatch(0, 0.0, 2.0, 1);
        fleet.dispatch(0, 1.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_is_rejected() {
        ShardFleet::new(0);
    }
}
